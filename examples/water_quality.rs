//! The harmful-algal-bloom scenario of Example 1: a research team wants new
//! data with important spatio-temporal and chemical attributes so that a
//! random-forest CI-index predictor meets bounds on RMSE-style error, R² and
//! training cost simultaneously.
//!
//! Run with `cargo run --example water_quality`.

use modis_core::prelude::*;
use modis_data::{augment, reduct, Attribute, Dataset, Literal, Schema, Value};
use modis_datagen::tables::{generate_table_pool, TablePoolConfig};

fn main() {
    // Source tables: water quality, basin, nutrient measurements — simulated
    // with domain-agnostic informative/noise attributes (see DESIGN.md).
    let pool = generate_table_pool(&TablePoolConfig {
        n_rows: 300,
        n_informative: 4,
        n_redundant: 1,
        n_noise: 3,
        n_tables: 4,
        target_noise: 0.25,
        seed: 11,
        ..Default::default()
    });

    // Demonstrate the primitive operators of §3 on raw tables first.
    let water = Dataset::from_rows(
        "water",
        Schema::from_attributes(vec![Attribute::key("site"), Attribute::feature("ph")]),
        vec![
            vec![Value::Int(1), Value::Float(6.9)],
            vec![Value::Int(2), Value::Float(7.4)],
        ],
    )
    .unwrap();
    let phosphorus = Dataset::from_rows(
        "phosphorus",
        Schema::from_attributes(vec![
            Attribute::key("site"),
            Attribute::feature("phosphorus"),
            Attribute::feature("year"),
        ]),
        vec![
            vec![Value::Int(1), Value::Float(0.31), Value::Int(2013)],
            vec![Value::Int(2), Value::Float(0.08), Value::Int(2010)],
        ],
    )
    .unwrap();
    let augmented = augment(
        &water,
        &phosphorus,
        "phosphorus",
        &Literal::equals("year", 2013),
    )
    .unwrap();
    println!(
        "⊕[phosphorus | year = 2013] produced {} rows",
        augmented.num_rows()
    );
    let (reduced, removed) = reduct(&augmented, &Literal::range("ph", 0.0, 7.0));
    println!(
        "⊖[ph ∈ [0, 7]] removed {removed} rows, kept {}",
        reduced.num_rows()
    );

    // The skyline query of Example 1: error below a bound, R²-style accuracy
    // above a bound, training cost within a budget.
    let task = TaskSpec {
        name: "CI-index".into(),
        model: ModelKind::RandomForestRegressor,
        target: pool.target.clone(),
        key: Some(pool.join_key.clone()),
        measures: MeasureSet::new(vec![
            MeasureSpec::minimise("p_RMSE", 2.0).with_bounds(0.01, 0.6),
            MeasureSpec::maximise("p_R2").with_bounds(0.01, 0.35),
            MeasureSpec::minimise("p_Train", 10.0).with_bounds(0.001, 0.5),
        ]),
        metric_kinds: vec![MetricKind::Rmse, MetricKind::R2, MetricKind::TrainTime],
        train_ratio: 0.7,
        seed: 11,
    };

    let space = TableSpaceConfig {
        join_key: pool.join_key.clone(),
        ..TableSpaceConfig::default()
    };
    let substrate = TableSubstrate::from_pool(&pool.tables, task, &space);
    let config = ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(40)
        .with_max_level(5)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 10,
            refresh: 8,
        });

    let skyline = div_modis(&substrate, &config.with_diversification(3, 0.5));
    println!("\nDiversified skyline ({} datasets):", skyline.len());
    for (i, e) in skyline.entries.iter().enumerate() {
        println!(
            "  D{} — RMSE {:.3}, R² {:.3}, train {:.3}s, size {:?}",
            i + 1,
            e.raw[0],
            e.raw[1],
            e.raw[2],
            e.size
        );
    }
    println!("\nEach dataset satisfies the user-specified bounds on all three measures,");
    println!("and no dataset is dominated by another — the skyline answer to Example 1.");
}
