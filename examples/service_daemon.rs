//! The persistent skyline service, driven end-to-end as a daemon:
//!
//! 1. register scenarios over two tabular pools,
//! 2. start the background worker and the non-blocking reactor front-end,
//! 3. **pipeline** a burst of SUBMITs on one connection, then WAIT —
//!    completions stream back progressively as the worker finishes them,
//! 4. drive STATS / SNAPSHOT over the same socket,
//! 5. restart a fresh service from the snapshot and show its first run
//!    answering from the warm cache.
//!
//! Run with `cargo run --release --example service_daemon`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use modis_bench::{task_t1, task_t3};
use modis_core::prelude::*;
use modis_core::substrate::Substrate;
use modis_engine::{Algorithm, Scenario};
use modis_service::{Daemon, JobState, Service, ServiceConfig, Ticket};

fn register_scenarios(service: &Service) {
    let t1: Arc<dyn Substrate> = Arc::new(task_t1(21).substrate());
    let t3: Arc<dyn Substrate> = Arc::new(task_t3(5).substrate());
    let fast = ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(25)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Oracle);
    // Scenarios over one pool share a cache namespace: the cost-aware
    // scheduler runs the cheapest first, warming the cache for the rest.
    let scenarios = vec![
        Scenario::new("t1/apx", t1.clone(), Algorithm::Apx, fast.clone())
            .with_cache_namespace("t1-pool"),
        Scenario::new("t1/bi", t1, Algorithm::Bi, fast.clone()).with_cache_namespace("t1-pool"),
        Scenario::new("t3/apx", t3.clone(), Algorithm::Apx, fast.clone())
            .with_cache_namespace("t3-pool"),
        Scenario::new(
            "t3/div",
            t3,
            Algorithm::Div,
            fast.with_diversification(4, 0.5),
        )
        .with_cache_namespace("t3-pool"),
    ];
    for scenario in scenarios {
        service.register(scenario).expect("register scenario");
    }
}

fn main() {
    let snapshot_path =
        std::env::temp_dir().join(format!("modis_service_daemon_{}.snap", std::process::id()));

    // ── Process 1: cold service behind a TCP daemon ────────────────────
    let service = Arc::new(Service::new(ServiceConfig::default()));
    register_scenarios(&service);
    let worker = service.spawn_worker();
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind daemon");
    println!("daemon listening on {}", daemon.addr());

    // A plain TCP client drives the protocol.
    let stream = TcpStream::connect(daemon.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut recv = move || -> String {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("recv");
        reply.trim_end().to_string()
    };

    // Pipelining: the LIST and all four SUBMITs go out in one burst —
    // no waiting between requests — and the reactor answers them in order.
    let names = ["t1/apx", "t1/bi", "t3/apx", "t3/div"];
    let mut burst = String::from("LIST\n");
    for name in &names {
        burst.push_str(&format!("SUBMIT {name}\n"));
    }
    writer.write_all(burst.as_bytes()).expect("send burst");
    println!("> LIST + 4×SUBMIT (one pipelined burst)");
    println!("< {}", recv());
    let mut tickets = Vec::new();
    for name in &names {
        let reply = recv();
        println!("< {reply}  ({name})");
        let id: u64 = reply
            .strip_prefix("TICKET ")
            .expect("ticket")
            .parse()
            .unwrap();
        tickets.push((name, id));
    }

    // WAIT subscribes to all four jobs: the background worker drains the
    // queue and each DONE line streams back the moment that run finishes
    // (completion order — no polling, no sleeps).
    let ids: Vec<String> = tickets.iter().map(|(_, id)| id.to_string()).collect();
    writeln!(writer, "WAIT {}", ids.join(" ")).expect("send wait");
    println!("> WAIT {}", ids.join(" "));
    for _ in &tickets {
        println!("< {}", recv());
    }

    writeln!(writer, "STATS").expect("send stats");
    println!("> STATS\n< {}", recv());
    let mut ask = move |line: &str| -> String {
        writeln!(writer, "{line}").expect("send");
        recv()
    };

    let reply = ask(&format!("SNAPSHOT {}", snapshot_path.display()));
    println!("> SNAPSHOT …\n< {reply}");
    assert!(reply.starts_with("OK "), "snapshot failed: {reply}");
    println!("> QUIT\n< {}", ask("QUIT"));

    daemon.stop();
    worker.join().expect("worker joins");

    // ── Process 2: a fresh service warm-started from the snapshot ──────
    println!("\nrestarting from {} …", snapshot_path.display());
    let revived =
        Service::from_snapshot(ServiceConfig::default(), &snapshot_path).expect("warm start");
    register_scenarios(&revived);
    let tickets: Vec<Ticket> = revived
        .submit_many(["t1/apx", "t1/bi", "t3/apx", "t3/div"])
        .expect("submit suite");
    revived.run_pending();

    println!(
        "{:<10} {:>8} {:>8} {:>12} {:>12}",
        "scenario", "skyline", "states", "oracle", "shared-hits"
    );
    let mut total_shared = 0;
    for ticket in tickets {
        let JobState::Done(outcome) = revived.poll(ticket).expect("poll") else {
            panic!("run not finished");
        };
        total_shared += outcome.shared_hits();
        println!(
            "{:<10} {:>8} {:>8} {:>12} {:>12}",
            outcome.name,
            outcome.result.len(),
            outcome.result.states_valuated,
            outcome.result.stats.oracle_calls,
            outcome.shared_hits(),
        );
    }
    let stats = revived.cache_stats();
    println!(
        "\nwarm restart: {} shared hits on the first wave — cache {} entries, {:.0}% hit rate",
        total_shared,
        stats.entries,
        100.0 * stats.hit_rate(),
    );
    assert!(
        total_shared > 0,
        "a restarted service must answer from the snapshot"
    );
    let _ = std::fs::remove_file(&snapshot_path);
}
