//! Task T5: generating skyline *graph* data for a LightGCN-style recommender.
//! Augment/reduct become edge insertions/deletions over a bipartite
//! user–item interaction graph.
//!
//! Run with `cargo run --example recommendation_graph`.

use modis_core::prelude::*;
use modis_datagen::t5_recommendation;

fn main() {
    let graph = t5_recommendation(5);
    println!(
        "Universal interaction graph: {} users × {} items, {} edges",
        graph.n_users,
        graph.n_items,
        graph.num_edges()
    );

    // Measures of Table 5: precision/recall/NDCG at 5 and 10, training time.
    let measures = MeasureSet::new(vec![
        MeasureSpec::maximise("p_Pc5"),
        MeasureSpec::maximise("p_Pc10"),
        MeasureSpec::maximise("p_Rc5"),
        MeasureSpec::maximise("p_Rc10"),
        MeasureSpec::maximise("p_Nc5"),
        MeasureSpec::maximise("p_Nc10"),
        MeasureSpec::minimise("p_Train", 10.0),
    ]);
    let space = GraphSpaceConfig {
        n_edge_clusters: 6,
        ..GraphSpaceConfig::default()
    };
    let substrate = GraphSubstrate::new(graph, measures, space);

    // Performance of the untouched graph.
    let full = substrate.forward_start();
    let original = substrate.evaluate_raw(&full);
    println!(
        "Original graph: P@5 {:.3}, NDCG@10 {:.3}, training {:.2}s",
        original[0], original[5], original[6]
    );

    // Run ApxMODis (edge deletions from the universal graph).
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(20)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Oracle);
    let skyline = apx_modis(&substrate, &config);
    println!("\nApxMODis skyline ({} graphs):", skyline.len());
    for (i, e) in skyline.entries.iter().enumerate() {
        println!(
            "  G{} — P@5 {:.3}, P@10 {:.3}, NDCG@10 {:.3}, edges {}",
            i + 1,
            e.raw[0],
            e.raw[1],
            e.raw[5],
            e.size.0
        );
    }
    println!("\nPruning noisy cross-community edge clusters typically lifts P@k and NDCG@k");
    println!("above the original graph while shrinking the graph — the Table 5 behaviour.");
}
