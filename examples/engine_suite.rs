//! Multi-scenario engine suite: run several (task × algorithm) scenarios
//! concurrently through the `modis-engine` execution engine, sharing one
//! evaluation cache per pool.
//!
//! Run with `cargo run --release --example engine_suite`.

use std::sync::Arc;

use modis_bench::{task_t1, task_t3};
use modis_core::prelude::*;
use modis_core::substrate::Substrate;
use modis_engine::{Algorithm, Engine, EngineConfig, Scenario};

fn main() {
    // Two tabular pools; scenarios over the same pool share a cache
    // namespace, so states valuated by one algorithm are free for the rest.
    let t1: Arc<dyn Substrate> = Arc::new(task_t1(21).substrate());
    let t3: Arc<dyn Substrate> = Arc::new(task_t3(5).substrate());

    let fast = ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(25)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Oracle);

    let scenarios = vec![
        Scenario::new("t1/ApxMODis", t1.clone(), Algorithm::Apx, fast.clone())
            .with_cache_namespace("t1-pool"),
        Scenario::new("t1/BiMODis", t1.clone(), Algorithm::Bi, fast.clone())
            .with_cache_namespace("t1-pool"),
        Scenario::new(
            "t1/DivMODis",
            t1,
            Algorithm::Div,
            fast.clone().with_diversification(4, 0.5),
        )
        .with_cache_namespace("t1-pool"),
        Scenario::new("t3/ApxMODis", t3.clone(), Algorithm::Apx, fast.clone())
            .with_cache_namespace("t3-pool"),
        Scenario::new("t3/NOBiMODis", t3, Algorithm::NoBi, fast).with_cache_namespace("t3-pool"),
    ];

    let engine = Engine::new(
        EngineConfig::default()
            .with_scenario_parallelism(4)
            .with_worker_threads(4),
    );
    println!(
        "Running {} scenarios ({} concurrent, {} expander threads)…\n",
        scenarios.len(),
        engine.config().scenario_parallelism,
        engine.config().worker_threads
    );
    let suite = engine.run_suite(&scenarios);

    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>12} {:>9}",
        "scenario", "skyline", "states", "oracle", "cache-hits", "secs"
    );
    for outcome in &suite.outcomes {
        println!(
            "{:<14} {:>8} {:>8} {:>12} {:>12} {:>9.2}",
            outcome.name,
            outcome.result.len(),
            outcome.result.states_valuated,
            outcome.result.stats.oracle_calls,
            outcome.shared_hits(),
            outcome.wall_seconds,
        );
    }

    let cache = suite.cache;
    println!(
        "\nSuite finished in {:.2}s — shared cache: {} entries, {} hits, {} misses ({:.0}% hit rate)",
        suite.wall_seconds,
        cache.entries,
        cache.hits,
        cache.misses,
        100.0 * cache.hits as f64 / (cache.hits + cache.misses).max(1) as f64,
    );
    assert!(
        suite.total_shared_hits() > 0,
        "scenarios sharing a pool should reuse evaluations"
    );
    println!(
        "Evaluation reuse across scenarios: {} hits",
        suite.total_shared_hits()
    );
}
