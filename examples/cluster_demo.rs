//! The sharded cluster, end to end:
//!
//! 1. boot a 2-shard cluster (two full services, each with its own engine
//!    and bounded cache, behind their own reactors) fronted by a router,
//! 2. drive a pipelined suite through the router — placement by
//!    rendezvous hashing is invisible to the client,
//! 3. print per-shard (`SHARDS`) and aggregated cluster (`STATS`)
//!    telemetry, then scrape the cluster-wide `METRICS` exposition (every
//!    shard's instruments behind one scrape, labeled `shard="…"`) and the
//!    merged `TRACE DUMP` spans,
//! 4. submit two scenarios owned by different shards on one connection and
//!    `EXPLAIN` the first ticket — the router stitches its own forward
//!    spans and both shards' queue-wait/engine spans into one
//!    wall-clock-ordered timeline under a single trace id,
//! 5. grow the cluster: a third shard joins, the namespaces it now owns
//!    are shipped as snapshot shipments, and its **first** request is
//!    answered entirely from the shipped warm cache (zero paid
//!    valuations).
//!
//! Run with `cargo run --release --example cluster_demo`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use modis_bench::{drive_suite, ClusterWorkload};

fn main() {
    let workload = ClusterWorkload {
        namespaces: 3,
        rows: 400,
        max_states: 12,
        engine_cache_capacity: 0,
        memo_capacity: 0,
    };
    let cluster = workload.build_cluster(2);
    println!(
        "router on {} fronting {} shards",
        cluster.router.addr(),
        cluster.shards.len()
    );
    for i in 0..workload.namespaces {
        let namespace = workload.namespace(i);
        println!(
            "  namespace {namespace} -> {}",
            cluster.router.owner_of(&namespace).expect("owned")
        );
    }

    // ── Suite through the router (pipelined SUBMITs + RUN, WAIT, RESULT) ──
    let names = workload.scenario_names();
    let outcomes = drive_suite(cluster.router.addr(), &names);
    println!("\n{:<10} DONE payload", "scenario");
    for outcome in &outcomes {
        println!("{:<10} {}", outcome.scenario, outcome.done);
    }

    // ── Telemetry: per shard, then the cluster-wide aggregate ─────────────
    let stream = TcpStream::connect(cluster.router.addr()).expect("connect router");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut recv = move || -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        line.trim_end().to_string()
    };
    writeln!(writer, "SHARDS").expect("send SHARDS");
    let header = recv();
    println!("\n{header}");
    let count: usize = header.strip_prefix("SHARDS ").unwrap().parse().unwrap();
    for _ in 0..count {
        println!("{}", recv());
    }
    writeln!(writer, "STATS").expect("send STATS");
    let stats = recv();
    println!("{stats}");
    assert!(
        stats.contains("cluster_shards=2"),
        "aggregate line: {stats}"
    );

    // ── Cluster-wide METRICS scrape: one scrape sees every shard ──────────
    writeln!(writer, "METRICS").expect("send METRICS");
    let header = recv();
    let count: usize = header
        .strip_prefix("METRICS ")
        .expect("METRICS header")
        .parse()
        .expect("line count");
    let lines: Vec<String> = (0..count).map(|_| recv()).collect();
    let paid: Vec<&String> = lines
        .iter()
        .filter(|l| l.starts_with("engine_paid_valuations_total{"))
        .collect();
    println!("\nMETRICS scrape: {count} lines; paid-valuation counters:");
    for line in &paid {
        println!("  {line}");
    }
    if let Some(bucket) = lines
        .iter()
        .find(|l| l.starts_with("reactor_request_us_bucket{shard=\""))
    {
        println!("  sample per-shard histogram line: {bucket}");
    }
    assert!(
        lines.iter().any(|l| l.contains("_bucket{shard=\"")),
        "no per-shard-labeled histogram lines in the scrape"
    );
    assert!(
        paid.iter().any(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|v| v > 0)
        }),
        "no shard reported paid valuations: {paid:?}"
    );
    // The dominance kernels ran inside every shard's scenario runs; the
    // merged scrape must show them pruning comparisons somewhere.
    let pruned: Vec<&String> = lines
        .iter()
        .filter(|l| l.starts_with("dominance_pruned_total{"))
        .collect();
    println!("  dominance-kernel pruning counters:");
    for line in &pruned {
        println!("  {line}");
    }
    assert!(
        pruned.iter().any(|l| {
            l.rsplit(' ')
                .next()
                .and_then(|v| v.parse::<u64>().ok())
                .is_some_and(|v| v > 0)
        }),
        "no shard reported pruned dominance comparisons: {pruned:?}"
    );

    // ── Merged trace dump: the newest spans across the cluster ────────────
    writeln!(writer, "TRACE DUMP 4").expect("send TRACE DUMP");
    let header = recv();
    let spans: usize = header
        .strip_prefix("SPANS ")
        .expect("SPANS header")
        .parse()
        .expect("span count");
    println!("\nTRACE DUMP (up to 4 spans per shard):");
    for _ in 0..spans {
        println!("  {}", recv());
    }

    // ── EXPLAIN: one distributed trace, stitched across the cluster ───────
    // Two scenarios on differently-owned namespaces, submitted on this same
    // connection, ride one trace; EXPLAIN merges the router's forward spans
    // with both shards' queue-wait and engine spans into one wall-clock
    // timeline.
    let owners: Vec<String> = (0..workload.namespaces)
        .map(|i| {
            cluster
                .router
                .owner_of(&workload.namespace(i))
                .expect("owned")
        })
        .collect();
    let pool_of = |name: &str| -> usize { name[2..name.find('/').unwrap()].parse().unwrap() };
    let (first, second) = names
        .iter()
        .flat_map(|a| names.iter().map(move |b| (a, b)))
        .find(|(a, b)| owners[pool_of(a)] != owners[pool_of(b)])
        .expect("two scenarios on differently-owned namespaces");
    writeln!(writer, "SUBMIT {first}").expect("send SUBMIT");
    let reply = recv();
    let ticket: u64 = reply
        .strip_prefix("TICKET ")
        .expect("TICKET reply")
        .parse()
        .expect("ticket id");
    writeln!(writer, "SUBMIT {second}").expect("send SUBMIT");
    let reply = recv();
    let partner: u64 = reply
        .strip_prefix("TICKET ")
        .expect("TICKET reply")
        .parse()
        .expect("ticket id");
    writeln!(writer, "RUN").expect("send RUN");
    assert!(recv().starts_with("OK "), "RUN reply");
    writeln!(writer, "WAIT {ticket} {partner}").expect("send WAIT");
    for _ in 0..2 {
        assert!(recv().starts_with("DONE "), "WAIT reply");
    }
    writeln!(writer, "EXPLAIN {ticket}").expect("send EXPLAIN");
    let header = recv();
    let events: usize = header
        .strip_prefix("TIMELINE ")
        .expect("TIMELINE header")
        .parse()
        .expect("event count");
    println!("\nEXPLAIN {ticket} — stitched timeline, {events} events:");
    let mut shards_seen = std::collections::HashSet::new();
    for _ in 0..events {
        let line = recv();
        if let Some(shard) = line.rsplit(" shard=").next() {
            shards_seen.insert(shard.to_string());
        }
        println!("  {line}");
    }
    assert!(
        shards_seen.len() >= 3,
        "expected router + 2 shards in the timeline: {shards_seen:?}"
    );

    // ── Grow the cluster: join a shard, ship its namespaces' caches ───────
    // Pick a joiner name that rendezvous-owns at least one namespace
    // (ownership is a pure function of the name set, so we can plan it).
    let current = cluster.router.shard_map();
    let joiner = (2..100)
        .map(|i| format!("shard{i}"))
        .find(|candidate| {
            let mut with = current.clone();
            with.add(candidate.clone());
            (0..workload.namespaces).any(|i| {
                with.owner_of_namespace(&workload.namespace(i)) == Some(candidate.as_str())
            })
        })
        .expect("a candidate that owns something");
    let new_shard = workload.spawn_shard(&joiner);
    let shipped = cluster
        .router
        .join_shard(&joiner, new_shard.daemon.addr())
        .expect("join ships and commits");
    println!("\n{joiner} joined; shipped warm caches:");
    for shipment in &shipped {
        println!(
            "  {} : {} -> {}",
            shipment.namespace, shipment.from, shipment.to
        );
    }

    // First request on the grown cluster for a moved namespace: answered
    // from the shipped snapshot — zero paid valuation cost.
    let moved = &shipped.first().expect("something moved").namespace;
    let scenario = names
        .iter()
        .find(|n| {
            let pool: usize = n[2..n.find('/').unwrap()].parse().unwrap();
            &workload.namespace(pool) == moved
        })
        .expect("a scenario on the moved namespace");
    let rerun = drive_suite(cluster.router.addr(), std::slice::from_ref(scenario));
    let done = &rerun[0].done;
    println!("\nfirst request on {joiner} ({scenario}): {done}");
    assert!(
        done.contains(" cost=0 "),
        "the joined shard paid for valuations: {done}"
    );
    writeln!(writer, "STATS").expect("send STATS");
    let stats = recv();
    println!("cluster after join: {stats}");
    assert!(stats.contains("cluster_shards=3"), "{stats}");

    let _ = writeln!(writer, "QUIT");
    cluster.stop();
    new_shard.daemon.stop();
}
