//! Quickstart: generate a skyline set of datasets for a small regression
//! model over a synthetic table pool.
//!
//! Run with `cargo run --example quickstart`.

use modis_core::prelude::*;
use modis_datagen::t1_movie;

fn main() {
    // 1. A pool of joinable source tables (here: the synthetic T1 workload).
    let pool = t1_movie(7);
    println!(
        "Pool: {} tables, base table has {} rows",
        pool.tables.len(),
        pool.base().num_rows()
    );

    // 2. The downstream task: a gradient-boosting regressor that should score
    //    well on R² while staying cheap to train.
    let task = TaskSpec {
        name: "quickstart".into(),
        model: ModelKind::GradientBoostingRegressor,
        target: pool.target.clone(),
        key: Some(pool.join_key.clone()),
        measures: MeasureSet::new(vec![
            MeasureSpec::maximise("p_Acc"),
            MeasureSpec::minimise("p_Train", 5.0),
        ]),
        metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
        train_ratio: 0.7,
        seed: 7,
    };

    // 3. Build the search space (universal table + reducible units).
    let space = TableSpaceConfig {
        join_key: pool.join_key.clone(),
        ..TableSpaceConfig::default()
    };
    let substrate = TableSubstrate::from_pool(&pool.tables, task, &space);
    println!(
        "Universal table D_U: {:?}, {} reducible units",
        substrate.universal().reported_size(),
        substrate.num_units()
    );

    // 4. Run BiMODis and inspect the skyline.
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(40)
        .with_max_level(5)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 10,
            refresh: 8,
        });
    let skyline = bi_modis(&substrate, &config);

    println!(
        "\nBiMODis valuated {} states in {:.2}s and produced {} skyline datasets:",
        skyline.states_valuated,
        skyline.elapsed_seconds,
        skyline.len()
    );
    for (i, entry) in skyline.entries.iter().enumerate() {
        println!(
            "  D{} — R² {:.3}, training cost {:.3}s, size {:?}",
            i + 1,
            entry.raw[0],
            entry.raw[1],
            entry.size
        );
    }

    // 5. Compare against the original (un-augmented) base table.
    let baseline = original(pool.base(), substrate.task());
    println!(
        "\nOriginal base table: R² {:.3}, training cost {:.3}s",
        baseline.evaluation.raw[0], baseline.evaluation.raw[1]
    );
}
