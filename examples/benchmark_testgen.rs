//! Test-data generation for model benchmarking (case study 2 of §6):
//! configure MODis so that the generated datasets are test sets on which an
//! image classifier demonstrates "accuracy > 0.85" and "training cost < 30 s".
//!
//! Run with `cargo run --example benchmark_testgen`.

use modis_core::prelude::*;
use modis_datagen::image_feature_pool;

fn main() {
    // A pool of image-feature tables (a reduced-scale stand-in for the
    // paper's 75-table, 768-column HF pool).
    let pool = image_feature_pool(3, 10, 4);
    println!("Image feature pool: {} tables", pool.tables.len());

    let task = TaskSpec {
        name: "benchmark-testgen".into(),
        model: ModelKind::LogisticClassifier,
        target: pool.target.clone(),
        key: Some(pool.join_key.clone()),
        measures: MeasureSet::new(vec![
            // accuracy > 0.85  ⇔  normalised (1 − acc) ≤ 0.15
            MeasureSpec::maximise("p_Acc").with_bounds(0.001, 0.15),
            // training cost < 30 s  ⇔  normalised time ≤ 1 against a 30 s scale
            MeasureSpec::minimise("p_Train", 30.0).with_bounds(0.0001, 1.0),
        ]),
        metric_kinds: vec![MetricKind::Accuracy, MetricKind::TrainTime],
        train_ratio: 0.7,
        seed: 3,
    };

    let space = TableSpaceConfig {
        join_key: pool.join_key.clone(),
        max_clusters_per_attr: 1,
        ..TableSpaceConfig::default()
    };
    let substrate = TableSubstrate::from_pool(&pool.tables, task, &space);
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(40)
        .with_max_level(4)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 10,
            refresh: 8,
        });

    let skyline = bi_modis(&substrate, &config);
    println!(
        "BiMODis generated {} candidate test datasets in {:.2}s ({} states valuated):",
        skyline.len(),
        skyline.elapsed_seconds,
        skyline.states_valuated
    );
    for (i, e) in skyline.entries.iter().enumerate() {
        let ok = e.raw[0] > 0.85 && e.raw[1] < 30.0;
        println!(
            "  candidate {} — accuracy {:.3}, training cost {:.3}s, size {:?} {}",
            i + 1,
            e.raw[0],
            e.raw[1],
            e.size,
            if ok {
                "(satisfies constraints)"
            } else {
                "(near-miss)"
            }
        );
    }
}
