//! Integration tests of the cluster layer: a 2-shard cluster is
//! indistinguishable from (and byte-identical to) the single-process
//! engine, rendezvous rebalancing moves exactly the affected namespaces
//! and ships their warm caches, and a shard process killed mid-suite is
//! revived from its last snapshot without perturbing a single result
//! byte.
//!
//! Byte identity is asserted through the `RESULT` wire encoding, which
//! carries every float as its IEEE-754 bit pattern: two skylines are
//! byte-identical iff their `RESULT` payloads are string-equal. For the
//! T3 workload (whose `p_Train` measure includes real wall-clock) the
//! identity path is the shipped evaluations themselves — the same
//! trained valuations answering in both topologies — which is exactly
//! the guarantee the snapshot-shipping tentpole must provide.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use modis_bench::{
    drive_suite, fetch_stats, register_t3_cluster, t3_cluster_namespace, t3_cluster_scenarios,
    t3_cluster_spec, ClusterWorkload,
};
use modis_core::config::ModisConfig;
use modis_core::estimator::EstimatorMode;
use modis_core::substrate::mock::MockSubstrate;
use modis_core::substrate::Substrate;
use modis_engine::{Algorithm, Scenario, SharedEvalCache};
use modis_service::{
    result_line, CircuitState, ClusterSpec, Daemon, JobState, Router, RouterConfig, Service,
    ServiceConfig, ShardMap,
};

static TEMP_COUNTER: AtomicUsize = AtomicUsize::new(0);

fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "modis_cluster_it_{}_{}_{}",
        tag,
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Runs `scenarios` on an in-process service and returns each scenario's
/// `RESULT` payload (after the ticket id) — the same bytes the wire
/// protocol would serve.
fn run_in_process(service: &Service, scenarios: &[String]) -> Vec<String> {
    let tickets: Vec<_> = scenarios
        .iter()
        .map(|name| service.submit(name).expect("submit"))
        .collect();
    service.run_pending();
    scenarios
        .iter()
        .zip(&tickets)
        .map(|(name, &ticket)| {
            let JobState::Done(outcome) = service.poll(ticket).expect("poll") else {
                panic!("{name} did not finish");
            };
            let line = result_line(ticket.0, &outcome);
            line.split_once(' ')
                .and_then(|(_, rest)| rest.split_once(' '))
                .map(|(_, payload)| payload.to_string())
                .unwrap_or_default()
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Rendezvous-hash stability (property test)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Adding a shard reassigns only namespaces the new shard now owns;
    /// removing one reassigns only namespaces it owned. No unrelated
    /// namespace ever moves — the invariant that lets a topology change
    /// ship exactly the affected snapshot slices.
    #[test]
    fn rendezvous_moves_only_the_joining_or_leaving_shards_namespaces(
        keys in prop::collection::vec(any::<u64>(), 1..200),
        shard_count in 1usize..8,
        victim_pick in 0usize..8,
    ) {
        let names: Vec<String> = (0..shard_count).map(|i| format!("s{i}")).collect();
        let before = ShardMap::from_names(names.clone());

        // Join: everything that moves, moves to the joiner.
        let mut joined = before.clone();
        joined.add("joiner".to_string());
        for (key, _, to) in before.reassigned(&joined, keys.iter().copied()) {
            prop_assert_eq!(to, "joiner", "key {:#x} moved to an unrelated shard", key);
        }
        // Ownership of unmoved keys is untouched even by name: re-check
        // against an independently rebuilt map (pure function of the set).
        let rebuilt = ShardMap::from_names(
            names.iter().cloned().chain(["joiner".to_string()]),
        );
        for &key in &keys {
            prop_assert_eq!(joined.owner_of(key), rebuilt.owner_of(key));
        }

        // Leave: everything that moves, moves off the victim.
        if shard_count > 1 {
            let victim = names[victim_pick % shard_count].clone();
            let mut left = before.clone();
            left.remove(&victim);
            for (key, from, _) in before.reassigned(&left, keys.iter().copied()) {
                prop_assert_eq!(from, victim.as_str(), "key {:#x} moved off a survivor", key);
            }
            // Join-then-leave of the same shard is a perfect round trip.
            let mut back = joined.clone();
            back.remove("joiner");
            for &key in &keys {
                prop_assert_eq!(back.owner_of(key), before.owner_of(key));
            }
        }
    }

    /// The K-way generalisation: replica sets are always `min(K, shards)`
    /// *distinct* shards, and a topology change moves replica sets
    /// minimally — a join gains only the joiner (displacing at most one
    /// rank) with a warm surviving source to ship from; a leave loses only
    /// the leaver, promoting at most one stand-in.
    #[test]
    fn top_k_owner_sets_stay_distinct_and_move_minimally(
        keys in prop::collection::vec(any::<u64>(), 1..150),
        shard_count in 1usize..8,
        k in 1usize..4,
    ) {
        let names: Vec<String> = (0..shard_count).map(|i| format!("s{i}")).collect();
        let before = ShardMap::from_names(names.clone());
        for &key in &keys {
            let owners = before.owners_of(key, k);
            prop_assert_eq!(owners.len(), k.min(shard_count), "min(K, shards) owners");
            let mut dedup = owners.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert_eq!(dedup.len(), owners.len(), "owners are distinct");
            prop_assert_eq!(owners.first().copied(), before.owner_of(key), "rank 0 is the primary");
        }

        // Join: every changed replica set gains exactly the joiner.
        let mut joined = before.clone();
        joined.add("joiner".to_string());
        for mv in before.reassigned_replicas(&joined, keys.iter().copied(), k) {
            prop_assert_eq!(&mv.gained, &vec!["joiner".to_string()], "only the joiner gains");
            prop_assert!(mv.lost.len() <= 1, "at most the displaced rank leaves");
            let source = mv.source.clone().expect("warm source");
            prop_assert!(names.contains(&source), "the source survives the join");
        }

        // Leave: every changed replica set loses exactly the leaver.
        if shard_count > 1 {
            let victim = names[0].clone();
            let mut left = before.clone();
            left.remove(&victim);
            for mv in before.reassigned_replicas(&left, keys.iter().copied(), k) {
                prop_assert_eq!(&mv.lost, &vec![victim.clone()], "only the leaver loses");
                prop_assert!(mv.gained.len() <= 1, "at most one stand-in is promoted");
                prop_assert!(mv.source.is_some());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cold byte-identity on a fully deterministic workload
// ---------------------------------------------------------------------------

fn mock_spec() -> ClusterSpec {
    ClusterSpec::new([
        ("m8/apx", "m8-pool"),
        ("m8/bi", "m8-pool"),
        ("m10/apx", "m10-pool"),
        ("m10/bi", "m10-pool"),
    ])
    .unwrap()
}

fn register_mock_cluster(service: &Service) {
    let config = ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(60)
        .with_max_level(4)
        .with_estimator(EstimatorMode::Oracle);
    for (units, tag) in [(8usize, "m8"), (10, "m10")] {
        let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(units));
        for (suffix, algorithm) in [("apx", Algorithm::Apx), ("bi", Algorithm::Bi)] {
            service
                .register(
                    Scenario::new(
                        format!("{tag}/{suffix}"),
                        substrate.clone(),
                        algorithm,
                        config.clone(),
                    )
                    .with_cache_namespace(format!("{tag}-pool")),
                )
                .unwrap();
        }
    }
}

/// A cold 2-shard cluster and a cold single process produce byte-identical
/// skylines on a fully deterministic workload: sharding and routing do not
/// perturb a single result byte.
#[test]
fn cold_two_shard_cluster_matches_the_single_process_engine() {
    let scenarios: Vec<String> = ["m8/apx", "m8/bi", "m10/apx", "m10/bi"]
        .map(str::to_string)
        .to_vec();

    let reference = Service::new(ServiceConfig::default());
    register_mock_cluster(&reference);
    let expected = run_in_process(&reference, &scenarios);

    let shards: Vec<(Arc<Service>, Daemon)> = (0..2)
        .map(|_| {
            let service = Arc::new(Service::new(ServiceConfig::default()));
            register_mock_cluster(&service);
            let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
            (service, daemon)
        })
        .collect();
    let router = Router::bind(
        mock_spec(),
        vec![
            ("shard0".to_string(), shards[0].1.addr()),
            ("shard1".to_string(), shards[1].1.addr()),
        ],
        "127.0.0.1:0",
    )
    .unwrap();

    let outcomes = drive_suite(router.addr(), &scenarios);
    for (outcome, expected) in outcomes.iter().zip(&expected) {
        assert_eq!(
            &outcome.result, expected,
            "{}: cluster vs single-process skyline bytes",
            outcome.scenario
        );
    }
    // The cluster aggregate sees both shards.
    let stats = fetch_stats(router.addr());
    assert!(stats.contains("cluster_shards=2"), "{stats}");

    router.stop();
    for (_, daemon) in shards {
        daemon.stop();
    }
}

// ---------------------------------------------------------------------------
// Router protocol semantics
// ---------------------------------------------------------------------------

fn recv(reader: &mut BufReader<TcpStream>) -> String {
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply line");
    assert!(reply.ends_with('\n'), "truncated reply {reply:?}");
    reply.trim_end().to_string()
}

/// LIST/SHARDS/error-path semantics of the router, plus the `SNAPSHOT`
/// fan-out writing one file per shard. Requests are pipelined in bursts —
/// exercising that the router preserves ordering end-to-end.
#[test]
fn router_serves_cluster_verbs_and_error_paths() {
    let workload = ClusterWorkload {
        namespaces: 2,
        rows: 100,
        max_states: 5,
        engine_cache_capacity: 0,
        memo_capacity: 0,
    };
    let cluster = workload.build_cluster(2);

    let stream = TcpStream::connect(cluster.router.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // One pipelined burst covering local verbs and every error path; the
    // responses must come back strictly in request order.
    writer
        .write_all(
            b"PING\nLIST\nSHARDS\nSUBMIT ghost\nPOLL 999\nRESULT 999\nPOLL abc\nWAIT\n\
              NONSENSE\nWAIT 41 42\nPING\n",
        )
        .unwrap();
    assert_eq!(recv(&mut reader), "PONG");
    assert_eq!(recv(&mut reader), "SCENARIOS ws0/apx ws0/bi ws1/apx ws1/bi");
    assert_eq!(recv(&mut reader), "SHARDS 2");
    for _ in 0..2 {
        let line = recv(&mut reader);
        assert!(line.starts_with("SHARD shard"), "{line}");
        assert!(line.contains("namespaces="), "{line}");
    }
    assert!(recv(&mut reader).starts_with("ERR unknown scenario"));
    assert_eq!(recv(&mut reader), "ERR unknown ticket 999");
    assert_eq!(recv(&mut reader), "ERR unknown ticket 999");
    assert!(recv(&mut reader).starts_with("ERR POLL expects"));
    assert!(recv(&mut reader).starts_with("ERR WAIT expects"));
    assert!(recv(&mut reader).starts_with("ERR unknown command"));
    // A WAIT over only unknown tickets answers one error line per ticket
    // — and holds its pipeline position: the trailing PONG comes after.
    assert_eq!(recv(&mut reader), "ERR unknown ticket 41");
    assert_eq!(recv(&mut reader), "ERR unknown ticket 42");
    assert_eq!(recv(&mut reader), "PONG");

    // SNAPSHOT fans out to per-shard files.
    let base = temp_path("fanout");
    writeln!(writer, "SNAPSHOT {}", base.display()).unwrap();
    let reply = recv(&mut reader);
    assert!(reply.starts_with("OK "), "{reply}");
    for shard in ["shard0", "shard1"] {
        let path = PathBuf::from(format!("{}.{shard}", base.display()));
        assert!(path.exists(), "missing per-shard snapshot {path:?}");
        std::fs::remove_file(path).unwrap();
    }
    writeln!(writer, "QUIT").unwrap();
    assert_eq!(recv(&mut reader), "BYE");
    cluster.stop();
}

/// `METRICS` through the router merges every shard's exposition behind
/// one scrape — samples relabeled `shard="…"`, `# HELP`/`# TYPE` comments
/// deduplicated, the router's own families at the head — and `TRACE DUMP`
/// merges per-shard span dumps with a `shard=` suffix. Both hold their
/// pipeline position like any other verb.
#[test]
fn router_merges_cluster_metrics_and_trace_dumps() {
    let workload = ClusterWorkload {
        namespaces: 2,
        rows: 100,
        max_states: 5,
        engine_cache_capacity: 0,
        memo_capacity: 0,
    };
    let cluster = workload.build_cluster(2);
    let names = workload.scenario_names();
    let _ = drive_suite(cluster.router.addr(), &names);

    let stream = TcpStream::connect(cluster.router.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    writeln!(writer, "METRICS").unwrap();
    let header = recv(&mut reader);
    let count: usize = header
        .strip_prefix("METRICS ")
        .unwrap_or_else(|| panic!("bad METRICS header {header:?}"))
        .parse()
        .expect("numeric line count");
    let lines: Vec<String> = (0..count).map(|_| recv(&mut reader)).collect();

    // The router's own families lead the exposition, unrelabeled.
    assert!(
        lines
            .iter()
            .any(|l| l.starts_with("router_ticket_remaps_total ")),
        "router-own counter missing from the merged scrape"
    );
    // Every shard's reactor counters appear under its own shard label
    // (the router injects `shard=` as the first label).
    for shard in ["shard0", "shard1"] {
        let want = format!("reactor_requests_total{{shard=\"{shard}\",verb=\"run\"}}");
        assert!(
            lines.iter().any(|l| l.starts_with(&want)),
            "no {want} line in the merged scrape"
        );
    }
    // Histogram series are shard-labeled too (the CI smoke greps this).
    assert!(
        lines.iter().any(|l| l.contains("_bucket{shard=\"")),
        "no shard-labeled histogram bucket lines"
    );
    // `# HELP`/`# TYPE` comments repeat per shard on the wire but must be
    // deduplicated in the merge.
    let mut comment_counts: std::collections::HashMap<&str, usize> =
        std::collections::HashMap::new();
    for line in lines.iter().filter(|l| l.starts_with('#')) {
        *comment_counts.entry(line.as_str()).or_insert(0) += 1;
    }
    assert!(
        comment_counts.values().all(|&c| c == 1),
        "duplicated comment lines survived the merge"
    );
    // The suite paid for valuations somewhere in the cluster, and the
    // merged scrape sees it.
    let paid: u64 = lines
        .iter()
        .filter(|l| l.starts_with("engine_paid_valuations_total{"))
        .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
        .sum();
    assert!(paid > 0, "no paid valuations visible cluster-wide");

    writeln!(writer, "TRACE DUMP 8").unwrap();
    let header = recv(&mut reader);
    let spans: usize = header
        .strip_prefix("SPANS ")
        .unwrap_or_else(|| panic!("bad TRACE DUMP header {header:?}"))
        .parse()
        .expect("numeric span count");
    assert!(
        spans > 0 && spans <= 16,
        "expected 1..=8 spans per shard, got {spans}"
    );
    let mut shards_seen = std::collections::HashSet::new();
    for _ in 0..spans {
        let line = recv(&mut reader);
        assert!(line.starts_with("SPAN id="), "{line}");
        let shard = line
            .rsplit(' ')
            .next()
            .and_then(|t| t.strip_prefix("shard="))
            .unwrap_or_else(|| panic!("no shard= suffix on {line:?}"));
        shards_seen.insert(shard.to_string());
    }
    assert_eq!(
        shards_seen.len(),
        2,
        "spans from both shards: {shards_seen:?}"
    );

    // Error path + pipeline position.
    writer.write_all(b"TRACE DUMP nope\nPING\nQUIT\n").unwrap();
    assert_eq!(
        recv(&mut reader),
        "ERR TRACE DUMP expects a numeric span count"
    );
    assert_eq!(recv(&mut reader), "PONG");
    assert_eq!(recv(&mut reader), "BYE");
    cluster.stop();
}

/// Extracts a numeric `key=value` field from a `DONE` payload.
fn done_field(payload: &str, key: &str) -> u64 {
    payload
        .split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {payload:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key}= in {payload:?}"))
}

// ---------------------------------------------------------------------------
// Join mid-run: the new shard answers from the shipped warm cache
// ---------------------------------------------------------------------------

/// Grow a 1-shard cluster to 2 shards mid-run: the join ships the moved
/// namespaces' snapshots, and the new shard's very first requests are
/// served entirely from the shipped cache — zero paid valuations, byte-
/// identical skylines to the pre-join run (even though the workload's
/// `p_Train` measure contains real wall-clock, because nothing retrains).
#[test]
fn joined_shard_serves_its_first_request_from_the_shipped_warm_cache() {
    let workload = ClusterWorkload {
        namespaces: 2,
        rows: 160,
        max_states: 8,
        engine_cache_capacity: 0,
        memo_capacity: 0,
    };
    let cluster = workload.build_cluster(1);
    let names = workload.scenario_names();
    let first = drive_suite(cluster.router.addr(), &names);

    // Pick a joiner name that rendezvous-owns at least one namespace
    // alongside shard0 (ownership is a pure function of the name set, so
    // the test derives it instead of hoping).
    let current = cluster.router.shard_map();
    let namespace_keys: Vec<(String, u64)> = (0..workload.namespaces)
        .map(|i| {
            let ns = workload.namespace(i);
            let key = SharedEvalCache::namespace_key(&ns);
            (ns, key)
        })
        .collect();
    let joiner = (1..100)
        .map(|i| format!("shard{i}"))
        .find(|candidate| {
            let mut with = current.clone();
            with.add(candidate.clone());
            namespace_keys
                .iter()
                .any(|(_, key)| with.owner_of(*key) == Some(candidate.as_str()))
        })
        .expect("some candidate name owns a namespace");

    let new_shard = workload.spawn_shard(&joiner);
    let shipped = cluster
        .router
        .join_shard(&joiner, new_shard.daemon.addr())
        .expect("join ships and commits");
    assert!(!shipped.is_empty(), "the joiner took over some namespace");
    for shipment in &shipped {
        assert_eq!(
            shipment.to, joiner,
            "rendezvous join ships only to the joiner"
        );
        assert_eq!(shipment.from, "shard0");
    }
    let moved: Vec<&str> = shipped.iter().map(|s| s.namespace.as_str()).collect();
    for (ns, _) in &namespace_keys {
        if moved.contains(&ns.as_str()) {
            assert_eq!(cluster.router.owner_of(ns), Some(joiner.clone()));
        }
    }

    // Second wave through the grown cluster: scenarios on moved
    // namespaces now execute on the new shard, warm from the shipment.
    let second = drive_suite(cluster.router.addr(), &names);
    let mut warm_checked = 0;
    for (a, b) in first.iter().zip(&second) {
        let pool: usize = a.scenario[2..a.scenario.find('/').unwrap()]
            .parse()
            .expect("ws<i>/… scenario name");
        if moved.contains(&workload.namespace(pool).as_str()) {
            assert_eq!(
                a.result, b.result,
                "{}: shipped-warm skyline must be byte-identical",
                a.scenario
            );
            assert_eq!(
                done_field(&b.done, "cost"),
                0,
                "{}: first request on the joined shard paid for valuations ({})",
                a.scenario,
                b.done
            );
            assert!(
                done_field(&b.done, "shared_hits") > 0,
                "{}: no cache hits on the joined shard ({})",
                a.scenario,
                b.done
            );
            warm_checked += 1;
        }
    }
    assert!(warm_checked > 0);
    // The joined shard really served them (not shard0): its own cache
    // answered lookups.
    assert!(new_shard.service.cache_stats().hits > 0);

    cluster.stop();
    new_shard.daemon.stop();
}

// ---------------------------------------------------------------------------
// Fault injection: kill a shard process, revive it from its snapshot
// ---------------------------------------------------------------------------

struct ShardProc {
    child: Child,
    addr: std::net::SocketAddr,
}

impl ShardProc {
    fn spawn(seeds: &str, max_states: usize, snapshot: Option<&std::path::Path>) -> ShardProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_modis_shard"));
        cmd.args(["--seeds", seeds, "--max-states", &max_states.to_string()]);
        if let Some(path) = snapshot {
            cmd.args(["--snapshot", path.to_str().expect("utf-8 path")]);
        }
        cmd.stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        let mut child = cmd.spawn().expect("spawn modis_shard");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut reader = BufReader::new(stdout);
        let mut line = String::new();
        reader.read_line(&mut line).expect("ADDR line");
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("unexpected shard banner {line:?}"))
            .parse()
            .expect("socket addr");
        ShardProc { child, addr }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
    }
}

/// The tentpole's acceptance path, against **real OS processes**: a
/// 2-shard cluster runs the T3 suite; one shard process is killed
/// mid-suite; the router reports it unavailable while the survivor keeps
/// serving; the victim is revived *from its last snapshot* in a fresh
/// process and rewired; the resumed suite's skylines are byte-identical
/// to the pre-crash run and cost zero paid valuations; and a
/// single-process engine restored from the same snapshots reproduces
/// every skyline byte-for-byte.
#[test]
fn killed_shard_restarts_from_snapshot_with_byte_identical_skylines() {
    let seeds = [5u64, 9];
    let max_states = 12;
    let names = t3_cluster_scenarios(&seeds);

    let mut s1 = ShardProc::spawn("5,9", max_states, None);
    let mut s2 = ShardProc::spawn("5,9", max_states, None);
    let router = Router::bind(
        t3_cluster_spec(&seeds),
        vec![("s1".to_string(), s1.addr), ("s2".to_string(), s2.addr)],
        "127.0.0.1:0",
    )
    .unwrap();

    // Full cold suite through the cluster.
    let first = drive_suite(router.addr(), &names);

    // Snapshot every shard over the wire (one file per shard).
    let base = temp_path("t3snap");
    let stream = TcpStream::connect(router.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "SNAPSHOT {}", base.display()).unwrap();
    let reply = recv(&mut reader);
    assert!(reply.starts_with("OK "), "cluster snapshot: {reply}");

    // Kill the shard owning the seed-9 pool. Mid-suite: the survivor must
    // keep serving, requests to the victim must fail loudly (not hang).
    let victim_ns = t3_cluster_namespace(9);
    let victim = router.owner_of(&victim_ns).expect("namespace owned");
    let victim_snapshot = PathBuf::from(format!("{}.{victim}", base.display()));
    let survivor_scenario = {
        // A scenario whose namespace the *other* shard owns, if any; the
        // rendezvous map may put both pools on one shard, in which case
        // every scenario is a victim scenario.
        names
            .iter()
            .find(|name| {
                let seed: u64 = name[3..name.find('/').unwrap()].parse().unwrap();
                router.owner_of(&t3_cluster_namespace(seed)).as_deref() != Some(victim.as_str())
            })
            .cloned()
    };
    if victim == "s1" {
        s1.kill();
    } else {
        s2.kill();
    }

    let victim_scenarios: Vec<String> = names
        .iter()
        .filter(|name| {
            let seed: u64 = name[3..name.find('/').unwrap()].parse().unwrap();
            t3_cluster_namespace(seed) == victim_ns
                || router.owner_of(&t3_cluster_namespace(seed)).as_deref() == Some(victim.as_str())
        })
        .cloned()
        .collect();
    assert!(!victim_scenarios.is_empty());

    let reply_for = |writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str| {
        writeln!(writer, "{line}").unwrap();
        recv(reader)
    };
    let dead_reply = reply_for(
        &mut writer,
        &mut reader,
        &format!("SUBMIT {}", victim_scenarios[0]),
    );
    assert!(
        dead_reply.starts_with(&format!("ERR shard {victim} unavailable")),
        "dead shard must fail loudly: {dead_reply}"
    );
    if let Some(scenario) = &survivor_scenario {
        let alive = reply_for(&mut writer, &mut reader, &format!("SUBMIT {scenario}"));
        assert!(
            alive.starts_with("TICKET "),
            "survivor must keep serving: {alive}"
        );
    }

    // Revive the victim from its last snapshot in a brand-new process and
    // rewire the router. The dead process's tickets are invalidated.
    let revived = ShardProc::spawn("5,9", max_states, Some(&victim_snapshot));
    router.set_shard_addr(&victim, revived.addr).unwrap();
    let victim_first_ticket = first
        .iter()
        .find(|o| victim_scenarios.contains(&o.scenario))
        .expect("victim ran something")
        .ticket;
    let purged = reply_for(
        &mut writer,
        &mut reader,
        &format!("POLL {victim_first_ticket}"),
    );
    assert!(
        purged.starts_with("ERR unknown ticket"),
        "tickets of the dead process must be invalidated: {purged}"
    );

    // Resume the suite on the revived shard: byte-identical skylines,
    // zero paid valuations — everything answers from the snapshot.
    let resumed = drive_suite(router.addr(), &victim_scenarios);
    for outcome in &resumed {
        let original = first
            .iter()
            .find(|o| o.scenario == outcome.scenario)
            .unwrap();
        assert_eq!(
            original.result, outcome.result,
            "{}: resumed skyline must be byte-identical to the pre-crash run",
            outcome.scenario
        );
        assert_eq!(
            done_field(&outcome.done, "cost"),
            0,
            "{}: resume retrained something ({})",
            outcome.scenario,
            outcome.done
        );
    }

    // Independent check against the single-process engine: a lone service
    // restored from the *same shipped state* reproduces the whole cluster
    // suite byte-for-byte.
    let reference = Service::new(ServiceConfig::default());
    register_t3_cluster(&reference, &seeds, max_states);
    for shard in ["s1", "s2"] {
        let merged = reference
            .restore_from(&PathBuf::from(format!("{}.{shard}", base.display())))
            .expect("merge shard snapshot");
        assert!(merged > 0, "shard {shard} snapshot was empty");
    }
    let reference_results = run_in_process(&reference, &names);
    for (outcome, reference_payload) in first.iter().zip(&reference_results) {
        assert_eq!(
            &outcome.result, reference_payload,
            "{}: cluster vs single-process engine skyline bytes",
            outcome.scenario
        );
    }

    let _ = writeln!(writer, "QUIT");
    router.stop();
    for shard in ["s1", "s2"] {
        let _ = std::fs::remove_file(format!("{}.{shard}", base.display()));
    }
}

// ---------------------------------------------------------------------------
// Distributed tracing: one trace id stitched across real OS processes
// ---------------------------------------------------------------------------

/// A numeric `key=` field of an `EVENT`/`TRACE` line.
fn event_field(line: &str, key: &str) -> u64 {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {key}= in {line:?}"))
}

/// A string `key=` field of an `EVENT`/`TRACE` line.
fn event_str_field<'a>(line: &'a str, key: &str) -> &'a str {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
}

/// The tracing tentpole's acceptance path, against **real OS processes**:
/// two scenarios submitted on one router connection land on two different
/// shard processes, and `EXPLAIN <ticket>` stitches a single-trace-id,
/// time-ordered timeline covering the router's `forward` round-trips,
/// each shard's queue wait and the engine's scenario/valuation spans —
/// with every shard-side span parented to the router's forward span for
/// that request.
#[test]
fn explain_stitches_one_trace_across_router_and_two_shard_processes() {
    let seeds = [5u64, 9];
    let max_states = 8;

    // Pick a shard-name pair that rendezvous-splits the two pools, so the
    // trace provably crosses two distinct OS processes (ownership is a
    // pure function of the name set — derive it, don't hope).
    let keys: Vec<u64> = seeds
        .iter()
        .map(|&s| SharedEvalCache::namespace_key(&t3_cluster_namespace(s)))
        .collect();
    let partner = (2..100)
        .map(|i| format!("s{i}"))
        .find(|candidate| {
            let map = ShardMap::from_names(["s1".to_string(), candidate.clone()]);
            map.owner_of(keys[0]) != map.owner_of(keys[1])
        })
        .expect("some pair splits the pools");

    let s1 = ShardProc::spawn("5,9", max_states, None);
    let s2 = ShardProc::spawn("5,9", max_states, None);
    let router = Router::bind(
        t3_cluster_spec(&seeds),
        vec![("s1".to_string(), s1.addr), (partner.clone(), s2.addr)],
        "127.0.0.1:0",
    )
    .unwrap();

    let stream = TcpStream::connect(router.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Submit one scenario per pool (hence per shard process) on the SAME
    // connection — the router threads one distributed trace through both.
    writer
        .write_all(b"SUBMIT t3s5/apx\nSUBMIT t3s9/apx\nRUN\nWAIT 1 2\n")
        .unwrap();
    for ticket in 1..=2u64 {
        assert_eq!(recv(&mut reader), format!("TICKET {ticket}"));
    }
    assert!(recv(&mut reader).starts_with("OK "));
    for _ in 0..2 {
        assert!(recv(&mut reader).starts_with("DONE "));
    }

    writeln!(writer, "EXPLAIN 1").unwrap();
    let header = recv(&mut reader);
    let count: usize = header
        .strip_prefix("TIMELINE ")
        .unwrap_or_else(|| panic!("bad EXPLAIN header {header:?}"))
        .parse()
        .expect("numeric event count");
    assert!(count > 0, "empty timeline");
    let events: Vec<String> = (0..count).map(|_| recv(&mut reader)).collect();

    // One trace id across every event, router and shards alike.
    let trace = event_str_field(&events[0], "trace").to_string();
    assert_eq!(trace.len(), 16, "16-hex-digit trace id: {trace}");
    for event in &events {
        assert!(event.starts_with("EVENT "), "{event}");
        assert_eq!(event_str_field(event, "trace"), trace, "{event}");
    }

    // The timeline covers the router and both shard processes.
    let shards_seen: std::collections::HashSet<&str> = events
        .iter()
        .map(|event| event_str_field(event, "shard"))
        .collect();
    assert!(shards_seen.contains("router"), "{shards_seen:?}");
    assert!(
        shards_seen.len() >= 3,
        "expected router + 2 shard processes, saw {shards_seen:?}"
    );

    // The router recorded one `forward` round-trip per submission, and
    // every shard-side queue wait is parented to one of them — the link
    // that stitches the processes together.
    let forward_ids: std::collections::HashSet<u64> = events
        .iter()
        .filter(|e| event_str_field(e, "name") == "forward")
        .inspect(|e| assert_eq!(event_str_field(e, "shard"), "router", "{e}"))
        .map(|e| event_field(e, "span"))
        .collect();
    assert!(forward_ids.len() >= 2, "{events:#?}");
    let queue_waits: Vec<&String> = events
        .iter()
        .filter(|e| event_str_field(e, "name") == "queue_wait")
        .collect();
    assert_eq!(queue_waits.len(), 2, "{events:#?}");
    for event in &queue_waits {
        assert!(
            forward_ids.contains(&event_field(event, "parent")),
            "queue wait not parented to a router forward: {event}"
        );
        assert!(
            event_field(event, "dur_us") > 0,
            "zero queue wait over a network round-trip: {event}"
        );
        assert_ne!(event_str_field(event, "shard"), "router", "{event}");
    }
    // The engine's own spans made it into the same timeline.
    for name in ["job", "scenario", "valuation"] {
        assert!(
            events.iter().any(|e| event_str_field(e, "name") == name),
            "no {name} span in {events:#?}"
        );
    }

    // Time-ordered by wall-clock-anchored start, across processes.
    let starts: Vec<u64> = events.iter().map(|e| event_field(e, "start_us")).collect();
    assert!(
        starts.windows(2).all(|pair| pair[0] <= pair[1]),
        "timeline out of order: {starts:?}"
    );

    // `EXPLAIN TRACE <id>` names the same trace directly; the submitting
    // ticket and the raw trace id resolve to the same timeline.
    writeln!(writer, "EXPLAIN TRACE {trace}").unwrap();
    let direct = recv(&mut reader);
    assert_eq!(direct, header, "ticket and trace-id EXPLAIN disagree");
    for _ in 0..count {
        recv(&mut reader);
    }

    // Error paths hold their pipeline position.
    writer
        .write_all(b"EXPLAIN 999\nEXPLAIN TRACE zz\nEXPLAIN\nPING\nQUIT\n")
        .unwrap();
    assert_eq!(recv(&mut reader), "ERR unknown ticket 999");
    assert_eq!(
        recv(&mut reader),
        "ERR EXPLAIN TRACE expects a hex trace id"
    );
    assert_eq!(
        recv(&mut reader),
        "ERR EXPLAIN expects a ticket or TRACE <trace-id>"
    );
    assert_eq!(recv(&mut reader), "PONG");
    assert_eq!(recv(&mut reader), "BYE");
    router.stop();
}

// ---------------------------------------------------------------------------
// Failover: SIGKILL a primary, replicas serve with zero operator action
// ---------------------------------------------------------------------------

/// Strips the ` degraded=<shard>` marker a failed-over response carries.
fn strip_degraded(payload: &str) -> &str {
    match payload.rfind(" degraded=") {
        Some(cut) => &payload[..cut],
        None => payload,
    }
}

/// The HA tentpole's acceptance path: a 3-shard cluster with K=2
/// replication runs the T3 suite, the router pushes every namespace delta
/// to its replica, and then the primary of one pool is SIGKILLed. With
/// **no operator action** — no `set_shard_addr`, no revival — the
/// heartbeat declares it dead, pre-crash tickets transparently re-home
/// onto the warm replica, the full suite keeps serving byte-identical
/// skylines at zero paid valuations, and the degradation is visible
/// (`degraded=` flags, `router_failovers_total`).
#[test]
fn primary_sigkill_fails_over_to_warm_replica_without_operator_action() {
    let seeds = [5u64, 9];
    let max_states = 12;
    let names = t3_cluster_scenarios(&seeds);

    let mut shards: Vec<(String, ShardProc)> = (1..=3)
        .map(|i| (format!("s{i}"), ShardProc::spawn("5,9", max_states, None)))
        .collect();
    let config = RouterConfig {
        replication: 2,
        heartbeat_interval: Duration::from_millis(40),
        heartbeat_timeout: Duration::from_millis(150),
        heartbeat_misses: 2,
        backoff_base: Duration::from_millis(5),
        backoff_max: Duration::from_millis(40),
        open_cooldown: Duration::from_millis(250),
        ..RouterConfig::default()
    };
    let router = Router::bind_with(
        t3_cluster_spec(&seeds),
        shards
            .iter()
            .map(|(name, proc_)| (name.clone(), proc_.addr))
            .collect(),
        "127.0.0.1:0",
        config,
    )
    .unwrap();

    // Cold suite, then make sure every completed namespace's delta has
    // reached its replica owner *before* the crash.
    let first = drive_suite(router.addr(), &names);
    let warm_copies = router.flush_replication();
    assert!(warm_copies > 0, "no replica received a namespace delta");

    // SIGKILL the primary of the seed-9 pool. From here on the router is
    // on its own: the test never rewires or revives anything.
    let victim = router
        .owner_of(&t3_cluster_namespace(9))
        .expect("namespace owned");
    shards
        .iter_mut()
        .find(|(name, _)| *name == victim)
        .expect("victim process")
        .1
        .kill();

    // The heartbeat must declare the victim dead unaided.
    let deadline = Instant::now() + Duration::from_secs(10);
    while router.circuit_state(&victim) == CircuitState::Closed {
        assert!(
            Instant::now() < deadline,
            "heartbeat never declared {victim} dead"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // A pre-crash ticket homed on the victim: RESULT re-homes it onto the
    // warm replica — byte-identical payload, flagged as stand-in service.
    let victim_outcome = first
        .iter()
        .find(|outcome| {
            let seed: u64 = outcome.scenario[3..outcome.scenario.find('/').unwrap()]
                .parse()
                .unwrap();
            router.owner_of(&t3_cluster_namespace(seed)).as_deref() == Some(victim.as_str())
        })
        .expect("the victim owned some pool");
    let stream = TcpStream::connect(router.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "RESULT {}", victim_outcome.ticket).unwrap();
    let reply = recv(&mut reader);
    let rest = reply
        .strip_prefix("RESULT ")
        .unwrap_or_else(|| panic!("failover RESULT: {reply}"));
    let (id, payload) = rest.split_once(' ').expect("RESULT payload");
    assert_eq!(
        id.parse::<u64>().expect("numeric id"),
        victim_outcome.ticket
    );
    assert!(
        payload.contains(" degraded="),
        "stand-in service must be flagged: {payload}"
    );
    assert_eq!(
        strip_degraded(payload),
        victim_outcome.result,
        "{}: failed-over skyline must be byte-identical",
        victim_outcome.scenario
    );
    let _ = writeln!(writer, "QUIT");

    // The full suite keeps serving through the degraded cluster:
    // byte-identical skylines, zero paid valuations (the replica answers
    // from the shipped warm cache — nothing retrains).
    let second = drive_suite(router.addr(), &names);
    for (a, b) in first.iter().zip(&second) {
        assert_eq!(a.scenario, b.scenario);
        assert_eq!(
            strip_degraded(&b.result),
            a.result,
            "{}: degraded-cluster skyline must be byte-identical",
            a.scenario
        );
        assert_eq!(
            done_field(&b.done, "cost"),
            0,
            "{}: failover retrained something ({})",
            a.scenario,
            b.done
        );
    }
    assert!(
        second.iter().any(|o| o.result.contains(" degraded=")),
        "no response carried the degraded flag"
    );

    // The degradation is observable: the failover counter moved and the
    // cluster STATS line names the dead shard.
    let failovers: u64 = router
        .metrics()
        .render()
        .iter()
        .find_map(|line| {
            line.strip_prefix(&format!("router_failovers_total{{shard=\"{victim}\"}} "))
                .and_then(|value| value.trim().parse().ok())
        })
        .expect("failover counter rendered");
    assert!(failovers >= 1, "no failover counted for {victim}");
    let stats = fetch_stats(router.addr());
    assert!(
        stats.contains(&format!("degraded={victim}")),
        "STATS must flag the dead shard: {stats}"
    );

    router.stop();
}
