//! Integration tests for the T5 graph task: GraphSubstrate + MODis variants.

use modis_bench::{run_graph_methods, t5_measures};
use modis_core::prelude::*;
use modis_datagen::graphs::{generate_bipartite_graph, GraphConfig};

fn small_graph_config() -> GraphConfig {
    GraphConfig {
        n_users: 24,
        n_items: 24,
        n_groups: 3,
        interactions_per_user: 5,
        noise_fraction: 0.4,
        feature_dim: 3,
        seed: 51,
    }
}

fn fast_modis_config() -> ModisConfig {
    ModisConfig::default()
        .with_epsilon(0.2)
        .with_max_states(12)
        .with_max_level(2)
        .with_estimator(EstimatorMode::Oracle)
}

#[test]
fn graph_methods_produce_full_measure_vectors() {
    let graph = generate_bipartite_graph(&small_graph_config());
    let space = GraphSpaceConfig {
        n_edge_clusters: 4,
        ..GraphSpaceConfig::default()
    };
    let rows = run_graph_methods(&graph, &fast_modis_config(), &space);
    assert_eq!(rows.len(), 5); // Original + 4 MODis variants
    for row in &rows {
        assert_eq!(row.raw.len(), t5_measures().len(), "row {}", row.method);
        // Ranking metrics stay in [0, 1].
        assert!(
            row.raw[..6].iter().all(|&v| (0.0..=1.0).contains(&v)),
            "row {}",
            row.method
        );
    }
}

#[test]
fn reducing_noise_edges_does_not_hurt_ranking_much() {
    let graph = generate_bipartite_graph(&small_graph_config());
    let space = GraphSpaceConfig {
        n_edge_clusters: 4,
        ..GraphSpaceConfig::default()
    };
    let substrate = GraphSubstrate::new(graph, t5_measures(), space);
    let result = apx_modis(&substrate, &fast_modis_config());
    assert!(!result.is_empty());
    let original_p5 = substrate.evaluate_raw(&substrate.forward_start())[0];
    let best_p5 = result.best_by_raw(0, true).map(|e| e.raw[0]).unwrap_or(0.0);
    // The skyline's best P@5 should be at least comparable to the original
    // graph (the search may also strictly improve it by dropping noise).
    assert!(
        best_p5 >= original_p5 * 0.8,
        "best P@5 {best_p5} collapsed vs original {original_p5}"
    );
}

#[test]
fn graph_skyline_outputs_are_smaller_graphs() {
    let graph = generate_bipartite_graph(&small_graph_config());
    let total_edges = graph.num_edges();
    let space = GraphSpaceConfig {
        n_edge_clusters: 4,
        ..GraphSpaceConfig::default()
    };
    let substrate = GraphSubstrate::new(graph, t5_measures(), space);
    let result = bi_modis(&substrate, &fast_modis_config());
    assert!(result.entries.iter().all(|e| e.size.0 <= total_edges));
    assert!(result.entries.iter().any(|e| e.size.0 > 0));
}
