//! Integration tests of the `modis-engine` execution engine over real
//! tabular workloads: parallel-vs-sequential skyline equivalence, shared
//! evaluation-cache behaviour across overlapping scenarios, and run-to-run
//! determinism.
//!
//! Equivalence fixtures share one substrate instance between the compared
//! runs: substrates memoise `evaluate_raw`, which pins noisy raw metrics
//! (training wall-clock) so byte-level comparison is meaningful.

use std::sync::Arc;

use modis_bench::{task_t1, task_t3};
use modis_core::prelude::*;
use modis_core::substrate::Substrate;
use modis_engine::{
    parallel_apx_modis, parallel_exact_modis_with_context, Algorithm, Engine, EngineConfig,
    Scenario,
};

fn oracle_config() -> ModisConfig {
    ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(25)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Oracle)
}

fn assert_identical(a: &SkylineResult, b: &SkylineResult, label: &str) {
    assert_eq!(
        a.entries.len(),
        b.entries.len(),
        "{label}: entry counts differ"
    );
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.bitmap, y.bitmap, "{label}: bitmaps differ");
        assert_eq!(x.perf, y.perf, "{label}: perf vectors differ");
        assert_eq!(x.raw, y.raw, "{label}: raw metrics differ");
        assert_eq!(x.size, y.size, "{label}: sizes differ");
        assert_eq!(x.level, y.level, "{label}: levels differ");
    }
    assert_eq!(
        a.states_valuated, b.states_valuated,
        "{label}: budgets differ"
    );
}

#[test]
fn parallel_apx_is_byte_identical_to_sequential_on_t1() {
    let substrate = task_t1(21).substrate();
    let config = oracle_config();
    let sequential = apx_modis(&substrate, &config);
    for threads in [1, 4] {
        let parallel = parallel_apx_modis(&substrate, &config, threads);
        assert_identical(&parallel, &sequential, &format!("t1 apx x{threads}"));
    }
    assert!(!sequential.is_empty());
}

#[test]
fn parallel_apx_is_byte_identical_to_sequential_with_surrogate() {
    let substrate = task_t3(5).substrate();
    let config = ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(30)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 10,
            refresh: 10,
        });
    let sequential = apx_modis(&substrate, &config);
    let parallel = parallel_apx_modis(&substrate, &config, 4);
    assert_identical(&parallel, &sequential, "t3 apx surrogate");
    assert_eq!(parallel.stats.oracle_calls, sequential.stats.oracle_calls);
    assert_eq!(
        parallel.stats.surrogate_calls,
        sequential.stats.surrogate_calls
    );
}

#[test]
fn parallel_exact_is_byte_identical_to_sequential_on_t3() {
    let substrate = task_t3(5).substrate();
    let config = ModisConfig::default().with_max_states(20).with_max_level(2);
    let sequential = exact_modis(&substrate, &config);
    let ctx = ValuationContext::new(&substrate, EstimatorMode::Oracle);
    let parallel = parallel_exact_modis_with_context(&ctx, &config, 4);
    assert_identical(&parallel, &sequential, "t3 exact");
}

#[test]
fn suite_with_shared_pool_reports_cache_hits() {
    let substrate: Arc<dyn Substrate> = Arc::new(task_t3(5).substrate());
    let config = oracle_config().with_max_states(20);
    let scenarios: Vec<Scenario> = [
        Algorithm::Apx,
        Algorithm::NoBi,
        Algorithm::Bi,
        Algorithm::Div,
    ]
    .into_iter()
    .map(|alg| {
        Scenario::new(
            format!("t3-{}", alg.name()),
            substrate.clone(),
            alg,
            config.clone(),
        )
        .with_cache_namespace("t3-pool")
    })
    .collect();

    let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(2));
    let suite = engine.run_suite(&scenarios);

    assert_eq!(suite.outcomes.len(), 4);
    assert!(
        suite.outcomes.iter().all(|o| !o.result.is_empty()),
        "every scenario finds a skyline"
    );
    // All scenarios expand from the same universal state, so at least the
    // later scenarios must reuse the earlier scenarios' oracle valuations.
    assert!(
        suite.total_shared_hits() > 0,
        "expected nonzero shared-cache hits"
    );
    assert!(suite.cache.entries > 0);
    assert!(suite.cache.hits >= suite.total_shared_hits());
    // Outcomes keep registration order.
    assert_eq!(suite.outcomes[0].algorithm, Algorithm::Apx);
    assert_eq!(suite.outcomes[3].algorithm, Algorithm::Div);
}

#[test]
fn engine_is_deterministic_across_repeated_runs() {
    let substrate: Arc<dyn Substrate> = Arc::new(task_t1(21).substrate());
    let scenario = Scenario::new(
        "t1-apx",
        substrate.clone(),
        Algorithm::Apx,
        oracle_config().with_max_states(20),
    )
    .with_cache_namespace("t1-pool");

    let engine = Engine::new(EngineConfig::default().with_worker_threads(4));
    let first = engine.run_scenario(&scenario);
    let second = engine.run_scenario(&scenario);

    assert_identical(&first.result, &second.result, "repeat run");
    // The second run must be answered entirely by the shared cache: every
    // oracle valuation of the first run was recorded under the namespace.
    assert_eq!(
        second.result.stats.oracle_calls, 0,
        "second run should retrain nothing"
    );
    assert!(second.shared_hits() > 0);
}

#[test]
fn isolated_namespaces_stay_isolated_across_workloads() {
    let t1: Arc<dyn Substrate> = Arc::new(task_t1(21).substrate());
    let t3: Arc<dyn Substrate> = Arc::new(task_t3(5).substrate());
    let config = oracle_config().with_max_states(15);
    let engine = Engine::new(EngineConfig::default().with_scenario_parallelism(2));
    let suite = engine.run_suite(&[
        Scenario::new("t1-apx", t1, Algorithm::Apx, config.clone()),
        Scenario::new("t3-apx", t3, Algorithm::Apx, config),
    ]);
    assert_eq!(
        suite.total_shared_hits(),
        0,
        "distinct namespaces must not share"
    );
    assert!(suite.outcomes.iter().all(|o| !o.result.is_empty()));
}
