//! Differential test harness for the dominance kernels.
//!
//! The engine's standing contract is byte-identical skylines at any thread
//! count, and the fast kernels of `modis_core::dominance_index` claim exact
//! equivalence with the retained pairwise baseline
//! (`skyline_pairwise_baseline`). This suite is the proof: every kernel —
//! dispatcher, sorted, indexed (u64 level masks), 2D scan, sequential
//! blocks and the engine's wave-parallel kernel — is run against the
//! baseline over randomized and adversarial inputs (correlated,
//! anti-correlated, duplicate-heavy, NaN/∞-laced, sub-tolerance clusters
//! that break dominance transitivity) and must return the identical index
//! set. A fuzz-style proptest over arbitrary `f64` bit patterns pins both
//! agreement and panic-freedom on garbage inputs.

use proptest::prelude::*;

use modis_bench::dominance_workload::{frontier_points, Frontier};
use modis_core::dominance::{dominated_flags, dominates, skyline, skyline_pairwise_baseline};
use modis_core::dominance_index::{
    skyline_blocks, skyline_indexed, skyline_scan_2d, skyline_sorted,
};
use modis_engine::parallel_skyline;

/// Runs every kernel against the pairwise baseline on `pts` and asserts
/// byte-identical index sets, across block partitionings and thread counts.
fn assert_all_kernels_match(pts: &[Vec<f64>], label: &str) {
    let base = skyline_pairwise_baseline(pts);
    assert_eq!(skyline(pts), base, "{label}: dispatcher diverged");
    assert_eq!(skyline_sorted(pts), base, "{label}: sorted diverged");
    assert_eq!(skyline_indexed(pts), base, "{label}: indexed diverged");
    if pts.first().is_some_and(|p| p.len() == 2) {
        assert_eq!(skyline_scan_2d(pts), base, "{label}: scan2d diverged");
    }
    for blocks in [1, 2, 3, 7] {
        assert_eq!(
            skyline_blocks(pts, blocks),
            base,
            "{label}: blocks={blocks} diverged"
        );
    }
    for threads in [1, 2, 4, 8] {
        assert_eq!(
            parallel_skyline(pts, threads),
            base,
            "{label}: threads={threads} diverged"
        );
    }
    // The dominance-only flags must match the quantified definition.
    if pts.len() <= 300 {
        let flags = dominated_flags(pts);
        for (i, p) in pts.iter().enumerate() {
            let expect = pts
                .iter()
                .enumerate()
                .any(|(j, q)| j != i && dominates(q, p));
            assert_eq!(flags[i], expect, "{label}: flags[{i}] diverged");
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic sweeps
// ---------------------------------------------------------------------------

/// Every frontier family × measure count × size, including the empty and
/// single-point degenerate shapes and sizes straddling the mask threshold.
#[test]
fn differential_frontier_families() {
    for frontier in Frontier::all() {
        for &dims in &[1usize, 2, 4, 6] {
            for &n in &[0usize, 1, 2, 17, 257, 900] {
                let pts = frontier_points(n, dims, frontier, 0xBEEF + n as u64);
                assert_all_kernels_match(&pts, &format!("{} d={dims} n={n}", frontier.name()));
            }
        }
    }
}

/// The issue's 5k-point bound: the full differential gate on a wide
/// anti-correlated frontier at 5000 points.
#[test]
fn differential_wide_frontier_at_5k() {
    let pts = frontier_points(5000, 4, Frontier::AntiCorrelated, 0x5EED);
    let base = skyline_pairwise_baseline(&pts);
    assert_eq!(skyline_indexed(&pts), base);
    assert_eq!(skyline_sorted(&pts), base);
    assert_eq!(skyline_blocks(&pts, 16), base);
    for threads in [2, 8] {
        assert_eq!(parallel_skyline(&pts, threads), base);
    }
}

/// Duplicates, all-equal and single-point inputs: only the first occurrence
/// of a duplicate survives, and a lone point always survives.
#[test]
fn differential_duplicate_edge_cases() {
    let all_equal: Vec<Vec<f64>> = (0..50).map(|_| vec![0.3, 0.4, 0.5]).collect();
    assert_all_kernels_match(&all_equal, "all-equal");
    assert_eq!(skyline(&all_equal), vec![0]);

    let single = vec![vec![0.1, 0.9]];
    assert_all_kernels_match(&single, "single");
    assert_eq!(skyline(&single), vec![0]);

    let empty: Vec<Vec<f64>> = Vec::new();
    assert_all_kernels_match(&empty, "empty");
    assert!(skyline(&empty).is_empty());

    // Signed zeros are duplicates; NaN rows never are.
    let zeros = vec![
        vec![0.0, -0.0],
        vec![-0.0, 0.0],
        vec![f64::NAN, 0.0],
        vec![f64::NAN, 0.0],
    ];
    assert_all_kernels_match(&zeros, "signed-zero");
}

/// Tolerance non-transitivity: `dominates` uses `1e-12` margins, so chains
/// of sub-tolerance steps q₁ ⪰ q₂ ⪰ q₃ exist where q₁ does not dominate
/// q₃. Kernels that compared only against accepted skyline members (classic
/// SFS) would diverge here; ours must not.
#[test]
fn differential_sub_tolerance_clusters() {
    let step = 5e-13; // half the tolerance
    for dims in [2usize, 3, 4] {
        let mut pts = Vec::new();
        for c in 0..6 {
            let base = 0.2 + 0.1 * c as f64;
            for k in 0..12 {
                let p: Vec<f64> = (0..dims)
                    .map(|m| base + step * ((k + m) % 5) as f64 - step * ((k * 3 + m) % 4) as f64)
                    .collect();
                pts.push(p);
            }
        }
        assert_all_kernels_match(&pts, &format!("sub-tolerance d={dims}"));
    }
}

// ---------------------------------------------------------------------------
// Property tests
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random quantised points (1–6 measures, heavy tie/duplicate density):
    /// every kernel returns the baseline's exact index set.
    #[test]
    fn differential_random_quantised(
        raw in prop::collection::vec(any::<u8>(), 0..720),
        dims in 1usize..7,
    ) {
        let pts: Vec<Vec<f64>> = raw
            .chunks_exact(dims)
            .map(|c| c.iter().map(|&v| (v % 24) as f64 / 24.0).collect())
            .collect();
        assert_all_kernels_match(&pts, &format!("quantised d={dims}"));
    }

    /// Never panics and still agrees with the baseline on arbitrary f64 bit
    /// patterns — NaNs with payload bits, infinities, subnormals, huge
    /// magnitudes and signed zeros included.
    #[test]
    fn never_panics_and_agrees_on_arbitrary_bits(
        bits in prop::collection::vec(any::<u64>(), 0..240),
        dims in 1usize..6,
    ) {
        let pts: Vec<Vec<f64>> = bits
            .chunks_exact(dims)
            .map(|c| c.iter().map(|&b| f64::from_bits(b)).collect())
            .collect();
        assert_all_kernels_match(&pts, &format!("bit-pattern d={dims}"));
    }

    /// Mixed magnitudes stress the sorted-sum prefix bound's floating point
    /// slack: coordinates spanning ~1e±300, subnormals and near-tolerance
    /// offsets must never let a true dominator escape the candidate window.
    #[test]
    fn differential_extreme_magnitudes(
        raw in prop::collection::vec(any::<u8>(), 0..400),
        dims in 2usize..5,
    ) {
        let scale = |v: u8| -> f64 {
            match v % 8 {
                0 => 1e300,
                1 => -1e300,
                2 => 1e-300,
                3 => f64::INFINITY,
                4 => 0.5 + (v as f64) * 5e-13,
                5 => -(v as f64),
                6 => 0.0,
                _ => (v as f64) / 17.0,
            }
        };
        let pts: Vec<Vec<f64>> = raw
            .chunks_exact(dims)
            .map(|c| c.iter().map(|&v| scale(v)).collect())
            .collect();
        assert_all_kernels_match(&pts, &format!("extreme d={dims}"));
    }
}

// ---------------------------------------------------------------------------
// EpsilonSkyline / epsilon_skyline_cover properties
// ---------------------------------------------------------------------------

use modis_core::dominance::epsilon_skyline_cover;
use modis_core::measure::{MeasureSet, MeasureSpec};
use modis_core::pareto::EpsilonSkyline;
use modis_data::StateBitmap;

fn cover_measures() -> MeasureSet {
    MeasureSet::new(vec![
        MeasureSpec::maximise("q").with_bounds(0.01, 0.95),
        MeasureSpec::minimise("c", 1.0).with_bounds(0.01, 0.9),
    ])
}

fn shuffled(mut items: Vec<Vec<f64>>, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..items.len()).rev() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
    items
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Grid cover invariant (§4): whatever the insert order, every offered
    /// in-bounds point is ε-dominated by some finalized member. The grid
    /// guarantees the cell occupant ε-dominates its cell-mates, and exact
    /// finalize-pruning composes with ε-dominance up to a hair of slack.
    #[test]
    fn cover_invariant_holds_under_random_insert_orders(
        raw in prop::collection::vec(any::<u8>(), 2..160),
        seed in any::<u64>(),
        eps in 0.05f64..0.6,
    ) {
        // Coarse values (multiples of 1/64) keep every comparison far from
        // the 1e-12 tolerance, so the slack argument is airtight.
        let perfs: Vec<Vec<f64>> = raw
            .chunks_exact(2)
            .map(|c| vec![0.02 + (c[0] % 56) as f64 / 64.0, 0.02 + (c[1] % 56) as f64 / 64.0])
            .collect();
        let perfs = shuffled(perfs, seed);
        let measures = cover_measures();
        let mut sky = EpsilonSkyline::new(measures.clone(), eps, None);
        let bitmap = StateBitmap::full(4);
        let mut offered: Vec<Vec<f64>> = Vec::new();
        for p in &perfs {
            sky.offer(&bitmap, p, 0);
            if !measures.violates_upper(p) {
                offered.push(p.clone());
            }
        }
        let fin = sky.finalize();
        // Members are mutually non-dominated…
        for (i, a) in fin.iter().enumerate() {
            for (j, b) in fin.iter().enumerate() {
                prop_assert!(i == j || !dominates(&b.perf, &a.perf));
            }
        }
        // …and cover every offered in-bounds point within (1+ε+slack).
        let member_idx: Vec<usize> = fin
            .iter()
            .map(|e| offered.iter().position(|p| *p == e.perf).expect("member was offered"))
            .collect();
        prop_assert!(
            epsilon_skyline_cover(&offered, &member_idx, eps + 1e-6),
            "cover violated for eps={eps}"
        );
    }

    /// Decisive-measure replacement is order-insensitive when the paper
    /// guarantees it: with all decisive values distinct and separated by
    /// far more than the comparison tolerance, each cell's final occupant
    /// is its unique decisive minimum, so any two insert orders finalize
    /// to the same member set.
    #[test]
    fn decisive_replacement_is_order_insensitive(
        raw in prop::collection::vec(any::<u8>(), 2..120),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        eps in 0.05f64..0.5,
    ) {
        let perfs: Vec<Vec<f64>> = raw
            .chunks_exact(2)
            .enumerate()
            .map(|(i, c)| {
                // Distinct decisive (cost) values spaced 0.005 apart.
                vec![0.02 + (c[0] % 56) as f64 / 64.0, 0.02 + i as f64 * 0.005]
            })
            .collect();
        let run = |order: Vec<Vec<f64>>| -> Vec<Vec<f64>> {
            let mut sky = EpsilonSkyline::new(cover_measures(), eps, None);
            let bitmap = StateBitmap::full(4);
            for p in &order {
                sky.offer(&bitmap, p, 0);
            }
            let mut out: Vec<Vec<f64>> = sky.finalize().into_iter().map(|e| e.perf).collect();
            out.sort_by(|a, b| a.partial_cmp(b).unwrap());
            out
        };
        let a = run(shuffled(perfs.clone(), seed_a));
        let b = run(shuffled(perfs, seed_b));
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Engine observability
// ---------------------------------------------------------------------------

use std::sync::Arc;

use modis_core::config::ModisConfig;
use modis_core::estimator::EstimatorMode;
use modis_core::substrate::mock::MockSubstrate;
use modis_core::substrate::Substrate;
use modis_engine::{Algorithm, Engine, EngineConfig, Scenario};

/// One exact scenario drives the kernels through the engine: the global
/// dominance counters and the per-namespace attribution must both land in
/// the engine's metrics registry with nonzero pruning.
#[test]
fn engine_scenario_exposes_dominance_counters() {
    let engine = Engine::new(EngineConfig::default().with_worker_threads(2));
    let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
    let config = ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(400)
        .with_max_level(8)
        .with_estimator(EstimatorMode::Oracle);
    let scenario = Scenario::new("dom/exact", substrate, Algorithm::Exact, config)
        .with_cache_namespace("dom-pool");
    let outcome = engine.run_scenario(&scenario);
    assert!(!outcome.result.entries.is_empty());

    let rendered = engine.metrics().render().join("\n");
    let value_of = |needle: &str| -> u64 {
        rendered
            .lines()
            .find(|l| l.starts_with(needle) && !l.starts_with('#'))
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {needle} missing from:\n{rendered}"))
    };
    assert!(value_of("dominance_pruned_total ") > 0);
    // The mock substrate is clean 2-measure data, so the exact 2D scan may
    // legitimately answer every query with zero full f64 comparisons — the
    // counter must exist, but its value can be 0.
    let _ = value_of("dominance_comparisons_total ");
    assert!(value_of("dominance_kernel_selections_total") >= 1);
    assert!(value_of("engine_dominance_pruned_total{namespace=\"dom-pool\"}") > 0);
}
