//! Integration tests of the telemetry spine: histogram algebra under
//! arbitrary inputs (property tests), trace-context wire encoding under
//! arbitrary (mal)formed inputs, registry behavior under real thread
//! contention, and the `METRICS` exposition of a live reactor daemon
//! accounting for every request actually sent.

use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use modis_core::telemetry::{Histogram, MetricsRegistry, TraceContext};
use modis_service::{handle_command, Daemon, Service, ServiceConfig};

// ---------------------------------------------------------------------------
// Histogram algebra (property tests)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The observation count always equals the sum over buckets — no
    /// recorded value can land outside the bucket range or be dropped.
    #[test]
    fn histogram_count_equals_bucket_sum(values in prop::collection::vec(any::<u64>(), 0..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let bucket_sum: u64 = h.snapshot().iter().sum();
        prop_assert_eq!(bucket_sum, values.len() as u64);
    }

    /// Quantiles are monotone in rank: a higher quantile can never
    /// report a smaller value, whatever was recorded.
    #[test]
    fn histogram_quantiles_are_monotone_in_rank(
        values in prop::collection::vec(any::<u64>(), 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 2..8),
    ) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut qs = qs;
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let quantiles: Vec<u64> = qs.iter().map(|&q| h.quantile(q)).collect();
        for pair in quantiles.windows(2) {
            prop_assert!(pair[0] <= pair[1], "quantiles regressed: {:?}", quantiles);
        }
        // The estimate is an upper bound of its bucket, so the maximum
        // quantile is at least the true maximum's bucket lower edge and
        // p100 never exceeds the bucket bound of the recorded maximum.
        prop_assert!(h.quantile(1.0) >= *values.iter().max().unwrap() / 2);
    }

    /// Merging is lossless and order-insensitive: a⊕b and b⊕a agree
    /// bucket-for-bucket with recording everything into one histogram.
    #[test]
    fn histogram_merge_is_order_insensitive(
        left in prop::collection::vec(any::<u64>(), 0..100),
        right in prop::collection::vec(any::<u64>(), 0..100),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let combined = Histogram::new();
        for &v in &left {
            a.record(v);
            combined.record(v);
        }
        for &v in &right {
            b.record(v);
            combined.record(v);
        }
        let ab = Histogram::new();
        ab.merge(&a);
        ab.merge(&b);
        let ba = Histogram::new();
        ba.merge(&b);
        ba.merge(&a);
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
        prop_assert_eq!(ab.snapshot(), combined.snapshot());
        prop_assert_eq!(ab.value_sum(), ba.value_sum());
        prop_assert_eq!(ab.count(), (left.len() + right.len()) as u64);
    }
}

// ---------------------------------------------------------------------------
// Trace-context wire encoding (property tests)
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Every context — all 2^192 of them — survives the hex wire encoding
    /// bit-exactly, and the encoding is always exactly `WIRE_LEN` bytes.
    #[test]
    fn trace_context_hex_encoding_round_trips(
        trace_id in any::<u64>(),
        span_id in any::<u64>(),
        parent_id in any::<u64>(),
    ) {
        let ctx = TraceContext { trace_id, span_id, parent_id };
        let wire = ctx.encode();
        prop_assert_eq!(wire.len(), TraceContext::WIRE_LEN);
        prop_assert_eq!(TraceContext::decode(&wire), Some(ctx));
    }

    /// An arbitrary token in `CTX` position never panics the decoder or
    /// the protocol: exactly the 48-hex-digit tokens decode, and on the
    /// wire a bad token answers `ERR …` while a good one lets the request
    /// through (`PONG`). Covers truncations, wrong lengths, non-hex ASCII
    /// and multibyte UTF-8 whose *byte* length is a deceptive exact 48.
    #[test]
    fn ctx_prefix_rejects_malformed_tokens_without_panicking(
        mode in 0usize..4,
        words in prop::collection::vec(any::<u64>(), 4usize),
        len in 0usize..64,
    ) {
        let hex: String = words.iter().map(|w| format!("{w:016x}")).collect();
        let token: String = match mode {
            // Exactly valid: 48 hex digits.
            0 => hex[..48].to_string(),
            // Right alphabet, arbitrary length (48 stays valid — the
            // oracle below decides, not the mode).
            1 => hex[..len].to_string(),
            // Printable non-space ASCII junk.
            2 => words
                .iter()
                .flat_map(|w| w.to_le_bytes())
                .take(len.min(32))
                .map(|b| (33 + b % 94) as char)
                .collect(),
            // 24 two-byte chars (U+0100..U+04FF — no whitespace, no hex):
            // exactly 48 *bytes*, which a byte-count check alone would
            // wave through.
            _ => words
                .iter()
                .flat_map(|w| w.to_le_bytes())
                .take(24)
                .map(|b| char::from_u32(0x100 + (b as u32 % 0x400)).expect("valid scalar"))
                .collect(),
        };
        let decoded = TraceContext::decode(&token);
        let wellformed = token.len() == TraceContext::WIRE_LEN
            && token.bytes().all(|b| b.is_ascii_hexdigit());
        prop_assert_eq!(decoded.is_some(), wellformed, "token {:?}", token);

        let service = Service::new(ServiceConfig::default());
        let reply = handle_command(&service, &format!("CTX {token} PING"))
            .text()
            .to_string();
        if wellformed {
            prop_assert_eq!(reply, "PONG");
        } else {
            prop_assert!(reply.starts_with("ERR"), "reply {:?}", reply);
        }
    }
}

// ---------------------------------------------------------------------------
// Registry under real contention
// ---------------------------------------------------------------------------

/// Eight threads hammering the same counter, gauge and histogram through
/// independently-resolved registry handles: no increment is lost, and
/// idempotent registration hands every thread the same instruments.
#[test]
fn registry_instruments_lose_nothing_under_eight_threads() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let registry = Arc::new(MetricsRegistry::new());
    let threads: Vec<_> = (0..THREADS)
        .map(|t| {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || {
                // Each thread resolves its own handles — registration is
                // idempotent, so all of them alias the same instruments.
                let counter = registry.counter("hammer_total", "contended counter");
                let gauge = registry.gauge("hammer_level", "contended gauge");
                let histogram = registry.histogram("hammer_us", "contended histogram");
                for i in 0..PER_THREAD {
                    counter.inc();
                    gauge.add(if t % 2 == 0 { 1 } else { -1 });
                    histogram.record(i);
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("hammer thread");
    }
    let total = THREADS as u64 * PER_THREAD;
    assert_eq!(
        registry.counter("hammer_total", "contended counter").get(),
        total
    );
    // Four threads added +PER_THREAD each, four subtracted it.
    assert_eq!(registry.gauge("hammer_level", "contended gauge").get(), 0);
    let histogram = registry.histogram("hammer_us", "contended histogram");
    assert_eq!(histogram.count(), total);
    assert_eq!(histogram.snapshot().iter().sum::<u64>(), total);
    // The recorded values are known exactly: sum of 0..PER_THREAD per thread.
    assert_eq!(
        histogram.value_sum(),
        THREADS as u64 * (PER_THREAD * (PER_THREAD - 1) / 2)
    );
}

// ---------------------------------------------------------------------------
// Live daemon exposition
// ---------------------------------------------------------------------------

/// A `key value` or `key{labels} value` sample line's value.
fn sample_value(lines: &[String], prefix: &str) -> u64 {
    let line = lines
        .iter()
        .find(|l| l.starts_with(prefix))
        .unwrap_or_else(|| panic!("no {prefix} line in exposition"));
    line.rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("non-numeric sample {line:?}"))
}

/// The `METRICS` exposition of a live reactor daemon parses as
/// Prometheus text (comments and samples only, HELP/TYPE per family)
/// and its per-verb request counters match the requests actually sent.
#[test]
fn reactor_metrics_exposition_accounts_for_every_request() {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind daemon");

    let stream = std::net::TcpStream::connect(daemon.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut recv = move || -> String {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        assert!(line.ends_with('\n'), "truncated reply {line:?}");
        line.trim_end().to_string()
    };

    // A known request mix, pipelined in one burst: 3 PING, 2 LIST,
    // 1 STATS, 1 bogus verb.
    writer
        .write_all(b"PING\nPING\nPING\nLIST\nLIST\nSTATS\nNONSENSE\n")
        .expect("send burst");
    for _ in 0..7 {
        recv();
    }

    writer.write_all(b"METRICS\n").expect("send METRICS");
    let header = recv();
    let count: usize = header
        .strip_prefix("METRICS ")
        .unwrap_or_else(|| panic!("bad METRICS header {header:?}"))
        .parse()
        .expect("numeric line count");
    assert!(count > 0, "empty exposition");
    let lines: Vec<String> = (0..count).map(|_| recv()).collect();

    // Every line is a comment or a `key[{labels}] value` sample; every
    // sample's family is introduced by a HELP and a TYPE comment.
    let mut announced = std::collections::HashSet::new();
    for line in &lines {
        if let Some(rest) = line.strip_prefix("# ") {
            let mut words = rest.split_whitespace();
            let kind = words.next().expect("comment kind");
            assert!(kind == "HELP" || kind == "TYPE", "odd comment {line:?}");
            announced.insert(words.next().expect("family name").to_string());
        } else {
            let (key, value) = line.rsplit_once(' ').expect("sample line shape");
            let family = key
                .split('{')
                .next()
                .expect("family name")
                .trim_end_matches('}');
            let base = family
                .strip_suffix("_bucket")
                .or_else(|| family.strip_suffix("_sum"))
                .or_else(|| family.strip_suffix("_count"))
                .unwrap_or(family);
            assert!(
                announced.contains(base) || announced.contains(family),
                "sample {line:?} has no HELP/TYPE"
            );
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample {line:?}");
        }
    }

    // Per-verb counters match the burst exactly (the METRICS request
    // itself is counted too — it resolved before rendering).
    assert_eq!(
        sample_value(&lines, "reactor_requests_total{verb=\"ping\"}"),
        3
    );
    assert_eq!(
        sample_value(&lines, "reactor_requests_total{verb=\"list\"}"),
        2
    );
    assert_eq!(
        sample_value(&lines, "reactor_requests_total{verb=\"stats\"}"),
        1
    );
    assert_eq!(
        sample_value(&lines, "reactor_requests_total{verb=\"other\"}"),
        1
    );
    assert_eq!(
        sample_value(&lines, "reactor_requests_total{verb=\"metrics\"}"),
        1
    );
    // Latency histograms counted the same requests.
    assert_eq!(
        sample_value(&lines, "reactor_request_us_count{verb=\"ping\"}"),
        3
    );
    // The daemon kept exactly this one connection open.
    assert_eq!(sample_value(&lines, "reactor_open_connections"), 1);

    let _ = writer.write_all(b"QUIT\n");
    daemon.stop();
}
