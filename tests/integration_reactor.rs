//! Integration tests of the non-blocking reactor front-end: request
//! pipelining with ordered responses, fragmented and oversized lines,
//! `WAIT` streaming through the wakeup channel, deterministic shutdown
//! with port reuse, and a malformed-input property (the reactor never
//! panics and always answers a protocol line).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use modis_core::prelude::*;
use modis_core::substrate::mock::MockSubstrate;
use modis_core::substrate::Substrate;
use modis_engine::{Algorithm, Scenario};
use modis_service::{Daemon, ReactorConfig, Service, ServiceConfig};

fn oracle_config(max_states: usize) -> ModisConfig {
    ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(max_states)
        .with_max_level(4)
        .with_estimator(EstimatorMode::Oracle)
}

/// A service with the three-algorithm mock suite registered.
fn mock_service(units: usize) -> Arc<Service> {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(units));
    for (name, alg) in [
        ("apx", Algorithm::Apx),
        ("bi", Algorithm::Bi),
        ("div", Algorithm::Div),
    ] {
        service
            .register(
                Scenario::new(name, substrate.clone(), alg, oracle_config(60))
                    .with_cache_namespace("mock-pool"),
            )
            .unwrap();
    }
    service
}

/// A connected client with a read timeout, so a hung reactor fails the
/// test instead of hanging it.
fn client(daemon: &Daemon) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(daemon.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn read_reply(reader: &mut BufReader<TcpStream>) -> String {
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("reply line");
    assert!(reply.ends_with('\n'), "truncated reply: {reply:?}");
    reply.trim_end().to_string()
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let service = mock_service(8);
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let (mut writer, mut reader) = client(&daemon);

    // One burst: 16 submissions, 16 polls, 4 pings — 36 in-flight
    // requests on a single connection before the first response is read.
    let mut burst = String::new();
    for _ in 0..16 {
        burst.push_str("SUBMIT apx\n");
    }
    for id in 1..=16 {
        burst.push_str(&format!("POLL {id}\n"));
    }
    for _ in 0..4 {
        burst.push_str("PING\n");
    }
    writer.write_all(burst.as_bytes()).unwrap();

    // Responses arrive strictly in request order.
    for id in 1..=16 {
        assert_eq!(read_reply(&mut reader), format!("TICKET {id}"));
    }
    for _ in 0..16 {
        assert_eq!(read_reply(&mut reader), "QUEUED");
    }
    for _ in 0..4 {
        assert_eq!(read_reply(&mut reader), "PONG");
    }

    // Drain through the executor, then confirm over the same connection.
    writer.write_all(b"RUN\nPOLL 1\n").unwrap();
    assert_eq!(read_reply(&mut reader), "OK 16");
    assert!(read_reply(&mut reader).starts_with("DONE entries="));
    daemon.stop();
}

#[test]
fn pipelined_burst_with_half_close_is_fully_answered() {
    // A client that writes everything, closes its write half, and only
    // then reads: the reactor must answer every request parsed before EOF.
    let service = mock_service(6);
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let (mut writer, mut reader) = client(&daemon);

    let mut burst = String::new();
    let n = 40;
    for _ in 0..n {
        burst.push_str("PING\n");
    }
    writer.write_all(burst.as_bytes()).unwrap();
    writer.shutdown(Shutdown::Write).unwrap();

    let mut replies = String::new();
    reader.read_to_string(&mut replies).unwrap();
    let got: Vec<&str> = replies.lines().collect();
    assert_eq!(got, vec!["PONG"; n]);
    daemon.stop();
}

#[test]
fn fragmented_lines_are_reassembled() {
    let service = mock_service(6);
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let (mut writer, mut reader) = client(&daemon);

    // One request split across many writes, with pauses long enough for
    // the reactor to sweep between fragments — plus a second request
    // whose first fragment rides in the same packet as the first's tail.
    for fragment in ["SUB", "MIT a", "px\nPI", "NG", "\n"] {
        writer.write_all(fragment.as_bytes()).unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(read_reply(&mut reader), "TICKET 1");
    assert_eq!(read_reply(&mut reader), "PONG");

    // A final unterminated line is still answered at EOF (seed parity).
    writer.write_all(b"PING").unwrap();
    writer.shutdown(Shutdown::Write).unwrap();
    assert_eq!(read_reply(&mut reader), "PONG");
    daemon.stop();
}

#[test]
fn oversized_lines_are_rejected_without_killing_the_connection() {
    let service = mock_service(6);
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let (mut writer, mut reader) = client(&daemon);

    // Far beyond the 4096-byte default cap, written in chunks so the
    // rejection triggers mid-line, long before the newline arrives.
    let chunk = vec![b'A'; 8192];
    for _ in 0..8 {
        writer.write_all(&chunk).unwrap();
    }
    writer.write_all(b"\nPING\n").unwrap();
    let reply = read_reply(&mut reader);
    assert!(
        reply.starts_with("ERR line too long"),
        "oversized line must be rejected: {reply}"
    );
    // The tail of the oversized line was discarded; the connection and
    // the framing survive.
    assert_eq!(read_reply(&mut reader), "PONG");
    daemon.stop();
}

#[test]
fn wait_streams_completions_from_the_worker() {
    let service = mock_service(8);
    let worker = service.spawn_worker();
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let (mut writer, mut reader) = client(&daemon);

    // Submissions and the WAIT pipeline in one burst; the background
    // worker drains the queue and each completion is pushed through the
    // wakeup channel to the parked reactor.
    writer
        .write_all(b"SUBMIT apx\nSUBMIT bi\nSUBMIT div\nWAIT 1 2 3\nPING\n")
        .unwrap();
    assert_eq!(read_reply(&mut reader), "TICKET 1");
    assert_eq!(read_reply(&mut reader), "TICKET 2");
    assert_eq!(read_reply(&mut reader), "TICKET 3");
    let mut done_ids = Vec::new();
    for _ in 0..3 {
        let reply = read_reply(&mut reader);
        let mut parts = reply.split_whitespace();
        assert_eq!(parts.next(), Some("DONE"), "streamed line: {reply}");
        done_ids.push(parts.next().unwrap().parse::<u64>().unwrap());
        assert!(
            parts.any(|p| p.starts_with("entries=")),
            "DONE payload: {reply}"
        );
    }
    done_ids.sort_unstable();
    assert_eq!(done_ids, vec![1, 2, 3]);
    // Ordering: the PING pipelined *behind* the WAIT answers only after
    // every streamed completion.
    assert_eq!(read_reply(&mut reader), "PONG");

    // WAIT on unknown tickets answers an error immediately — no hang.
    writer.write_all(b"WAIT 999\nWAIT nope\nWAIT\n").unwrap();
    assert!(read_reply(&mut reader).starts_with("ERR unknown ticket"));
    assert!(read_reply(&mut reader).starts_with("ERR WAIT expects"));
    assert!(read_reply(&mut reader).starts_with("ERR WAIT expects"));

    daemon.stop();
    worker.join().unwrap();
}

/// Open file descriptors of this process (Linux; the only platform CI and
/// the tier-1 gate run on).
#[cfg(target_os = "linux")]
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").expect("procfs").count()
}

/// Connection-churn soak: hundreds of short-lived sequential connections
/// must not leak descriptors — the reactor reaps every closed connection
/// — and `stop` stays deterministic afterwards.
#[cfg(target_os = "linux")]
#[test]
fn connection_churn_leaks_no_descriptors_and_stop_stays_deterministic() {
    let service = mock_service(6);
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();

    // One warm-up conversation, fully closed, to reach steady state.
    {
        let (mut writer, mut reader) = client(&daemon);
        writer.write_all(b"PING\nQUIT\n").unwrap();
        assert_eq!(read_reply(&mut reader), "PONG");
        assert_eq!(read_reply(&mut reader), "BYE");
    }
    std::thread::sleep(Duration::from_millis(30));
    let baseline = open_fds();

    for i in 0..300 {
        let (mut writer, mut reader) = client(&daemon);
        writer.write_all(b"PING\nQUIT\n").unwrap();
        assert_eq!(read_reply(&mut reader), "PONG", "connection {i}");
        assert_eq!(read_reply(&mut reader), "BYE", "connection {i}");
    }

    // The reactor reaps asynchronously (a closed peer is discovered on the
    // next sweep); poll until the descriptor count returns to baseline.
    // Other tests in this binary run concurrently and open sockets of
    // their own, so allow a modest slack above the baseline.
    let deadline = Instant::now() + Duration::from_secs(10);
    let slack = 16;
    let mut current = open_fds();
    while current > baseline + slack {
        assert!(
            Instant::now() < deadline,
            "descriptor leak: baseline {baseline}, still {current} after churn"
        );
        std::thread::sleep(Duration::from_millis(20));
        current = open_fds();
    }

    // Stop is still deterministic after the churn, and the port rebinds.
    let addr = daemon.addr();
    let started = Instant::now();
    daemon.stop();
    assert!(started.elapsed() < Duration::from_secs(5));
    let service2 = mock_service(6);
    let revived = Daemon::bind(Arc::clone(&service2), &addr.to_string())
        .expect("port must rebind after churn + stop");
    revived.stop();
}

/// The hard per-process descriptor cap, for scaling the soak below to
/// machines with a constrained `ulimit -n`.
#[cfg(target_os = "linux")]
fn max_open_files() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|limits| {
            limits.lines().find_map(|line| {
                line.strip_prefix("Max open files")?
                    .split_whitespace()
                    .next()?
                    .parse()
                    .ok()
            })
        })
        .unwrap_or(1024)
}

/// Reads one `\n`-terminated reply straight off a stream (no BufReader:
/// the idle sockets below are probed once each, and a reader would
/// swallow bytes we want left in the kernel buffer of the next probe).
#[cfg(target_os = "linux")]
fn read_line_raw(stream: &mut TcpStream) -> String {
    let mut line = Vec::new();
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(1) if byte[0] == b'\n' => break,
            Ok(1) => line.push(byte[0]),
            Ok(_) => panic!("peer closed mid-line: {line:?}"),
            Err(err) if err.kind() == std::io::ErrorKind::Interrupted => {}
            Err(err) => panic!("probe read failed: {err}"),
        }
    }
    String::from_utf8_lossy(&line).into_owned()
}

/// High-fan-in soak for the O(ready) front-end: thousands of concurrently
/// open, mostly idle connections with a handful of hot ones. Hot
/// pipelines stay strictly ordered, sampled idle connections still answer
/// from behind the sleeping mass, descriptors return to baseline once the
/// mass closes, and stop stays deterministic with N reactors — with the
/// old attempt-every-connection sweep this load made every sweep
/// O(thousands); under the poller it is O(ready).
#[cfg(target_os = "linux")]
#[test]
fn thousands_of_idle_connections_stay_served_and_reaped() {
    // 2048 client + 2048 server sockets needs headroom under the fd cap;
    // shrink (never skip) on constrained machines.
    let idle_target = if max_open_files() > 6_000 { 2_048 } else { 512 };
    let service = mock_service(6);
    // Multi-reactor explicitly: the default shrinks to the core count,
    // and this test must exercise connections pinned across N reactors.
    let config = ReactorConfig {
        reactors: 4,
        ..ReactorConfig::default()
    };
    let daemon = Daemon::bind_with(Arc::clone(&service), "127.0.0.1:0", config).unwrap();

    // One warm-up conversation, fully closed, to reach steady state.
    {
        let (mut writer, mut reader) = client(&daemon);
        writer.write_all(b"PING\nQUIT\n").unwrap();
        assert_eq!(read_reply(&mut reader), "PONG");
        assert_eq!(read_reply(&mut reader), "BYE");
    }
    std::thread::sleep(Duration::from_millis(30));
    let baseline = open_fds();

    // Open the idle mass in accept-backlog-sized batches, with one
    // round-trip through the newest connection per batch: the listener's
    // shared accept queue drains in arrival order, so an answered probe
    // proves the whole batch was adopted by some reactor.
    let batch = 128;
    let mut idle: Vec<TcpStream> = Vec::with_capacity(idle_target);
    while idle.len() < idle_target {
        for _ in 0..batch {
            let stream = TcpStream::connect(daemon.addr()).unwrap();
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .unwrap();
            idle.push(stream);
        }
        let probe = idle.last_mut().unwrap();
        probe.write_all(b"PING\n").unwrap();
        assert_eq!(read_line_raw(probe), "PONG");
    }

    // Hot connections burst pipelined requests through the idle mass;
    // responses arrive strictly in request order.
    for round in 0..3 {
        let (mut writer, mut reader) = client(&daemon);
        let mut burst = String::new();
        for _ in 0..64 {
            burst.push_str("PING\n");
        }
        burst.push_str("LIST\nQUIT\n");
        writer.write_all(burst.as_bytes()).unwrap();
        for i in 0..64 {
            assert_eq!(read_reply(&mut reader), "PONG", "round {round} reply {i}");
        }
        assert_eq!(read_reply(&mut reader), "SCENARIOS apx bi div");
        assert_eq!(read_reply(&mut reader), "BYE");
    }

    // A sample of the idle mass speaks up after sitting silent: every
    // sampled connection is still live and answers.
    for index in (0..idle.len()).step_by(256) {
        let probe = &mut idle[index];
        probe.write_all(b"PING\n").unwrap();
        assert_eq!(read_line_raw(probe), "PONG", "idle connection {index}");
    }

    // Keep a handful open through stop (they must get the shutdown error);
    // close the rest and wait for the reactors to reap them.
    let survivors: Vec<TcpStream> = idle.split_off(idle.len() - 4);
    drop(idle);
    let deadline = Instant::now() + Duration::from_secs(30);
    let slack = 64;
    let mut current = open_fds();
    while current > baseline + slack {
        assert!(
            Instant::now() < deadline,
            "descriptor leak: baseline {baseline}, still {current} after closing the idle mass"
        );
        std::thread::sleep(Duration::from_millis(20));
        current = open_fds();
    }

    // Deterministic stop with 4 reactors and open connections; the
    // survivors are flushed a final protocol error, then EOF.
    let started = Instant::now();
    daemon.stop();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "multi-reactor stop must not wait on external events"
    );
    for mut survivor in survivors {
        let mut rest = String::new();
        let _ = survivor.read_to_string(&mut rest);
        assert!(
            rest.starts_with("ERR service is shut down"),
            "survivor got {rest:?}"
        );
    }
}

#[test]
fn daemon_stop_is_deterministic_and_the_port_is_immediately_reusable() {
    let service = mock_service(6);
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = daemon.addr();

    // An active connection exists while the daemon stops. The client
    // closes first so the server side never lands in TIME_WAIT.
    {
        let (mut writer, mut reader) = client(&daemon);
        writer.write_all(b"PING\n").unwrap();
        assert_eq!(read_reply(&mut reader), "PONG");
    }
    std::thread::sleep(Duration::from_millis(20));

    // Stop must complete via the wakeup channel — quickly and without any
    // helper connection (the seed needed a throwaway connect to unblock
    // its accept loop).
    let started = Instant::now();
    daemon.stop();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "stop must not wait on external events"
    );
    assert!(service.is_stopped(), "stop shuts the service down");

    // The exact same port binds again at once: the listener (and every
    // accepted socket) was fully closed.
    let service2 = mock_service(6);
    let revived = Daemon::bind(Arc::clone(&service2), &addr.to_string())
        .expect("rebinding the stopped daemon's port must succeed immediately");
    assert_eq!(revived.addr(), addr);
    let (mut writer, mut reader) = client(&revived);
    writer.write_all(b"PING\nLIST\n").unwrap();
    assert_eq!(read_reply(&mut reader), "PONG");
    assert_eq!(read_reply(&mut reader), "SCENARIOS apx bi div");
    revived.stop();
}

#[test]
fn stopped_daemon_answers_in_flight_connections_with_an_error() {
    let service = mock_service(6);
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let (mut writer, mut reader) = client(&daemon);
    writer.write_all(b"PING\n").unwrap();
    assert_eq!(read_reply(&mut reader), "PONG");

    daemon.stop();
    // The reactor flushed a final protocol error before closing; the
    // stream then reports EOF rather than a reset.
    let mut rest = String::new();
    let _ = reader.read_to_string(&mut rest);
    assert!(rest.starts_with("ERR service is shut down"), "got {rest:?}");
}

/// Lines of arbitrary bytes (newline-free so each is one request).
/// Verbs with side effects beyond the protocol surface are defanged:
/// `SNAPSHOT` writes files, `QUIT` closes early, `WAIT`/`RUN` defer —
/// any of them would make reply counting depend on luck rather than the
/// reactor. A leading `0xFF` keeps such a line malformed while still
/// exercising the parser with its bytes.
fn malformed_lines() -> impl Strategy<Value = Vec<Vec<u8>>> {
    let line = prop::collection::vec(
        any::<u8>().prop_filter("no newline", |&b| b != b'\n'),
        0..200,
    )
    .prop_map(|mut bytes: Vec<u8>| {
        let upper = String::from_utf8_lossy(&bytes).to_uppercase();
        let verb = upper.split_whitespace().next().unwrap_or("");
        if matches!(verb, "SNAPSHOT" | "QUIT" | "WAIT" | "RUN" | "SUBMIT") {
            bytes.insert(0, 0xFF);
        }
        bytes
    });
    prop::collection::vec(line, 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any malformed input the reactor never panics, never drops the
    /// connection, and answers exactly one line per request — each either
    /// a well-formed response or an `ERR` protocol line.
    #[test]
    fn malformed_input_always_gets_a_protocol_reply(lines in malformed_lines()) {
        let service = mock_service(6);
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let (mut writer, mut reader) = client(&daemon);

        let mut payload = Vec::new();
        for line in &lines {
            payload.extend_from_slice(line);
            payload.push(b'\n');
        }
        payload.extend_from_slice(b"PING\n");
        writer.write_all(&payload).unwrap();

        for line in &lines {
            let reply = read_reply(&mut reader);
            prop_assert!(!reply.is_empty(), "empty reply to {line:?}");
            let well_formed = reply.starts_with("ERR ")
                || reply.starts_with("PONG")
                || reply.starts_with("SCENARIOS")
                || reply.starts_with("STATS ")
                || reply.starts_with("QUEUED")
                || reply.starts_with("RUNNING")
                || reply.starts_with("DONE ")
                || reply.starts_with("TICKET ")
                || reply.starts_with("OK ");
            prop_assert!(well_formed, "reply {reply:?} to line {line:?}");
        }
        // The connection survived every malformed line.
        prop_assert_eq!(read_reply(&mut reader), "PONG");
        daemon.stop();
    }
}

/// `CTX`-prefixed edge cases: `CTX` followed by a hex-ish blob and *no
/// verb after it*. Exactly 48 valid hex digits decode to a real trace
/// context whose remaining verb is then empty; every other blob is a
/// malformed prefix. Both must answer one clean `ERR` line — pinning the
/// `tokens.nth(1)` classification path against silent empty-verb
/// fallthrough.
fn bare_ctx_lines() -> impl Strategy<Value = Vec<String>> {
    // The first byte picks the arm; the rest seed the blob characters.
    let line = prop::collection::vec(any::<u8>(), 2..66).prop_map(|bytes| {
        const HEX: &[u8] = b"0123456789abcdef";
        const JUNK: &[u8] = b"0123456789abcdefxyz ";
        let seed = &bytes[1..];
        let blob: String = if bytes[0] % 2 == 0 {
            // A well-formed 48-hex context (the interesting case: the
            // verb after stripping is "").
            (0..48)
                .map(|i| HEX[seed[i % seed.len()] as usize % HEX.len()] as char)
                .collect()
        } else {
            // Arbitrary hex-ish junk of any length, valid or not.
            seed.iter()
                .map(|&b| JUNK[b as usize % JUNK.len()] as char)
                .collect()
        };
        format!("CTX {blob}")
    });
    prop::collection::vec(line, 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A bare `CTX <blob>` line with nothing after the context answers a
    /// clean protocol error — `ERR unknown command ""` when the blob is a
    /// valid context (empty verb), `ERR CTX expects …` otherwise — and
    /// never kills the connection.
    #[test]
    fn bare_ctx_prefixes_answer_a_clean_protocol_error(lines in bare_ctx_lines()) {
        let service = mock_service(6);
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let (mut writer, mut reader) = client(&daemon);

        let mut payload = String::new();
        for line in &lines {
            payload.push_str(line);
            payload.push('\n');
        }
        payload.push_str("PING\n");
        writer.write_all(payload.as_bytes()).unwrap();

        for line in &lines {
            let reply = read_reply(&mut reader);
            // The junk arm can (rarely) form a valid context followed by a
            // tail verb, so accept any unknown-command rejection; the
            // exact `ERR unknown command ""` empty-verb form is pinned by
            // the net.rs unit test.
            let clean = reply.starts_with("ERR unknown command")
                || reply.starts_with("ERR CTX expects");
            prop_assert!(clean, "reply {reply:?} to bare prefix {line:?}");
        }
        prop_assert_eq!(read_reply(&mut reader), "PONG");
        daemon.stop();
    }
}
