//! End-to-end integration tests: datagen → substrate construction → MODis
//! algorithms → skyline results, across crates.

use modis_bench::{task_t1, task_t3};
use modis_core::prelude::*;

fn fast_config() -> ModisConfig {
    ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(25)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 10,
            refresh: 10,
        })
}

#[test]
fn apx_modis_improves_over_base_table_on_t1() {
    let workload = task_t1(21);
    let substrate = workload.substrate();
    let result = apx_modis(&substrate, &fast_config());
    assert!(!result.is_empty(), "skyline should not be empty");

    // The original (weak-feature) base table.
    let base_eval = original(workload.pool.base(), substrate.task());
    let base_r2 = base_eval.evaluation.raw[0];

    // Best skyline member by accuracy (R²) should improve over the base.
    let best = result.best_by_raw(0, true).expect("skyline entry");
    assert!(
        best.raw[0] > base_r2,
        "skyline R² {} should beat base R² {}",
        best.raw[0],
        base_r2
    );
}

#[test]
fn all_variants_produce_mutually_nondominated_skylines() {
    let workload = task_t3(22);
    let substrate = workload.substrate();
    let cfg = fast_config();
    for result in [
        apx_modis(&substrate, &cfg),
        bi_modis(&substrate, &cfg),
        nobi_modis(&substrate, &cfg),
        div_modis(&substrate, &cfg),
    ] {
        assert!(!result.is_empty());
        for a in &result.entries {
            assert_eq!(a.raw.len(), workload.task.measures.len());
            assert!(a.size.0 > 0, "entries must describe non-empty datasets");
            for b in &result.entries {
                if a.bitmap != b.bitmap {
                    assert!(
                        !dominates(&a.perf, &b.perf) || !dominates(&b.perf, &a.perf),
                        "two members dominate each other"
                    );
                }
            }
        }
        assert!(result.states_valuated <= cfg.max_states + 2);
    }
}

#[test]
fn bimodis_is_no_slower_in_valuations_than_apx() {
    let workload = task_t3(23);
    let substrate = workload.substrate();
    let cfg = fast_config().with_max_states(40);
    let apx = apx_modis(&substrate, &cfg);
    let bi = bi_modis(&substrate, &cfg);
    // Both respect the budget; BiMODis' pruning may valuate fewer states.
    assert!(bi.states_valuated <= cfg.max_states + 2);
    assert!(apx.states_valuated <= cfg.max_states + 2);
}

#[test]
fn divmodis_respects_k_bound() {
    let workload = task_t1(24);
    let substrate = workload.substrate();
    let cfg = fast_config().with_diversification(2, 0.6);
    let result = div_modis(&substrate, &cfg);
    assert!(
        result.len() <= 2,
        "DivMODis returned {} > k entries",
        result.len()
    );
}

#[test]
fn skyline_members_respect_measure_upper_bounds() {
    let workload = task_t1(25);
    let substrate = workload.substrate();
    let result = bi_modis(&substrate, &fast_config());
    let measures = substrate.measures();
    for e in &result.entries {
        let perf = measures.normalise(&e.raw);
        assert!(
            !measures.violates_upper(&perf),
            "skyline member violates an upper bound: {:?}",
            perf
        );
    }
}

#[test]
fn estimator_mode_reduces_oracle_calls() {
    let workload = task_t3(26);
    let substrate = workload.substrate();
    let oracle_cfg = fast_config()
        .with_estimator(EstimatorMode::Oracle)
        .with_max_states(30);
    let surrogate_cfg = fast_config()
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 8,
            refresh: 10,
        })
        .with_max_states(30);
    let oracle_run = apx_modis(&substrate, &oracle_cfg);
    let surrogate_run = apx_modis(&substrate, &surrogate_cfg);
    assert!(
        surrogate_run.stats.surrogate_calls > 0,
        "surrogate should be used after warm-up"
    );
    assert!(
        surrogate_run.stats.oracle_calls <= oracle_run.stats.oracle_calls,
        "surrogate mode should not increase oracle training calls"
    );
}
