//! Property-based tests over the core invariants: dominance, ε-skyline
//! coverage, operators and the position grid.

use proptest::prelude::*;

use modis_core::dominance::{dominates, epsilon_dominates, epsilon_skyline_cover, skyline};
use modis_core::measure::{position, MeasureSet, MeasureSpec};
use modis_core::pareto::EpsilonSkyline;
use modis_data::{reduct, Dataset, Literal, Schema, StateBitmap, Value};

fn perf_vec(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(a in perf_vec(3), b in perf_vec(3)) {
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    /// Dominance implies ε-dominance for every ε ≥ 0.
    #[test]
    fn dominance_implies_epsilon_dominance(a in perf_vec(3), b in perf_vec(3), eps in 0.0f64..1.0) {
        if dominates(&a, &b) {
            prop_assert!(epsilon_dominates(&a, &b, eps));
        }
    }

    /// The exact skyline of a point set ε-covers the whole set (ε = 0 works
    /// because every point is weakly dominated by some skyline member).
    #[test]
    fn skyline_covers_all_points(points in prop::collection::vec(perf_vec(3), 1..40)) {
        let front = skyline(&points);
        prop_assert!(!front.is_empty());
        prop_assert!(epsilon_skyline_cover(&points, &front, 0.0));
        // Skyline members are mutually non-dominated.
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!dominates(&points[i], &points[j]));
                }
            }
        }
    }

    /// Points in the same ε-grid cell are within a (1+ε) factor on every
    /// non-decisive measure.
    #[test]
    fn same_cell_implies_close_values(a in perf_vec(3), eps in 0.05f64..0.5, factor in 1.0f64..1.01) {
        let measures = MeasureSet::new(vec![
            MeasureSpec::maximise("m0"),
            MeasureSpec::maximise("m1"),
            MeasureSpec::minimise("m2", 1.0),
        ]);
        let b: Vec<f64> = a.iter().map(|v| (v * factor).min(1.0)).collect();
        let pa = position(&a, &measures, eps, 2);
        let pb = position(&b, &measures, eps, 2);
        if pa == pb {
            for (x, y) in a.iter().zip(b.iter()).take(2) {
                let ratio = if x > y { x / y } else { y / x };
                prop_assert!(ratio <= (1.0 + eps) * (1.0 + 1e-9));
            }
        }
    }

    /// The UPareto structure never keeps a member that violates an upper
    /// bound, and every inserted member stays within (0, 1].
    #[test]
    fn upareto_respects_bounds(perfs in prop::collection::vec(perf_vec(2), 1..30), eps in 0.05f64..0.4) {
        let measures = MeasureSet::new(vec![
            MeasureSpec::maximise("q").with_bounds(0.01, 0.8),
            MeasureSpec::minimise("c", 1.0).with_bounds(0.01, 0.9),
        ]);
        let mut sky = EpsilonSkyline::new(measures.clone(), eps, None);
        for (i, p) in perfs.iter().enumerate() {
            sky.offer(&StateBitmap::full(4).flipped(i % 4), p, i);
        }
        for entry in sky.entries() {
            prop_assert!(!measures.violates_upper(&entry.perf));
            prop_assert!(entry.perf.iter().all(|&v| v > 0.0 && v <= 1.0));
        }
    }

    /// Reduct never increases the number of rows, and the removed rows are
    /// exactly those matching the literal.
    #[test]
    fn reduct_removes_exactly_matching_rows(values in prop::collection::vec(0i64..5, 1..60), pivot in 0i64..5) {
        let schema = Schema::from_names(["a"]);
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        let data = Dataset::from_rows("d", schema, rows).unwrap();
        let lit = Literal::equals("a", pivot);
        let matching = values.iter().filter(|&&v| v == pivot).count();
        let (out, removed) = reduct(&data, &lit);
        prop_assert_eq!(removed, matching);
        prop_assert_eq!(out.num_rows(), values.len() - matching);
        prop_assert_eq!(lit.selectivity_count(&out), 0);
    }

    /// Bitmap cosine similarity is symmetric and bounded by [0, 1].
    #[test]
    fn bitmap_cosine_properties(bits_a in prop::collection::vec(any::<bool>(), 1..20), bits_b in prop::collection::vec(any::<bool>(), 1..20)) {
        let a = StateBitmap::from_bits(bits_a);
        let b = StateBitmap::from_bits(bits_b);
        let ab = a.cosine_similarity(&b);
        let ba = b.cosine_similarity(&a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
    }

    /// The packed `u64` `StateBitmap` is semantically identical to the old
    /// `Vec<bool>` backing: get/set/flip round-trips, population counts,
    /// one/zero index lists, hash-eq consistency and lexicographic order all
    /// match the plain-vector model, across word boundaries.
    #[test]
    fn packed_bitmap_matches_bool_vec_model(
        bits in prop::collection::vec(any::<bool>(), 0..200),
        other_bits in prop::collection::vec(any::<bool>(), 0..200),
        flips in prop::collection::vec(0usize..220, 0..24),
    ) {
        let mut model = bits.clone();
        let mut packed = StateBitmap::from_bits(bits.clone());
        prop_assert_eq!(packed.len(), model.len());
        for (i, &b) in model.iter().enumerate() {
            prop_assert_eq!(packed.get(i), b);
        }
        prop_assert_eq!(packed.count_ones(), model.iter().filter(|&&b| b).count());
        prop_assert_eq!(
            packed.ones(),
            model.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            packed.zeros(),
            model.iter().enumerate().filter_map(|(i, &b)| (!b).then_some(i)).collect::<Vec<_>>()
        );
        prop_assert_eq!(packed.bits(), model.clone());

        // Flip a random index sequence (some out of bounds: both no-ops).
        for &f in &flips {
            packed = packed.flipped(f);
            if f < model.len() {
                model[f] = !model[f];
            }
        }
        prop_assert_eq!(&packed, &StateBitmap::from_bits(model.clone()));

        // Hash-eq round-trip: equal bitmaps hash identically.
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let hash = |b: &StateBitmap| {
            let mut h = DefaultHasher::new();
            b.hash(&mut h);
            h.finish()
        };
        prop_assert_eq!(hash(&packed), hash(&StateBitmap::from_bits(model.clone())));

        // Ordering matches Vec<bool> lexicographic order (incl. lengths).
        let other = StateBitmap::from_bits(other_bits.clone());
        prop_assert_eq!(packed.cmp(&other), model.cmp(&other_bits));

        // Distance kernels against an independent model computation.
        let n = model.len().max(other_bits.len());
        let at = |v: &Vec<bool>, i: usize| v.get(i).copied().unwrap_or(false);
        let hamming = (0..n).filter(|&i| at(&model, i) != at(&other_bits, i)).count();
        prop_assert_eq!(packed.hamming_distance(&other), hamming);
    }

    /// A `DatasetView` over a random selection + attribute mask materialises
    /// (via `to_dataset`) to exactly the rows a clone-and-filter pass keeps,
    /// with masked cells nulled; the zero-copy size/missing statistics agree
    /// with the copy.
    #[test]
    fn dataset_view_matches_clone_and_filter(
        values in prop::collection::vec(0i64..6, 1..80),
        keep_bits in prop::collection::vec(any::<bool>(), 80),
        mask_col in 0usize..3,
    ) {
        use modis_data::{DatasetView, RowMask};
        let schema = Schema::from_names(["a", "b", "c"]);
        let rows: Vec<Vec<Value>> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                vec![
                    Value::Int(v),
                    if v % 3 == 0 { Value::Null } else { Value::Float(v as f64) },
                    Value::Int(i as i64),
                ]
            })
            .collect();
        let data = Dataset::from_rows("d", schema, rows).unwrap();

        let mask = RowMask::from_pred(data.num_rows(), |r| keep_bits[r]);
        let mut masked_cols = vec![false; 3];
        masked_cols[mask_col] = true;
        let view = DatasetView::new(&data, mask, masked_cols.clone());

        // Reference: clone, filter rows, null out the masked column.
        let next = std::cell::Cell::new(0usize);
        let mut reference = data.filter(|_| {
            let idx = next.get();
            next.set(idx + 1);
            keep_bits[idx]
        });
        for r in 0..reference.num_rows() {
            reference.set_value(r, mask_col, Value::Null).unwrap();
        }

        let owned = view.to_dataset();
        prop_assert_eq!(owned.rows(), reference.rows());
        prop_assert_eq!(owned.schema().names(), reference.schema().names());
        prop_assert_eq!(view.num_rows(), reference.num_rows());
        prop_assert_eq!(view.reported_size(), reference.reported_size());
        prop_assert!((view.missing_ratio() - reference.missing_ratio()).abs() < 1e-12);
    }

    /// On a full `TableSubstrate` over a random pool, the columnar
    /// (mask-intersection) materialisation is byte-identical to the seed's
    /// clone-and-filter implementation for random states.
    #[test]
    fn substrate_view_materialisation_matches_baseline(
        xs in prop::collection::vec(0i64..9, 24..60),
        state_bits in prop::collection::vec(any::<bool>(), 64),
    ) {
        use modis_core::table_substrate::{TableSpaceConfig, TableSubstrate};
        use modis_core::task::{MetricKind, ModelKind, TaskSpec};
        use modis_core::measure::{MeasureSet, MeasureSpec};
        use modis_data::Attribute;
        use modis_core::substrate::Substrate;

        let schema = Schema::from_attributes(vec![
            Attribute::key("id"),
            Attribute::feature("x"),
            Attribute::feature("z"),
            Attribute::target("y"),
        ]);
        let rows: Vec<Vec<Value>> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| {
                vec![
                    Value::Int(i as i64),
                    Value::Float(x as f64),
                    if x % 4 == 0 { Value::Null } else { Value::Int(x % 3) },
                    Value::Float(2.0 * x as f64),
                ]
            })
            .collect();
        let data = Dataset::from_rows("pool", schema, rows).unwrap();
        let task = TaskSpec {
            name: "prop".into(),
            model: ModelKind::LinearRegressor,
            target: "y".into(),
            key: Some("id".into()),
            measures: MeasureSet::new(vec![
                MeasureSpec::maximise("p_R2"),
                MeasureSpec::minimise("p_Train", 2.0),
            ]),
            metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
            train_ratio: 0.7,
            seed: 1,
        };
        let sub = TableSubstrate::from_universal(data, task, &TableSpaceConfig::default());
        let bitmap = StateBitmap::from_bits(
            (0..sub.num_units()).map(|i| state_bits[i % state_bits.len()]).collect(),
        );
        let via_view = sub.materialize(&bitmap);
        let baseline = sub.materialize_baseline(&bitmap);
        prop_assert_eq!(via_view.rows(), baseline.rows());
        prop_assert_eq!(via_view.schema().names(), baseline.schema().names());
        prop_assert_eq!(&via_view.name, &baseline.name);
        prop_assert_eq!(
            sub.materialize_view(&bitmap).reported_size(),
            baseline.reported_size()
        );
    }
}
