//! Property-based tests over the core invariants: dominance, ε-skyline
//! coverage, operators and the position grid.

use proptest::prelude::*;

use modis_core::dominance::{dominates, epsilon_dominates, epsilon_skyline_cover, skyline};
use modis_core::measure::{position, MeasureSet, MeasureSpec};
use modis_core::pareto::EpsilonSkyline;
use modis_data::{reduct, Dataset, Literal, Schema, StateBitmap, Value};

fn perf_vec(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01f64..1.0, dim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Dominance is irreflexive and antisymmetric.
    #[test]
    fn dominance_is_irreflexive_and_antisymmetric(a in perf_vec(3), b in perf_vec(3)) {
        prop_assert!(!dominates(&a, &a));
        prop_assert!(!(dominates(&a, &b) && dominates(&b, &a)));
    }

    /// Dominance implies ε-dominance for every ε ≥ 0.
    #[test]
    fn dominance_implies_epsilon_dominance(a in perf_vec(3), b in perf_vec(3), eps in 0.0f64..1.0) {
        if dominates(&a, &b) {
            prop_assert!(epsilon_dominates(&a, &b, eps));
        }
    }

    /// The exact skyline of a point set ε-covers the whole set (ε = 0 works
    /// because every point is weakly dominated by some skyline member).
    #[test]
    fn skyline_covers_all_points(points in prop::collection::vec(perf_vec(3), 1..40)) {
        let front = skyline(&points);
        prop_assert!(!front.is_empty());
        prop_assert!(epsilon_skyline_cover(&points, &front, 0.0));
        // Skyline members are mutually non-dominated.
        for &i in &front {
            for &j in &front {
                if i != j {
                    prop_assert!(!dominates(&points[i], &points[j]));
                }
            }
        }
    }

    /// Points in the same ε-grid cell are within a (1+ε) factor on every
    /// non-decisive measure.
    #[test]
    fn same_cell_implies_close_values(a in perf_vec(3), eps in 0.05f64..0.5, factor in 1.0f64..1.01) {
        let measures = MeasureSet::new(vec![
            MeasureSpec::maximise("m0"),
            MeasureSpec::maximise("m1"),
            MeasureSpec::minimise("m2", 1.0),
        ]);
        let b: Vec<f64> = a.iter().map(|v| (v * factor).min(1.0)).collect();
        let pa = position(&a, &measures, eps, 2);
        let pb = position(&b, &measures, eps, 2);
        if pa == pb {
            for (x, y) in a.iter().zip(b.iter()).take(2) {
                let ratio = if x > y { x / y } else { y / x };
                prop_assert!(ratio <= (1.0 + eps) * (1.0 + 1e-9));
            }
        }
    }

    /// The UPareto structure never keeps a member that violates an upper
    /// bound, and every inserted member stays within (0, 1].
    #[test]
    fn upareto_respects_bounds(perfs in prop::collection::vec(perf_vec(2), 1..30), eps in 0.05f64..0.4) {
        let measures = MeasureSet::new(vec![
            MeasureSpec::maximise("q").with_bounds(0.01, 0.8),
            MeasureSpec::minimise("c", 1.0).with_bounds(0.01, 0.9),
        ]);
        let mut sky = EpsilonSkyline::new(measures.clone(), eps, None);
        for (i, p) in perfs.iter().enumerate() {
            sky.offer(&StateBitmap::full(4).flipped(i % 4), p, i);
        }
        for entry in sky.entries() {
            prop_assert!(!measures.violates_upper(&entry.perf));
            prop_assert!(entry.perf.iter().all(|&v| v > 0.0 && v <= 1.0));
        }
    }

    /// Reduct never increases the number of rows, and the removed rows are
    /// exactly those matching the literal.
    #[test]
    fn reduct_removes_exactly_matching_rows(values in prop::collection::vec(0i64..5, 1..60), pivot in 0i64..5) {
        let schema = Schema::from_names(["a"]);
        let rows: Vec<Vec<Value>> = values.iter().map(|&v| vec![Value::Int(v)]).collect();
        let data = Dataset::from_rows("d", schema, rows).unwrap();
        let lit = Literal::equals("a", pivot);
        let matching = values.iter().filter(|&&v| v == pivot).count();
        let (out, removed) = reduct(&data, &lit);
        prop_assert_eq!(removed, matching);
        prop_assert_eq!(out.num_rows(), values.len() - matching);
        prop_assert_eq!(lit.selectivity_count(&out), 0);
    }

    /// Bitmap cosine similarity is symmetric and bounded by [0, 1].
    #[test]
    fn bitmap_cosine_properties(bits_a in prop::collection::vec(any::<bool>(), 1..20), bits_b in prop::collection::vec(any::<bool>(), 1..20)) {
        let a = StateBitmap::from_bits(bits_a);
        let b = StateBitmap::from_bits(bits_b);
        let ab = a.cosine_similarity(&b);
        let ba = b.cosine_similarity(&a);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&ab));
    }
}
