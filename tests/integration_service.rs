//! Integration tests of the `modis-service` subsystem: snapshot round-trip
//! properties (value identity, eviction-order survivability, clean
//! rejection of corrupted/truncated files), warm restarts from disk,
//! cost-aware scheduling order, batched valuation and the TCP front-end.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use modis_bench::task_t3;
use modis_core::prelude::*;
use modis_core::substrate::mock::MockSubstrate;
use modis_core::substrate::Substrate;
use modis_data::StateBitmap;
use modis_engine::{Algorithm, Engine, EngineConfig, Scenario, ScenarioOutcome, SharedEvalCache};
use modis_service::{
    snapshot, Daemon, JobState, Service, ServiceConfig, ServiceError, ValuationRequest,
};

static TEMP_COUNTER: AtomicUsize = AtomicUsize::new(0);

/// A unique throwaway file path (no tempfile crate in the workspace).
fn temp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "modis_service_it_{}_{}_{}.snap",
        tag,
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn oracle_config(max_states: usize) -> ModisConfig {
    ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(max_states)
        .with_max_level(4)
        .with_estimator(EstimatorMode::Oracle)
}

/// Registers the standard three-algorithm mock suite on a service.
fn register_mock_suite(service: &Service, units: usize) {
    let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(units));
    for (name, alg) in [
        ("apx", Algorithm::Apx),
        ("bi", Algorithm::Bi),
        ("div", Algorithm::Div),
    ] {
        service
            .register(
                Scenario::new(name, substrate.clone(), alg, oracle_config(60))
                    .with_cache_namespace("mock-pool"),
            )
            .unwrap();
    }
}

fn assert_identical(a: &SkylineResult, b: &SkylineResult, label: &str) {
    assert_eq!(a.entries.len(), b.entries.len(), "{label}: entry counts");
    for (x, y) in a.entries.iter().zip(&b.entries) {
        assert_eq!(x.bitmap, y.bitmap, "{label}: bitmaps");
        assert_eq!(x.perf, y.perf, "{label}: perf vectors");
        assert_eq!(x.raw, y.raw, "{label}: raw metrics");
        assert_eq!(x.size, y.size, "{label}: sizes");
        assert_eq!(x.level, y.level, "{label}: levels");
    }
}

fn done_outcome(service: &Service, ticket: modis_service::Ticket) -> ScenarioOutcome {
    match service.poll(ticket).unwrap() {
        JobState::Done(outcome) => *outcome,
        other => panic!("expected finished job, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot → bytes → restore is value-identical — including slot
    /// order, referenced bits and the clock hand, so the restored cache
    /// *evicts the same victims* as the original would have.
    #[test]
    fn snapshot_round_trip_preserves_values_and_eviction_order(
        values in prop::collection::vec(0.01f64..1.0, 1..100),
        capacity_selector in 0usize..3,
        touch in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let capacity = [0usize, 24, 48][capacity_selector];
        let cache = Arc::new(SharedEvalCache::with_capacity(4, capacity));
        let namespaces = ["alpha", "beta", "gamma"];
        for (i, &v) in values.iter().enumerate() {
            let handle = cache.handle(namespaces[i % namespaces.len()]);
            let mut bitmap = StateBitmap::empty(130);
            bitmap.set(i % 130, true);
            bitmap.set((i * 7 + 3) % 130, true);
            handle.record(&bitmap, &SharedEvaluation {
                raw: vec![v, i as f64],
                perf: vec![v, 1.0 - v],
            });
            // Mixed referenced bits: re-touch a pseudo-random subset so the
            // snapshot has to carry real second-chance state.
            if touch[i % touch.len()] {
                handle.lookup(&bitmap);
            }
        }

        let bytes = snapshot::encode_cache(&cache);
        let restored = Arc::new(SharedEvalCache::with_capacity(4, capacity));
        snapshot::restore_cache(&restored, &bytes).unwrap();
        prop_assert_eq!(restored.export_shards(), cache.export_shards());

        // Eviction-order survivability: push the same fresh entries into
        // both caches; victims (and therefore final contents) must agree.
        for i in 0..8 {
            let mut bitmap = StateBitmap::empty(130);
            bitmap.set(128 - i, true);
            let eval = SharedEvaluation { raw: vec![0.5], perf: vec![0.5] };
            cache.handle("fresh").record(&bitmap, &eval);
            restored.handle("fresh").record(&bitmap, &eval);
        }
        prop_assert_eq!(restored.export_shards(), cache.export_shards());
    }

    /// Any truncation and any single-bit corruption of a snapshot is
    /// rejected with an error — never a panic, never a partial import.
    #[test]
    fn damaged_snapshots_are_rejected_cleanly(
        cut_fraction in 0.0f64..1.0,
        flip_fraction in 0.0f64..1.0,
    ) {
        let cache = Arc::new(SharedEvalCache::with_capacity(2, 0));
        let handle = cache.handle("ns");
        for i in 0..10 {
            let mut bitmap = StateBitmap::empty(40);
            bitmap.set(i, true);
            handle.record(&bitmap, &SharedEvaluation {
                raw: vec![i as f64],
                perf: vec![0.1 * i as f64],
            });
        }
        let bytes = snapshot::encode_cache(&cache);

        let cut = (cut_fraction * bytes.len() as f64) as usize;
        if cut < bytes.len() {
            let truncated = &bytes[..cut];
            let target = Arc::new(SharedEvalCache::with_capacity(2, 0));
            prop_assert!(snapshot::restore_cache(&target, truncated).is_err());
            prop_assert_eq!(target.stats().entries, 0, "no partial import");
        }

        let flip = ((flip_fraction * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut corrupted = bytes.clone();
        corrupted[flip] ^= 0x10;
        let target = Arc::new(SharedEvalCache::with_capacity(2, 0));
        prop_assert!(snapshot::restore_cache(&target, &corrupted).is_err());
        prop_assert_eq!(target.stats().entries, 0, "no partial import");
    }
}

#[test]
fn restarted_service_matches_cold_run_with_warm_cache() {
    // "Process 1": cold service, run the suite, snapshot, shut down.
    let path = temp_path("restart_mock");
    let first = Service::new(ServiceConfig::default());
    register_mock_suite(&first, 10);
    let tickets = first.submit_many(["apx", "bi", "div"]).unwrap();
    assert_eq!(first.run_pending(), 3);
    let cold_outcomes: Vec<ScenarioOutcome> =
        tickets.iter().map(|&t| done_outcome(&first, t)).collect();
    first.snapshot_to(&path).unwrap();
    drop(first);

    // A cold *sequential* reference run (fresh engine, no cache file).
    let reference: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(10));
    let cold_engine = Engine::new(EngineConfig::default().with_scenario_parallelism(1));
    let cold_reference = cold_engine.run_scenario(
        &Scenario::new("apx-ref", reference, Algorithm::Apx, oracle_config(60))
            .with_cache_namespace("ref-pool"),
    );

    // "Process 2": a brand-new service warm-started from the snapshot,
    // with brand-new (structurally identical) substrate instances.
    let revived = Service::from_snapshot(ServiceConfig::default(), &path).unwrap();
    register_mock_suite(&revived, 10);
    let tickets = revived.submit_many(["apx", "bi", "div"]).unwrap();
    assert_eq!(revived.run_pending(), 3);
    for (ticket, cold) in tickets.iter().zip(&cold_outcomes) {
        let warm = done_outcome(&revived, *ticket);
        assert_eq!(
            warm.result.stats.oracle_calls, 0,
            "{}: every oracle valuation answered from the snapshot",
            warm.name
        );
        assert!(warm.shared_hits() > 0, "{}: warm start hits", warm.name);
        assert_identical(&warm.result, &cold.result, &warm.name);
    }
    // And byte-identical to the independent cold sequential run.
    let warm_apx = done_outcome(&revived, tickets[0]);
    assert_identical(&warm_apx.result, &cold_reference.result, "apx vs cold ref");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn restarted_service_warm_starts_a_real_tabular_workload() {
    let path = temp_path("restart_t3");
    let config = oracle_config(20).with_max_level(3);

    let first = Service::new(ServiceConfig::default());
    let substrate: Arc<dyn Substrate> = Arc::new(task_t3(5).substrate());
    first
        .register(
            Scenario::new("t3-apx", substrate, Algorithm::Apx, config.clone())
                .with_cache_namespace("t3-pool"),
        )
        .unwrap();
    let cold_ticket = first.submit("t3-apx").unwrap();
    first.run_pending();
    let cold = done_outcome(&first, cold_ticket);
    assert!(!cold.result.is_empty());
    first.snapshot_to(&path).unwrap();
    drop(first);

    // Fresh process, fresh substrate instance; only the snapshot carries
    // the evaluations across (raw metrics include training wall-clock, so
    // byte identity is only possible because nothing is retrained).
    let revived = Service::from_snapshot(ServiceConfig::default(), &path).unwrap();
    let substrate: Arc<dyn Substrate> = Arc::new(task_t3(5).substrate());
    revived
        .register(
            Scenario::new("t3-apx", substrate, Algorithm::Apx, config)
                .with_cache_namespace("t3-pool"),
        )
        .unwrap();
    let warm_ticket = revived.submit("t3-apx").unwrap();
    revived.run_pending();
    let warm = done_outcome(&revived, warm_ticket);
    assert_eq!(
        warm.result.stats.oracle_calls, 0,
        "no retraining after restart"
    );
    assert!(
        warm.shared_hits() > 0,
        "first run after restart hits the cache"
    );
    assert_identical(&warm.result, &cold.result, "t3 warm vs cold");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn scheduler_runs_the_cache_warming_scenario_first() {
    // Prewarm off so scheduling order alone explains the hit pattern.
    let service = Service::new(ServiceConfig::default().with_prewarm(false));
    let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(9));
    service
        .register(
            Scenario::new(
                "expensive",
                substrate.clone(),
                Algorithm::Apx,
                oracle_config(80),
            )
            .with_cache_namespace("pool"),
        )
        .unwrap();
    service
        .register(
            Scenario::new("cheap", substrate, Algorithm::Apx, oracle_config(10))
                .with_cache_namespace("pool"),
        )
        .unwrap();

    // Submitted expensive-first; the scheduler must still run the cheap
    // (cache-warming) scenario before its expensive dependant.
    let expensive = service.submit("expensive").unwrap();
    let cheap = service.submit("cheap").unwrap();
    assert_eq!(service.run_pending(), 2);

    let cheap_outcome = done_outcome(&service, cheap);
    let expensive_outcome = done_outcome(&service, expensive);
    assert_eq!(
        cheap_outcome.shared_hits(),
        0,
        "cheap ran first, on a cold cache"
    );
    assert!(
        expensive_outcome.shared_hits() > 0,
        "expensive ran second and reused the warmed cache"
    );
}

#[test]
fn batched_valuation_matches_direct_oracle_results() {
    let service = Service::new(ServiceConfig::default());
    let substrate: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
    service
        .register(
            Scenario::new("apx", substrate.clone(), Algorithm::Apx, oracle_config(40))
                .with_cache_namespace("pool"),
        )
        .unwrap();
    let states: Vec<StateBitmap> = (0..8).map(|i| StateBitmap::full(8).flipped(i)).collect();
    let batch = service.valuate_batch("apx", &states).unwrap();
    assert_eq!(batch.evaluations.len(), states.len());
    assert_eq!(batch.trained, states.len());
    for (state, evaluation) in states.iter().zip(&batch.evaluations) {
        let raw = substrate.evaluate_raw(state);
        assert_eq!(evaluation.raw, raw);
        assert_eq!(evaluation.perf, substrate.measures().normalise(&raw));
    }
    // Grouped multi-request path: same namespace ⇒ one pass, all hits now.
    let grouped = service
        .valuate_many(&[ValuationRequest {
            scenario: "apx".into(),
            states: states.clone(),
        }])
        .unwrap();
    assert_eq!(grouped[0], batch.evaluations);
}

#[test]
fn namespace_guard_survives_a_restart() {
    // Process 1 fills "mock-pool" with evaluations of a 10-unit substrate
    // and snapshots (cache + namespace guard).
    let path = temp_path("guard_restart");
    let first = Service::new(ServiceConfig::default());
    register_mock_suite(&first, 10);
    first.submit("apx").unwrap();
    first.run_pending();
    first.snapshot_to(&path).unwrap();
    drop(first);

    // Process 2 restores the snapshot and tries to reuse the namespace for
    // an *incompatible* substrate (refreshed/changed data): rejected at
    // registration — the cached evaluations under that namespace do not
    // describe this substrate's states.
    let revived = Service::from_snapshot(ServiceConfig::default(), &path).unwrap();
    let refreshed: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(12));
    let err = revived
        .register(
            Scenario::new("apx", refreshed, Algorithm::Apx, oracle_config(60))
                .with_cache_namespace("mock-pool"),
        )
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::NamespaceConflict { .. }),
        "{err}"
    );

    // The matching substrate is still welcome and still warm.
    register_mock_suite(&revived, 10);
    let ticket = revived.submit("apx").unwrap();
    revived.run_pending();
    assert!(done_outcome(&revived, ticket).shared_hits() > 0);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn namespace_conflicts_are_rejected_at_registration() {
    let service = Service::new(ServiceConfig::default());
    let six: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(6));
    let eight: Arc<dyn Substrate> = Arc::new(MockSubstrate::new(8));
    service
        .register(
            Scenario::new("first", six, Algorithm::Apx, oracle_config(20))
                .with_cache_namespace("shared"),
        )
        .unwrap();
    let err = service
        .register(
            Scenario::new("second", eight, Algorithm::Apx, oracle_config(20))
                .with_cache_namespace("shared"),
        )
        .unwrap_err();
    assert!(
        matches!(err, ServiceError::NamespaceConflict { .. }),
        "{err}"
    );
}

#[test]
fn tcp_front_end_round_trips_the_protocol_and_snapshot() {
    let path = temp_path("daemon");
    let service = Arc::new(Service::new(ServiceConfig::default()));
    register_mock_suite(&service, 8);
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(daemon.addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut ask = |line: &str| {
        writeln!(writer, "{line}").unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    };

    assert_eq!(ask("PING"), "PONG");
    assert_eq!(ask("LIST"), "SCENARIOS apx bi div");
    assert_eq!(ask("SUBMIT apx"), "TICKET 1");
    assert_eq!(ask("POLL 1"), "QUEUED");
    assert_eq!(ask("RUN"), "OK 1");
    let done = ask("POLL 1");
    assert!(done.starts_with("DONE entries="), "{done}");
    let stats = ask("STATS");
    assert!(stats.starts_with("STATS hits="), "{stats}");
    let snap = ask(&format!("SNAPSHOT {}", path.display()));
    assert!(snap.starts_with("OK "), "{snap}");
    assert!(ask("SUBMIT ghost").starts_with("ERR "));
    assert_eq!(ask("QUIT"), "BYE");
    daemon.stop();

    // The snapshot written over the wire warm-starts a new service.
    let revived = Service::from_snapshot(ServiceConfig::default(), &path).unwrap();
    register_mock_suite(&revived, 8);
    let ticket = revived.submit("apx").unwrap();
    revived.run_pending();
    let outcome = done_outcome(&revived, ticket);
    assert_eq!(outcome.result.stats.oracle_calls, 0);
    assert!(outcome.shared_hits() > 0);
    std::fs::remove_file(&path).unwrap();
}
