//! Integration tests for the baseline comparison pipeline (Tables 4 / 6 rows).

use modis_bench::{run_table_methods, task_t2, task_t3};
use modis_core::prelude::*;

fn fast_config() -> ModisConfig {
    ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(20)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 8,
            refresh: 10,
        })
}

#[test]
fn method_comparison_produces_complete_rows() {
    let workload = task_t3(31);
    let rows = run_table_methods(&workload, &fast_config());
    let expected = [
        "Original",
        "METAM",
        "METAM-MO",
        "Starmie",
        "SkSFM",
        "H2O",
        "ApxMODis",
        "NOBiMODis",
        "BiMODis",
        "DivMODis",
    ];
    assert_eq!(rows.len(), expected.len());
    for (row, name) in rows.iter().zip(expected.iter()) {
        assert_eq!(&row.method, name);
        assert!(
            !row.raw.is_empty(),
            "{name} produced an empty metric vector"
        );
        assert!(row.size.0 > 0, "{name} produced an empty output dataset");
    }
}

#[test]
fn modis_beats_or_matches_original_on_primary_measure_t3() {
    // T3's primary measure is MSE (lower is better on the raw scale).
    let workload = task_t3(32);
    let rows = run_table_methods(&workload, &fast_config());
    let mse_of = |name: &str| {
        rows.iter()
            .find(|r| r.method == name)
            .and_then(|r| r.raw.first().copied())
            .unwrap_or(f64::INFINITY)
    };
    let original = mse_of("Original");
    let best_modis = ["ApxMODis", "NOBiMODis", "BiMODis", "DivMODis"]
        .iter()
        .map(|m| mse_of(m))
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_modis <= original * 1.05,
        "best MODis MSE {best_modis} should not be worse than original {original}"
    );
}

#[test]
fn feature_selection_baselines_shrink_the_schema_t2() {
    let workload = task_t2(33);
    let rows = run_table_methods(&workload, &fast_config());
    let cols_of = |name: &str| {
        rows.iter()
            .find(|r| r.method == name)
            .map(|r| r.size.1)
            .unwrap()
    };
    // Starmie augments (more columns than the base), SkSFM/H2O select (fewer
    // columns than the universal table used as their input).
    let universal_cols = workload.substrate().universal().reported_size().1;
    assert!(cols_of("SkSFM") <= universal_cols);
    assert!(cols_of("H2O") <= universal_cols);
    assert!(cols_of("Starmie") >= cols_of("Original"));
}

#[test]
fn hydragan_baseline_cannot_use_external_attributes() {
    let workload = task_t3(34);
    let base = workload.pool.base();
    let out = hydragan_like(base, &workload.task, 100, 9);
    // Synthetic rows only: same schema as the base, more rows.
    assert_eq!(out.dataset.num_columns(), base.num_columns());
    assert_eq!(out.dataset.num_rows(), base.num_rows() + 100);
}
