//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the surface the workspace uses is provided: [`Mutex`] / [`RwLock`]
//! with non-poisoning `lock()` / `read()` / `write()` (a poisoned std lock is
//! recovered via `PoisonError::into_inner`, matching parking_lot's
//! no-poisoning semantics).

use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}
