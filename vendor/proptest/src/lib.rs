//! Offline stand-in for `proptest`.
//!
//! Provides the subset used by this workspace's property tests: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and
//! `prop::collection::vec` strategies, `any::<T>()`, and
//! `prop_assert!`/`prop_assert_eq!`. Cases are generated from a
//! deterministic per-test RNG (seeded from the test name), and failures
//! panic immediately — there is no shrinking.

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic xoshiro256++ generator used to drive case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Builds a generator whose stream is a pure function of `name`.
    pub fn deterministic(name: &str) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut s = [0u64; 4];
        for w in &mut s {
            seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *w = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty size range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }
}

/// A value generator.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (mirrors `proptest`'s adapter).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `accept`, regenerating rejected ones
    /// (mirrors `proptest`'s adapter; `whence` labels exhaustion panics).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        accept: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            accept,
            whence,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    accept: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let value = self.inner.generate(rng);
            if (self.accept)(&value) {
                return value;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as i64
    }
}

impl Strategy for Range<i32> {
    type Value = i32;

    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.usize_in(self.start, self.end)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> u8 {
        rng.next_u64() as u8
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64() * 2.0 - 1.0
    }
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

/// Sizes accepted by [`prop::collection::vec`]: exact (`usize`) or ranged.
pub trait IntoSizeRange {
    /// Lower/upper (exclusive) bounds of the collection length.
    fn bounds(&self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn bounds(&self) -> (usize, usize) {
        (*self, *self + 1)
    }
}

impl IntoSizeRange for Range<usize> {
    fn bounds(&self) -> (usize, usize) {
        (self.start, self.end)
    }
}

/// Collection strategies (`prop::collection`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{IntoSizeRange, Strategy, TestRng};

        /// Strategy producing `Vec`s of a given element strategy and size.
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.lo + 1 >= self.hi {
                    self.lo
                } else {
                    rng.usize_in(self.lo, self.hi)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A `Vec` strategy with the given element strategy and size range.
        pub fn vec<S: Strategy, R: IntoSizeRange>(element: S, size: R) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            VecStrategy { element, lo, hi }
        }
    }
}

/// Per-test configuration (subset: number of cases).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cases ($cfg).cases; $($rest)*);
    };
    (@cases $cases:expr;
        $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
                for __proptest_case in 0..$cases {
                    let _ = __proptest_case;
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cases $crate::ProptestConfig::default().cases; $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.5f64..2.0, n in 1i64..9, len in prop::collection::vec(any::<bool>(), 2..5)) {
            prop_assert!((0.5..2.0).contains(&x));
            prop_assert!((1..9).contains(&n));
            prop_assert!((2..5).contains(&len.len()));
        }
    }

    #[test]
    fn deterministic_rng_is_stable_across_instances() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }
}
