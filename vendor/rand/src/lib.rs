//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored shim
//! provides the small API subset the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` / `gen_bool`. The generator is xoshiro256++ seeded
//! via SplitMix64 — deterministic for a given seed, which is all the
//! workloads rely on (they never use OS entropy).

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling over a half-open range; implemented for the numeric ranges the
/// workspace uses.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        (self.start as f64 + unit * (self.end - self.start) as f64) as f32
    }
}

/// Types drawable from the "standard" distribution (`rng.gen::<T>()`):
/// floats in `[0, 1)`, full-range integers, fair bools.
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        f64::sample_standard(rng) as f32
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000i64), b.gen_range(0..1_000_000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.5..4.0f64);
            assert!((-2.5..4.0).contains(&f));
            let n = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
