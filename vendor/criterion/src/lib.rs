//! Offline stand-in for `criterion`.
//!
//! Implements the subset used by this workspace's benches — benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!` / `criterion_main!` macros and [`black_box`] — as a
//! simple wall-clock harness that reports mean iteration time to stdout.
//! Statistical analysis, plots and HTML reports are intentionally absent.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimiser from eliding a value (delegates to `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of a parameterised benchmark (`name/param`).
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id of the form `name/param`.
    pub fn new(name: impl Display, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }

    /// Builds an id from a parameter only.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly and records the mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One untimed warm-up iteration.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        f(&mut bencher);
        println!("{}/{:<40} {:>12.3?} /iter", self.name, id, bencher.mean);
    }

    /// Benchmarks a closure under the given id.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Benchmarks a single closure outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// Declares a benchmark group runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_closures_and_counts_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        // 1 warm-up + 3 timed iterations.
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("op", 32).to_string(), "op/32");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
