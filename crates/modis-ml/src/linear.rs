//! Linear models: ordinary least squares / ridge regression and logistic
//! regression.
//!
//! Ridge regression solves the normal equations with a Gaussian-elimination
//! solver (the feature counts in the MODis workloads are small); logistic
//! regression uses batch gradient descent. These power the LRavocado model
//! (task T3) and the H2O-style baseline's linear feature selection.

/// Ridge regression fitted via normal equations.
#[derive(Debug, Clone)]
pub struct RidgeRegression {
    /// Learned weights (one per feature).
    pub weights: Vec<f64>,
    /// Learned intercept.
    pub intercept: f64,
    /// L2 regularisation strength used at fit time.
    pub alpha: f64,
}

/// Solves the dense linear system `A·x = b` by Gaussian elimination with
/// partial pivoting. Returns `None` when the system is singular.
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    if n == 0 || a.iter().any(|r| r.len() != n) || b.len() != n {
        return None;
    }
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..n {
            if a[r][col].abs() > a[pivot][col].abs() {
                pivot = r;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        let (upper, lower) = a.split_at_mut(col + 1);
        let pivot_row = &upper[col];
        let (b_upper, b_lower) = b.split_at_mut(col + 1);
        let b_pivot = b_upper[col];
        for (row, b_r) in lower.iter_mut().zip(b_lower.iter_mut()) {
            let factor = row[col] / pivot_row[col];
            for (v, &p) in row[col..].iter_mut().zip(&pivot_row[col..]) {
                *v -= factor * p;
            }
            *b_r -= factor * b_pivot;
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in (col + 1)..n {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    Some(x)
}

impl RidgeRegression {
    /// Fits ridge regression with regularisation strength `alpha`
    /// (`alpha = 0` gives OLS; the intercept is never regularised).
    pub fn fit(x: &[Vec<f64>], y: &[f64], alpha: f64) -> RidgeRegression {
        let n = x.len();
        let d = x.first().map(|r| r.len()).unwrap_or(0);
        if n == 0 || d == 0 {
            let intercept = if y.is_empty() {
                0.0
            } else {
                y.iter().sum::<f64>() / y.len() as f64
            };
            return RidgeRegression {
                weights: vec![0.0; d],
                intercept,
                alpha,
            };
        }
        // Build augmented design: [1, x_1 … x_d].
        let dim = d + 1;
        let mut xtx = vec![vec![0.0; dim]; dim];
        let mut xty = vec![0.0; dim];
        for (row, &target) in x.iter().zip(y.iter()) {
            let mut aug = Vec::with_capacity(dim);
            aug.push(1.0);
            aug.extend_from_slice(row);
            for i in 0..dim {
                xty[i] += aug[i] * target;
                for j in 0..dim {
                    xtx[i][j] += aug[i] * aug[j];
                }
            }
        }
        for (i, row) in xtx.iter_mut().enumerate().skip(1) {
            row[i] += alpha;
        }
        // A tiny jitter keeps the system solvable for collinear features.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let sol = solve_linear_system(xtx, xty).unwrap_or_else(|| vec![0.0; dim]);
        RidgeRegression {
            intercept: sol[0],
            weights: sol[1..].to_vec(),
            alpha,
        }
    }

    /// Predicts one sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        self.intercept
            + self
                .weights
                .iter()
                .zip(row.iter())
                .map(|(w, v)| w * v)
                .sum::<f64>()
    }

    /// Predicts a batch.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Absolute standardised coefficients, usable as feature importance.
    pub fn importance(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().map(|w| w.abs()).sum();
        if total == 0.0 {
            return vec![0.0; self.weights.len()];
        }
        self.weights.iter().map(|w| w.abs() / total).collect()
    }
}

/// Binary / one-vs-rest logistic regression trained by gradient descent.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    /// One weight vector + intercept per class stage.
    stages: Vec<(Vec<f64>, f64)>,
    n_classes: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Number of gradient-descent epochs.
    pub epochs: usize,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Fits logistic regression for labels in `0..n_classes`.
    pub fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        n_classes: usize,
        learning_rate: f64,
        epochs: usize,
    ) -> Self {
        let n_classes = n_classes.max(2);
        let d = x.first().map(|r| r.len()).unwrap_or(0);
        let n_stages = if n_classes == 2 { 1 } else { n_classes };
        // Standardise features for stable gradient descent.
        let (means, stds) = standardise_stats(x, d);
        let mut stages = Vec::with_capacity(n_stages);
        for c in 0..n_stages {
            let targets: Vec<f64> = y
                .iter()
                .map(|&v| {
                    let label = v.round() as usize;
                    let pos = if n_classes == 2 {
                        label == 1
                    } else {
                        label == c
                    };
                    if pos {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let mut w = vec![0.0; d];
            let mut b = 0.0;
            if !x.is_empty() && d > 0 {
                for _ in 0..epochs {
                    let mut gw = vec![0.0; d];
                    let mut gb = 0.0;
                    for (row, &t) in x.iter().zip(targets.iter()) {
                        let z: f64 = b + w
                            .iter()
                            .enumerate()
                            .map(|(j, wj)| wj * ((row[j] - means[j]) / stds[j]))
                            .sum::<f64>();
                        let err = sigmoid(z) - t;
                        for j in 0..d {
                            gw[j] += err * ((row[j] - means[j]) / stds[j]);
                        }
                        gb += err;
                    }
                    let scale = learning_rate / x.len() as f64;
                    for j in 0..d {
                        w[j] -= scale * gw[j];
                    }
                    b -= scale * gb;
                }
            }
            // Fold standardisation into the weights so prediction is direct.
            let mut folded_w = vec![0.0; d];
            let mut folded_b = b;
            for j in 0..d {
                folded_w[j] = w[j] / stds[j];
                folded_b -= w[j] * means[j] / stds[j];
            }
            stages.push((folded_w, folded_b));
        }
        LogisticRegression {
            stages,
            n_classes,
            learning_rate,
            epochs,
        }
    }

    /// Per-class probability scores for one sample.
    pub fn predict_scores_one(&self, row: &[f64]) -> Vec<f64> {
        if self.n_classes == 2 {
            let (w, b) = &self.stages[0];
            let z = b + w.iter().zip(row.iter()).map(|(wj, v)| wj * v).sum::<f64>();
            let p1 = sigmoid(z);
            vec![1.0 - p1, p1]
        } else {
            let mut scores: Vec<f64> = self
                .stages
                .iter()
                .map(|(w, b)| {
                    sigmoid(b + w.iter().zip(row.iter()).map(|(wj, v)| wj * v).sum::<f64>())
                })
                .collect();
            let total: f64 = scores.iter().sum();
            if total > 0.0 {
                for s in &mut scores {
                    *s /= total;
                }
            }
            scores
        }
    }

    /// Predicted class label for one sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        self.predict_scores_one(row)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c as f64)
            .unwrap_or(0.0)
    }

    /// Batch prediction.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Batch per-class scores.
    pub fn predict_scores(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.predict_scores_one(r)).collect()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Normalised absolute coefficients (averaged over stages).
    pub fn importance(&self) -> Vec<f64> {
        let d = self.stages.first().map(|(w, _)| w.len()).unwrap_or(0);
        let mut imp = vec![0.0; d];
        for (w, _) in &self.stages {
            for (j, wj) in w.iter().enumerate() {
                imp[j] += wj.abs();
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

fn standardise_stats(x: &[Vec<f64>], d: usize) -> (Vec<f64>, Vec<f64>) {
    let n = x.len().max(1) as f64;
    let mut means = vec![0.0; d];
    for row in x {
        for j in 0..d {
            means[j] += row[j];
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut stds = vec![0.0; d];
    for row in x {
        for j in 0..d {
            stds[j] += (row[j] - means[j]).powi(2);
        }
    }
    for s in &mut stds {
        *s = (*s / n).sqrt();
        if *s < 1e-9 {
            *s = 1.0;
        }
    }
    (means, stds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2};

    #[test]
    fn solve_linear_system_known_solution() {
        let a = vec![vec![2.0, 1.0], vec![1.0, 3.0]];
        let b = vec![5.0, 10.0];
        let x = solve_linear_system(a, b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!((x[1] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn solve_linear_system_singular_returns_none() {
        let a = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        assert!(solve_linear_system(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    fn ols_recovers_linear_coefficients() {
        let x: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 + 2.0 * r[0] - 0.5 * r[1]).collect();
        let m = RidgeRegression::fit(&x, &y, 0.0);
        assert!((m.intercept - 3.0).abs() < 1e-6);
        assert!((m.weights[0] - 2.0).abs() < 1e-6);
        assert!((m.weights[1] + 0.5).abs() < 1e-6);
        assert!(r2(&y, &m.predict(&x)) > 0.999);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| 4.0 * r[0]).collect();
        let ols = RidgeRegression::fit(&x, &y, 0.0);
        let ridge = RidgeRegression::fit(&x, &y, 1000.0);
        assert!(ridge.weights[0].abs() < ols.weights[0].abs());
    }

    #[test]
    fn ridge_on_empty_input() {
        let m = RidgeRegression::fit(&[], &[], 1.0);
        assert_eq!(m.predict_one(&[]), 0.0);
    }

    #[test]
    fn logistic_binary_separates_classes() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 5.0 { 1.0 } else { 0.0 })
            .collect();
        let m = LogisticRegression::fit(&x, &y, 2, 0.5, 300);
        assert!(accuracy(&y, &m.predict(&x)) > 0.9);
        let s = m.predict_scores_one(&[9.0]);
        assert!(s[1] > 0.8);
    }

    #[test]
    fn logistic_multiclass() {
        let x: Vec<Vec<f64>> = (0..90).map(|i| vec![(i % 30) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] / 10.0).floor()).collect();
        let m = LogisticRegression::fit(&x, &y, 3, 0.5, 400);
        assert!(accuracy(&y, &m.predict(&x)) > 0.8);
        assert_eq!(m.n_classes(), 3);
    }

    #[test]
    fn importances_are_normalised() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 1.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let m = RidgeRegression::fit(&x, &y, 0.0);
        let imp = m.importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
