//! Gradient boosting machines.
//!
//! * [`GradientBoostingRegressor`] — least-squares boosting with shallow CART
//!   trees (the GBmovie model of task T1).
//! * [`GradientBoostingClassifier`] — binary / one-vs-rest logistic boosting
//!   (the LightGBM-style LGCmental model of task T4).
//! * [`MultiOutputGbm`] — one boosted regressor per output dimension; the
//!   paper's default performance estimator `E` (MO-GBM, §2/§6).

use crate::tree::{Criterion, DecisionTree, TreeParams};

/// Hyper-parameters shared by the boosting models.
#[derive(Debug, Clone, Copy)]
pub struct GbmParams {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Parameters of the weak learners.
    pub tree: TreeParams,
}

impl Default for GbmParams {
    fn default() -> Self {
        GbmParams {
            n_estimators: 50,
            learning_rate: 0.1,
            tree: TreeParams {
                max_depth: 3,
                criterion: Criterion::Mse,
                ..TreeParams::default()
            },
        }
    }
}

/// Least-squares gradient boosting regressor.
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    base: f64,
    trees: Vec<DecisionTree>,
    params: GbmParams,
}

impl GradientBoostingRegressor {
    /// Fits the regressor.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: GbmParams) -> Self {
        let base = if y.is_empty() {
            0.0
        } else {
            y.iter().sum::<f64>() / y.len() as f64
        };
        let mut preds = vec![base; y.len()];
        let mut trees = Vec::with_capacity(params.n_estimators);
        if !x.is_empty() {
            for _ in 0..params.n_estimators {
                let residuals: Vec<f64> = y.iter().zip(preds.iter()).map(|(t, p)| t - p).collect();
                let tree = DecisionTree::fit(x, &residuals, params.tree);
                for (i, row) in x.iter().enumerate() {
                    preds[i] += params.learning_rate * tree.predict_one(row);
                }
                trees.push(tree);
            }
        }
        GradientBoostingRegressor {
            base,
            trees,
            params,
        }
    }

    /// Predicts one sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut p = self.base;
        for t in &self.trees {
            p += self.params.learning_rate * t.predict_one(row);
        }
        p
    }

    /// Predicts a batch.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Normalised impurity-based feature importance.
    pub fn feature_importance(&self) -> Vec<f64> {
        let n_features = self.trees.first().map(|t| t.n_features()).unwrap_or(0);
        let mut imp = vec![0.0; n_features];
        for t in &self.trees {
            for (i, v) in t.feature_importance().iter().enumerate() {
                imp[i] += v;
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of fitted trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether no boosting rounds were run.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

/// Binary / one-vs-rest gradient boosting classifier with logistic loss.
#[derive(Debug, Clone)]
pub struct GradientBoostingClassifier {
    /// One boosted stage per class (one-vs-rest); binary uses a single stage.
    stages: Vec<(f64, Vec<DecisionTree>)>,
    n_classes: usize,
    params: GbmParams,
}

impl GradientBoostingClassifier {
    /// Fits the classifier for labels in `0..n_classes`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], n_classes: usize, params: GbmParams) -> Self {
        let n_classes = n_classes.max(2);
        let n_stages = if n_classes == 2 { 1 } else { n_classes };
        let mut stages = Vec::with_capacity(n_stages);
        for c in 0..n_stages {
            let targets: Vec<f64> = y
                .iter()
                .map(|&v| {
                    let label = v.round() as usize;
                    let positive = if n_classes == 2 {
                        label == 1
                    } else {
                        label == c
                    };
                    if positive {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect();
            let pos_rate = if targets.is_empty() {
                0.5
            } else {
                (targets.iter().sum::<f64>() / targets.len() as f64).clamp(1e-6, 1.0 - 1e-6)
            };
            let base = (pos_rate / (1.0 - pos_rate)).ln();
            let mut raw = vec![base; targets.len()];
            let mut trees = Vec::with_capacity(params.n_estimators);
            if !x.is_empty() {
                for _ in 0..params.n_estimators {
                    let gradients: Vec<f64> = targets
                        .iter()
                        .zip(raw.iter())
                        .map(|(t, r)| t - sigmoid(*r))
                        .collect();
                    let tree = DecisionTree::fit(x, &gradients, params.tree);
                    for (i, row) in x.iter().enumerate() {
                        raw[i] += params.learning_rate * tree.predict_one(row);
                    }
                    trees.push(tree);
                }
            }
            stages.push((base, trees));
        }
        GradientBoostingClassifier {
            stages,
            n_classes,
            params,
        }
    }

    /// Per-class probability scores for one sample.
    pub fn predict_scores_one(&self, row: &[f64]) -> Vec<f64> {
        if self.n_classes == 2 {
            let (base, trees) = &self.stages[0];
            let mut raw = *base;
            for t in trees {
                raw += self.params.learning_rate * t.predict_one(row);
            }
            let p1 = sigmoid(raw);
            vec![1.0 - p1, p1]
        } else {
            let mut scores: Vec<f64> = self
                .stages
                .iter()
                .map(|(base, trees)| {
                    let mut raw = *base;
                    for t in trees {
                        raw += self.params.learning_rate * t.predict_one(row);
                    }
                    sigmoid(raw)
                })
                .collect();
            let total: f64 = scores.iter().sum();
            if total > 0.0 {
                for s in &mut scores {
                    *s /= total;
                }
            }
            scores
        }
    }

    /// Predicted class label for one sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        self.predict_scores_one(row)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(c, _)| c as f64)
            .unwrap_or(0.0)
    }

    /// Batch prediction.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Batch probability scores.
    pub fn predict_scores(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.predict_scores_one(r)).collect()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Normalised feature importance aggregated over all stages.
    pub fn feature_importance(&self) -> Vec<f64> {
        let n_features = self
            .stages
            .first()
            .and_then(|(_, trees)| trees.first())
            .map(|t| t.n_features())
            .unwrap_or(0);
        let mut imp = vec![0.0; n_features];
        for (_, trees) in &self.stages {
            for t in trees {
                for (i, v) in t.feature_importance().iter().enumerate() {
                    imp[i] += v;
                }
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }
}

/// Multi-output gradient boosting: one regressor per output dimension.
///
/// This is the paper's default estimator `E`: a single call valuates the
/// entire performance vector of a test `t = (M, D, P)`.
#[derive(Debug, Clone)]
pub struct MultiOutputGbm {
    models: Vec<GradientBoostingRegressor>,
}

impl MultiOutputGbm {
    /// Fits one boosted regressor per column of `y`.
    pub fn fit(x: &[Vec<f64>], y: &[Vec<f64>], params: GbmParams) -> Self {
        let n_outputs = y.first().map(|r| r.len()).unwrap_or(0);
        let models = (0..n_outputs)
            .map(|k| {
                let yk: Vec<f64> = y.iter().map(|r| r[k]).collect();
                GradientBoostingRegressor::fit(x, &yk, params)
            })
            .collect();
        MultiOutputGbm { models }
    }

    /// Predicts the full output vector for one sample.
    pub fn predict_one(&self, row: &[f64]) -> Vec<f64> {
        self.models.iter().map(|m| m.predict_one(row)).collect()
    }

    /// Predicts the output matrix for a batch.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Number of output dimensions.
    pub fn n_outputs(&self) -> usize {
        self.models.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2};

    #[test]
    fn regressor_fits_quadratic() {
        let x: Vec<Vec<f64>> = (0..80).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let gbm = GradientBoostingRegressor::fit(&x, &y, GbmParams::default());
        let pred = gbm.predict(&x);
        assert!(r2(&y, &pred) > 0.95);
        assert_eq!(gbm.len(), 50);
    }

    #[test]
    fn regressor_on_empty_data() {
        let gbm = GradientBoostingRegressor::fit(&[], &[], GbmParams::default());
        assert_eq!(gbm.predict_one(&[1.0]), 0.0);
        assert!(gbm.is_empty());
    }

    #[test]
    fn binary_classifier_learns_threshold() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 20) as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] >= 10.0 { 1.0 } else { 0.0 })
            .collect();
        let clf = GradientBoostingClassifier::fit(&x, &y, 2, GbmParams::default());
        let pred = clf.predict(&x);
        assert!(accuracy(&y, &pred) > 0.95);
        let s = clf.predict_scores_one(&x[0]);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiclass_classifier_one_vs_rest() {
        let x: Vec<Vec<f64>> = (0..90).map(|i| vec![(i % 30) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| (r[0] / 10.0).floor()).collect();
        let clf = GradientBoostingClassifier::fit(&x, &y, 3, GbmParams::default());
        let pred = clf.predict(&x);
        assert!(accuracy(&y, &pred) > 0.9);
        assert_eq!(clf.predict_scores_one(&x[0]).len(), 3);
        assert_eq!(clf.n_classes(), 3);
    }

    #[test]
    fn multioutput_gbm_predicts_vectors() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<Vec<f64>> = x
            .iter()
            .map(|r| vec![2.0 * r[0], 1.0 - r[0] / 10.0])
            .collect();
        let mo = MultiOutputGbm::fit(&x, &y, GbmParams::default());
        assert_eq!(mo.n_outputs(), 2);
        let p = mo.predict_one(&[3.0]);
        assert!((p[0] - 6.0).abs() < 0.5);
        assert!((p[1] - 0.7).abs() < 0.1);
    }

    #[test]
    fn feature_importance_sums_to_one_when_trained() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, 0.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0]).collect();
        let gbm = GradientBoostingRegressor::fit(&x, &y, GbmParams::default());
        let imp = gbm.feature_importance();
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1]);
    }
}
