//! Feature scoring: Fisher score and mutual information.
//!
//! The paper reports `p_Fsc` (Fisher score) and `p_MI` (mutual information)
//! as secondary measures for tasks T1 and T2 (Table 3), and the SkSFM / H2O
//! baselines select features by such scores.

use std::collections::HashMap;

/// Fisher score of one feature for a labelled dataset.
///
/// `F(j) = Σ_c n_c (μ_{c,j} − μ_j)² / Σ_c n_c σ²_{c,j}`; larger is better.
/// Returns 0 when the denominator vanishes.
pub fn fisher_score_feature(values: &[f64], labels: &[f64]) -> f64 {
    if values.len() != labels.len() || values.is_empty() {
        return 0.0;
    }
    let overall_mean = values.iter().sum::<f64>() / values.len() as f64;
    let mut groups: HashMap<i64, Vec<f64>> = HashMap::new();
    for (&v, &l) in values.iter().zip(labels.iter()) {
        groups.entry(l.round() as i64).or_default().push(v);
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for vs in groups.values() {
        let n = vs.len() as f64;
        let mean = vs.iter().sum::<f64>() / n;
        let var = vs.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        num += n * (mean - overall_mean).powi(2);
        den += n * var;
    }
    if num < 1e-12 {
        0.0
    } else {
        // A vanishing within-class variance means perfect separation; clamp
        // the denominator so the score stays finite but large.
        num / den.max(1e-9)
    }
}

/// Fills `col` with column `j` of the row-major matrix `x`, reusing the
/// buffer so per-feature scoring costs no allocation.
fn fill_column(x: &[Vec<f64>], j: usize, col: &mut Vec<f64>) {
    col.clear();
    col.extend(x.iter().map(|r| r[j]));
}

/// Mean Fisher score of a feature matrix against labels.
pub fn fisher_score(x: &[Vec<f64>], labels: &[f64]) -> f64 {
    let d = x.first().map(|r| r.len()).unwrap_or(0);
    if d == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut col = Vec::with_capacity(x.len());
    for j in 0..d {
        fill_column(x, j, &mut col);
        sum += fisher_score_feature(&col, labels);
    }
    sum / d as f64
}

/// Per-feature Fisher scores.
pub fn fisher_scores(x: &[Vec<f64>], labels: &[f64]) -> Vec<f64> {
    let d = x.first().map(|r| r.len()).unwrap_or(0);
    let mut col = Vec::with_capacity(x.len());
    (0..d)
        .map(|j| {
            fill_column(x, j, &mut col);
            fisher_score_feature(&col, labels)
        })
        .collect()
}

/// Equal-width discretisation of a continuous slice into `bins` buckets.
pub fn discretise(values: &[f64], bins: usize) -> Vec<usize> {
    if values.is_empty() || bins == 0 {
        return vec![0; values.len()];
    }
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !(max - min).is_finite() || (max - min) < 1e-12 {
        return vec![0; values.len()];
    }
    values
        .iter()
        .map(|&v| {
            let b = ((v - min) / (max - min) * bins as f64).floor() as usize;
            b.min(bins - 1)
        })
        .collect()
}

/// Mutual information (nats) between two discretised variables.
pub fn mutual_information_discrete(xs: &[usize], ys: &[usize]) -> f64 {
    if xs.len() != ys.len() || xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mut joint: HashMap<(usize, usize), f64> = HashMap::new();
    let mut px: HashMap<usize, f64> = HashMap::new();
    let mut py: HashMap<usize, f64> = HashMap::new();
    for (&x, &y) in xs.iter().zip(ys.iter()) {
        *joint.entry((x, y)).or_insert(0.0) += 1.0;
        *px.entry(x).or_insert(0.0) += 1.0;
        *py.entry(y).or_insert(0.0) += 1.0;
    }
    let mut mi = 0.0;
    for ((x, y), &c) in &joint {
        let pxy = c / n;
        let p_x = px[x] / n;
        let p_y = py[y] / n;
        mi += pxy * (pxy / (p_x * p_y)).ln();
    }
    mi.max(0.0)
}

/// Mutual information between a continuous feature and labels, using
/// equal-width binning of the feature.
pub fn mutual_information_feature(values: &[f64], labels: &[f64], bins: usize) -> f64 {
    let xs = discretise(values, bins);
    let ys: Vec<usize> = labels
        .iter()
        .map(|&l| l.round().max(0.0) as usize)
        .collect();
    mutual_information_discrete(&xs, &ys)
}

/// Mean mutual information of a feature matrix against labels.
pub fn mutual_information(x: &[Vec<f64>], labels: &[f64], bins: usize) -> f64 {
    let d = x.first().map(|r| r.len()).unwrap_or(0);
    if d == 0 {
        return 0.0;
    }
    let mut sum = 0.0;
    let mut col = Vec::with_capacity(x.len());
    for j in 0..d {
        fill_column(x, j, &mut col);
        sum += mutual_information_feature(&col, labels, bins);
    }
    sum / d as f64
}

/// Per-feature mutual information scores.
pub fn mutual_information_scores(x: &[Vec<f64>], labels: &[f64], bins: usize) -> Vec<f64> {
    let d = x.first().map(|r| r.len()).unwrap_or(0);
    let mut col = Vec::with_capacity(x.len());
    (0..d)
        .map(|j| {
            fill_column(x, j, &mut col);
            mutual_information_feature(&col, labels, bins)
        })
        .collect()
}

/// Selects the indices of the top-`k` features by a score vector
/// (descending); ties broken by index.
pub fn top_k_features(scores: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| {
        scores[b]
            .partial_cmp(&scores[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fisher_score_separable_feature_is_large() {
        let values: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 10.0 }).collect();
        let labels: Vec<f64> = (0..40).map(|i| if i < 20 { 0.0 } else { 1.0 }).collect();
        assert!(fisher_score_feature(&values, &labels) > 100.0);
        // Perfectly separated classes with zero within-class variance.
        let noise: Vec<f64> = (0..40).map(|i| (i % 4) as f64).collect();
        assert!(fisher_score_feature(&noise, &labels) < 1.0);
    }

    #[test]
    fn fisher_score_handles_constant_feature() {
        let values = vec![1.0; 10];
        let labels: Vec<f64> = (0..10).map(|i| (i % 2) as f64).collect();
        assert_eq!(fisher_score_feature(&values, &labels), 0.0);
    }

    #[test]
    fn discretise_assigns_bins() {
        let bins = discretise(&[0.0, 0.5, 1.0], 2);
        assert_eq!(bins, vec![0, 1, 1]);
        assert_eq!(discretise(&[3.0, 3.0], 4), vec![0, 0]);
        assert!(discretise(&[], 4).is_empty());
    }

    #[test]
    fn mutual_information_of_identical_variables_is_entropy() {
        let xs: Vec<usize> = (0..100).map(|i| i % 2).collect();
        let mi = mutual_information_discrete(&xs, &xs);
        assert!((mi - (2.0f64).ln()).abs() < 1e-9);
    }

    #[test]
    fn mutual_information_of_independent_variables_is_small() {
        let xs: Vec<usize> = (0..1000).map(|i| i % 2).collect();
        let ys: Vec<usize> = (0..1000).map(|i| (i / 2) % 2).collect();
        assert!(mutual_information_discrete(&xs, &ys) < 0.01);
    }

    #[test]
    fn feature_matrix_scores() {
        let x: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![if i < 30 { 0.0 } else { 5.0 }, (i % 3) as f64])
            .collect();
        let y: Vec<f64> = (0..60).map(|i| if i < 30 { 0.0 } else { 1.0 }).collect();
        let fs = fisher_scores(&x, &y);
        assert!(fs[0] > fs[1]);
        let mis = mutual_information_scores(&x, &y, 5);
        assert!(mis[0] > mis[1]);
        assert!(fisher_score(&x, &y) > 0.0);
        assert!(mutual_information(&x, &y, 5) > 0.0);
    }

    #[test]
    fn top_k_orders_descending() {
        let idx = top_k_features(&[0.1, 0.9, 0.5], 2);
        assert_eq!(idx, vec![1, 2]);
        assert_eq!(top_k_features(&[0.5, 0.5], 5), vec![0, 1]);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(fisher_score(&[], &[]), 0.0);
        assert_eq!(mutual_information(&[], &[], 4), 0.0);
        assert_eq!(mutual_information_discrete(&[], &[]), 0.0);
    }
}
