//! Dataset → feature-matrix encoding.
//!
//! MODis treats the downstream model `M` as a function over a feature matrix
//! (§2). This module converts a [`Dataset`] — or, on the columnar hot path,
//! a zero-copy [`DatasetView`] — into a dense numeric matrix: numeric
//! attributes are mean-imputed, categorical attributes are label-encoded,
//! and the declared target attribute becomes the label vector (class ids
//! for classification, raw values for regression).
//!
//! [`encode_view`] is the primary implementation: it reads cell values
//! straight through the view's selection vector and attribute mask, so
//! oracle training never copies a `Value`. [`encode`] wraps a full-table
//! view around a `Dataset` and produces bit-identical output to the
//! pre-columnar row-copying encoder.

use std::collections::BTreeMap;

use modis_data::{AttributeRole, Dataset, DatasetView, Value};

/// The kind of supervised task the downstream model solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Continuous target.
    Regression,
    /// Discrete target (class ids `0..n_classes`).
    Classification,
}

/// A dense numeric design matrix with labels.
#[derive(Debug, Clone, Default)]
pub struct Encoded {
    /// Row-major feature matrix, `rows × features`.
    pub features: Vec<Vec<f64>>,
    /// Label vector aligned with `features`.
    pub targets: Vec<f64>,
    /// Feature names aligned with matrix columns.
    pub feature_names: Vec<String>,
    /// Number of classes (classification) or 0 (regression).
    pub n_classes: usize,
    /// Mapping from class id to the original target value (classification).
    pub class_values: Vec<Value>,
}

impl Encoded {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the matrix has no rows.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// One feature column as a vector.
    pub fn feature_column(&self, j: usize) -> Vec<f64> {
        self.features.iter().map(|r| r[j]).collect()
    }

    /// Splits rows into (train, test) deterministically.
    pub fn split(&self, train_ratio: f64, seed: u64) -> (Encoded, Encoded) {
        let n = self.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        let cut = ((n as f64) * train_ratio).round() as usize;
        let cut = cut.min(n);
        let take = |ids: &[usize]| Encoded {
            features: ids.iter().map(|&i| self.features[i].clone()).collect(),
            targets: ids.iter().map(|&i| self.targets[i]).collect(),
            feature_names: self.feature_names.clone(),
            n_classes: self.n_classes,
            class_values: self.class_values.clone(),
        };
        (take(&idx[..cut]), take(&idx[cut..]))
    }

    /// Selects a subset of feature columns (by index), keeping targets.
    pub fn select_features(&self, cols: &[usize]) -> Encoded {
        Encoded {
            features: self
                .features
                .iter()
                .map(|r| cols.iter().map(|&c| r[c]).collect())
                .collect(),
            targets: self.targets.clone(),
            feature_names: cols
                .iter()
                .map(|&c| self.feature_names[c].clone())
                .collect(),
            n_classes: self.n_classes,
            class_values: self.class_values.clone(),
        }
    }
}

/// Options controlling encoding.
#[derive(Debug, Clone)]
pub struct EncodeOptions {
    /// Name of the target attribute. When `None`, the schema's declared
    /// target attribute is used.
    pub target: Option<String>,
    /// Task kind; classification label-encodes the target.
    pub task: TaskKind,
    /// Attribute names to exclude from the feature matrix (e.g. join keys).
    pub exclude: Vec<String>,
}

impl EncodeOptions {
    /// Regression options with the schema-declared target.
    pub fn regression() -> Self {
        EncodeOptions {
            target: None,
            task: TaskKind::Regression,
            exclude: Vec::new(),
        }
    }

    /// Classification options with the schema-declared target.
    pub fn classification() -> Self {
        EncodeOptions {
            target: None,
            task: TaskKind::Classification,
            exclude: Vec::new(),
        }
    }

    /// Sets an explicit target attribute.
    pub fn with_target(mut self, target: impl Into<String>) -> Self {
        self.target = Some(target.into());
        self
    }

    /// Excludes attributes from the feature matrix.
    pub fn with_exclude<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.exclude = names.into_iter().map(Into::into).collect();
        self
    }
}

/// Encodes a dataset into a numeric matrix.
///
/// Rows whose target is missing are dropped. Feature columns that are
/// entirely null are dropped (they correspond to masked attributes).
pub fn encode(data: &Dataset, opts: &EncodeOptions) -> Encoded {
    encode_view(&DatasetView::full(data), opts)
}

/// Encodes a zero-copy [`DatasetView`] into a numeric matrix, reading cell
/// values straight through the view's selection vector and attribute mask.
///
/// Produces exactly the matrix [`encode`] would produce on the materialised
/// view (`view.to_dataset()`): masked attributes read all-null and are
/// dropped, deselected rows never contribute to imputation means, category
/// ids or class ids.
pub fn encode_view(view: &DatasetView<'_>, opts: &EncodeOptions) -> Encoded {
    let schema = view.schema();
    let target_col = opts
        .target
        .as_ref()
        .and_then(|n| schema.position(n))
        .or_else(|| schema.target_index());

    // Determine feature columns.
    let mut feature_cols: Vec<usize> = Vec::new();
    for (i, attr) in schema.attributes().iter().enumerate() {
        if Some(i) == target_col {
            continue;
        }
        if attr.role == AttributeRole::Key {
            continue;
        }
        if opts.exclude.iter().any(|e| e == &attr.name) {
            continue;
        }
        // Skip all-null columns (masked attributes).
        if view.col_is_all_null(i) {
            continue;
        }
        feature_cols.push(i);
    }

    let feature_names: Vec<String> = feature_cols
        .iter()
        .map(|&c| {
            schema
                .attribute(c)
                .map(|a| a.name.clone())
                .unwrap_or_default()
        })
        .collect();

    // Every feature column is unmasked (a masked column reads all-null and
    // was skipped above), so the passes below index the base rows directly
    // — one slice lookup per row, not an Option chain per cell. The only
    // possibly-masked column left is the target; when it is masked every
    // selected row's target reads null and all rows drop.
    if target_col.is_some_and(|tc| view.is_col_masked(tc)) {
        return Encoded {
            features: Vec::new(),
            targets: Vec::new(),
            feature_names,
            n_classes: 0,
            class_values: Vec::new(),
        };
    }
    let base_rows = view.base().rows();

    // Build per-column encoders.
    enum ColEncoder {
        Numeric { mean: f64 },
        Categorical { map: BTreeMap<Value, f64> },
    }
    let mut encoders = Vec::with_capacity(feature_cols.len());
    for &c in &feature_cols {
        let mut sum = 0.0;
        let mut numeric = 0usize;
        let mut non_null = 0usize;
        for r in view.row_indices() {
            let v = &base_rows[r][c];
            if !v.is_null() {
                non_null += 1;
            }
            if let Some(x) = v.as_f64().filter(|x| x.is_finite()) {
                sum += x;
                numeric += 1;
            }
        }
        if numeric > 0 && numeric == non_null {
            encoders.push(ColEncoder::Numeric {
                mean: sum / numeric as f64,
            });
        } else {
            let mut map = BTreeMap::new();
            for r in view.row_indices() {
                let v = &base_rows[r][c];
                if !v.is_null() && !map.contains_key(v) {
                    let id = map.len() as f64;
                    map.insert(v.clone(), id);
                }
            }
            encoders.push(ColEncoder::Categorical { map });
        }
    }

    // Target encoding.
    let mut class_values: Vec<Value> = Vec::new();
    let mut class_map: BTreeMap<Value, f64> = BTreeMap::new();
    if let (Some(tc), TaskKind::Classification) = (target_col, opts.task) {
        for r in view.row_indices() {
            let v = &base_rows[r][tc];
            if !v.is_null() && !class_map.contains_key(v) {
                class_map.insert(v.clone(), class_values.len() as f64);
                class_values.push(v.clone());
            }
        }
    }

    let mut features = Vec::new();
    let mut targets = Vec::new();
    for r in view.row_indices() {
        let row = &base_rows[r];
        let target_val = match target_col {
            Some(tc) => {
                let v = &row[tc];
                if v.is_null() {
                    continue;
                }
                match opts.task {
                    TaskKind::Regression => match v.as_f64() {
                        Some(x) if x.is_finite() => x,
                        _ => continue,
                    },
                    TaskKind::Classification => *class_map.get(v).unwrap_or(&0.0),
                }
            }
            None => 0.0,
        };
        let mut feat = Vec::with_capacity(feature_cols.len());
        for (k, &c) in feature_cols.iter().enumerate() {
            let v = &row[c];
            let x = match &encoders[k] {
                ColEncoder::Numeric { mean } => {
                    v.as_f64().filter(|x| x.is_finite()).unwrap_or(*mean)
                }
                ColEncoder::Categorical { map } => {
                    if v.is_null() {
                        -1.0
                    } else {
                        *map.get(v).unwrap_or(&-1.0)
                    }
                }
            };
            feat.push(x);
        }
        features.push(feat);
        targets.push(target_val);
    }

    Encoded {
        features,
        targets,
        feature_names,
        n_classes: if opts.task == TaskKind::Classification {
            class_values.len()
        } else {
            0
        },
        class_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_data::{Attribute, Schema};

    fn toy() -> Dataset {
        Dataset::from_rows(
            "toy",
            Schema::from_attributes(vec![
                Attribute::key("id"),
                Attribute::feature("x"),
                Attribute::feature("color"),
                Attribute::target("y"),
            ]),
            vec![
                vec![
                    Value::Int(1),
                    Value::Float(1.0),
                    Value::Str("red".into()),
                    Value::Float(10.0),
                ],
                vec![
                    Value::Int(2),
                    Value::Null,
                    Value::Str("blue".into()),
                    Value::Float(20.0),
                ],
                vec![
                    Value::Int(3),
                    Value::Float(3.0),
                    Value::Str("red".into()),
                    Value::Null,
                ],
                vec![
                    Value::Int(4),
                    Value::Float(5.0),
                    Value::Null,
                    Value::Float(30.0),
                ],
            ],
        )
        .unwrap()
    }

    #[test]
    fn encode_regression_drops_null_targets_and_keys() {
        let e = encode(&toy(), &EncodeOptions::regression());
        assert_eq!(e.len(), 3);
        assert_eq!(e.feature_names, vec!["x", "color"]);
        assert_eq!(e.targets, vec![10.0, 20.0, 30.0]);
    }

    #[test]
    fn numeric_nulls_are_mean_imputed() {
        let e = encode(&toy(), &EncodeOptions::regression());
        // mean of x over non-null cells {1,3,5} = 3
        assert!((e.features[1][0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_encoding_assigns_ids() {
        let e = encode(&toy(), &EncodeOptions::regression());
        assert_eq!(e.features[0][1], e.features[0][1]);
        // Null categorical becomes -1.
        assert_eq!(e.features[2][1], -1.0);
    }

    #[test]
    fn classification_builds_class_map() {
        let mut d = toy();
        // Overwrite target with categories.
        let tc = d.schema().position("y").unwrap();
        for (i, v) in [("a", 0usize), ("b", 1), ("a", 2), ("b", 3)] {
            d.set_value(v, tc, Value::Str(i.into())).unwrap();
        }
        let e = encode(&d, &EncodeOptions::classification());
        assert_eq!(e.n_classes, 2);
        assert_eq!(e.len(), 4);
        assert_eq!(e.targets[0], e.targets[2]);
    }

    #[test]
    fn exclude_removes_columns() {
        let opts = EncodeOptions::regression().with_exclude(["color"]);
        let e = encode(&toy(), &opts);
        assert_eq!(e.feature_names, vec!["x"]);
    }

    #[test]
    fn all_null_columns_are_skipped() {
        let mut d = toy();
        d.add_column(Attribute::feature("empty"));
        let e = encode(&d, &EncodeOptions::regression());
        assert!(!e.feature_names.contains(&"empty".to_string()));
    }

    #[test]
    fn encode_view_matches_encode_on_materialised_view() {
        use modis_data::RowMask;
        let d = toy();
        // Drop row 1, mask the "color" column.
        let mask = RowMask::from_pred(d.num_rows(), |r| r != 1);
        let view = DatasetView::new(&d, mask, vec![false, false, true, false]);
        let via_view = encode_view(&view, &EncodeOptions::regression());
        let via_copy = encode(&view.to_dataset(), &EncodeOptions::regression());
        assert_eq!(via_view.features, via_copy.features);
        assert_eq!(via_view.targets, via_copy.targets);
        assert_eq!(via_view.feature_names, via_copy.feature_names);
        // The masked column is gone from the feature set.
        assert_eq!(via_view.feature_names, vec!["x"]);
    }

    #[test]
    fn split_partitions_rows() {
        let e = encode(&toy(), &EncodeOptions::regression());
        let (tr, te) = e.split(0.67, 1);
        assert_eq!(tr.len() + te.len(), e.len());
        assert_eq!(tr.num_features(), e.num_features());
    }

    #[test]
    fn select_features_projects_columns() {
        let e = encode(&toy(), &EncodeOptions::regression());
        let sel = e.select_features(&[1]);
        assert_eq!(sel.feature_names, vec!["color"]);
        assert_eq!(sel.features[0].len(), 1);
    }
}
