//! Random forests (bagged CART trees).
//!
//! Used for the paper's RFhouse model (task T2) and the X-ray peak
//! classifier of the case study. Supports regression (mean of tree outputs)
//! and classification (majority vote, with per-class vote shares usable as
//! scores for AUC).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::tree::{Criterion, DecisionTree, TreeParams};

/// Random forest hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree parameters.
    pub tree: TreeParams,
    /// Number of features considered per split (`None` = sqrt of features).
    pub max_features: Option<usize>,
    /// Bootstrap sample fraction.
    pub sample_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams {
            n_trees: 30,
            tree: TreeParams::default(),
            max_features: None,
            sample_fraction: 1.0,
            seed: 42,
        }
    }
}

impl ForestParams {
    /// Classification preset (Gini splits).
    pub fn classification(n_trees: usize) -> Self {
        ForestParams {
            n_trees,
            tree: TreeParams {
                criterion: Criterion::Gini,
                ..TreeParams::default()
            },
            ..Default::default()
        }
    }

    /// Regression preset (MSE splits).
    pub fn regression(n_trees: usize) -> Self {
        ForestParams {
            n_trees,
            ..Default::default()
        }
    }
}

/// A fitted random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
    params: ForestParams,
    n_classes: usize,
}

impl RandomForest {
    /// Fits a forest; `n_classes > 0` switches vote-based prediction on.
    pub fn fit(x: &[Vec<f64>], y: &[f64], n_classes: usize, params: ForestParams) -> RandomForest {
        let n = x.len();
        let n_features = x.first().map(|r| r.len()).unwrap_or(0);
        let max_features = params
            .max_features
            .or_else(|| Some(((n_features as f64).sqrt().ceil() as usize).max(1)));
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut trees = Vec::with_capacity(params.n_trees);
        for t in 0..params.n_trees {
            let sample_size = ((n as f64) * params.sample_fraction).round() as usize;
            let sample_size = sample_size.clamp(1.min(n), n.max(1)).min(n);
            let (bx, by): (Vec<Vec<f64>>, Vec<f64>) = if n == 0 {
                (Vec::new(), Vec::new())
            } else {
                (0..sample_size)
                    .map(|_| {
                        let i = rng.gen_range(0..n);
                        (x[i].clone(), y[i])
                    })
                    .unzip()
            };
            let tree = DecisionTree::fit_with_features(
                &bx,
                &by,
                params.tree,
                max_features,
                params.seed.wrapping_add(t as u64 * 7919),
            );
            trees.push(tree);
        }
        RandomForest {
            trees,
            params,
            n_classes,
        }
    }

    /// Raw per-tree mean prediction (regression) for one sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        if self.trees.is_empty() {
            return 0.0;
        }
        if self.n_classes > 0 {
            let scores = self.predict_scores_one(row);
            scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .map(|(c, _)| c as f64)
                .unwrap_or(0.0)
        } else {
            self.trees.iter().map(|t| t.predict_one(row)).sum::<f64>() / self.trees.len() as f64
        }
    }

    /// Per-class vote shares for one sample (classification only).
    pub fn predict_scores_one(&self, row: &[f64]) -> Vec<f64> {
        let k = self.n_classes.max(1);
        let mut votes = vec![0.0; k];
        for t in &self.trees {
            let c = t.predict_one(row).round() as i64;
            let c = c.clamp(0, (k - 1) as i64) as usize;
            votes[c] += 1.0;
        }
        let total: f64 = votes.iter().sum();
        if total > 0.0 {
            for v in &mut votes {
                *v /= total;
            }
        }
        votes
    }

    /// Batch prediction.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Batch per-class scores.
    pub fn predict_scores(&self, x: &[Vec<f64>]) -> Vec<Vec<f64>> {
        x.iter().map(|r| self.predict_scores_one(r)).collect()
    }

    /// Average (over trees) impurity-based feature importance, normalised to
    /// sum to 1 when any split happened.
    pub fn feature_importance(&self) -> Vec<f64> {
        let n_features = self.trees.first().map(|t| t.n_features()).unwrap_or(0);
        let mut imp = vec![0.0; n_features];
        for t in &self.trees {
            for (i, v) in t.feature_importance().iter().enumerate() {
                if i < imp.len() {
                    imp[i] += v;
                }
            }
        }
        let total: f64 = imp.iter().sum();
        if total > 0.0 {
            for v in &mut imp {
                *v /= total;
            }
        }
        imp
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// Whether the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }

    /// Parameters used at fit time.
    pub fn params(&self) -> &ForestParams {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, r2};

    fn make_regression(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64 / n as f64, ((i * 7) % 13) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 3.0 * r[0] + 0.1 * r[1]).collect();
        (x, y)
    }

    fn make_classification(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64, ((i * 3) % 7) as f64])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] >= 5.0 { 1.0 } else { 0.0 })
            .collect();
        (x, y)
    }

    #[test]
    fn regression_forest_fits_linear_signal() {
        let (x, y) = make_regression(120);
        let rf = RandomForest::fit(&x, &y, 0, ForestParams::regression(20));
        let pred = rf.predict(&x);
        assert!(r2(&y, &pred) > 0.8, "r2 = {}", r2(&y, &pred));
    }

    #[test]
    fn classification_forest_recovers_threshold_rule() {
        let (x, y) = make_classification(100);
        let rf = RandomForest::fit(&x, &y, 2, ForestParams::classification(15));
        let pred = rf.predict(&x);
        assert!(accuracy(&y, &pred) > 0.95);
    }

    #[test]
    fn scores_sum_to_one() {
        let (x, y) = make_classification(60);
        let rf = RandomForest::fit(&x, &y, 2, ForestParams::classification(9));
        let s = rf.predict_scores_one(&x[0]);
        assert_eq!(s.len(), 2);
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn forest_is_deterministic_given_seed() {
        let (x, y) = make_regression(50);
        let a = RandomForest::fit(&x, &y, 0, ForestParams::regression(5));
        let b = RandomForest::fit(&x, &y, 0, ForestParams::regression(5));
        assert_eq!(a.predict(&x), b.predict(&x));
    }

    #[test]
    fn feature_importance_normalised() {
        let (x, y) = make_regression(80);
        let rf = RandomForest::fit(&x, &y, 0, ForestParams::regression(10));
        let imp = rf.feature_importance();
        assert_eq!(imp.len(), 2);
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1]);
    }

    #[test]
    fn empty_training_data_is_safe() {
        let rf = RandomForest::fit(&[], &[], 0, ForestParams::regression(3));
        assert_eq!(rf.predict_one(&[1.0]), 0.0);
        assert!(!rf.is_empty());
    }
}
