//! Multi-dimensional k-means clustering.
//!
//! Used by the scalability experiments (Exp-3 / Fig. 14): the universal table
//! and the T5 graph edges are clustered with k-means to control `|adom|`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster assignment per point.
    pub assignment: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Total within-cluster sum of squares.
    pub inertia: f64,
}

fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Runs Lloyd's algorithm with k-means++ style seeding (deterministic given
/// `seed`).
pub fn kmeans(points: &[Vec<f64>], k: usize, iterations: usize, seed: u64) -> KMeansResult {
    if points.is_empty() || k == 0 {
        return KMeansResult {
            assignment: Vec::new(),
            centroids: Vec::new(),
            inertia: 0.0,
        };
    }
    let k = k.min(points.len());
    let mut rng = StdRng::seed_from_u64(seed);

    // k-means++ initialisation.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..points.len())].clone());
    while centroids.len() < k {
        let dists: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| squared_distance(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = dists.iter().sum();
        if total <= 1e-12 {
            centroids.push(points[rng.gen_range(0..points.len())].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = 0;
        for (i, d) in dists.iter().enumerate() {
            target -= d;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }

    let dim = points[0].len();
    let mut assignment = vec![0usize; points.len()];
    for _ in 0..iterations {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, ctr) in centroids.iter().enumerate() {
                let d = squared_distance(p, ctr);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0; dim]; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for j in 0..dim {
                sums[assignment[i]][j] += p[j];
            }
        }
        for c in 0..centroids.len() {
            if counts[c] > 0 {
                for j in 0..dim {
                    centroids[c][j] = sums[c][j] / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, p)| squared_distance(p, &centroids[assignment[i]]))
        .sum();
    KMeansResult {
        assignment,
        centroids,
        inertia,
    }
}

/// Picks a number of clusters by the "elbow" heuristic: the smallest `k` in
/// `[min_k, max_k]` whose relative inertia improvement over `k − 1` drops
/// below `threshold`.
pub fn select_k_elbow(
    points: &[Vec<f64>],
    min_k: usize,
    max_k: usize,
    threshold: f64,
    seed: u64,
) -> usize {
    let min_k = min_k.max(1);
    let max_k = max_k.max(min_k);
    let baseline = kmeans(points, min_k, 20, seed).inertia;
    if baseline < 1e-12 {
        return min_k;
    }
    let mut prev = baseline;
    for k in (min_k + 1)..=max_k {
        let cur = kmeans(points, k, 20, seed).inertia;
        // Improvement is measured against the baseline inertia so that tiny
        // refinements of an already-good clustering do not inflate k.
        let improvement = (prev - cur) / baseline;
        if improvement < threshold {
            return k - 1;
        }
        prev = cur;
    }
    max_k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + (i % 5) as f64 * 0.01, 0.0]);
            pts.push(vec![10.0 + (i % 5) as f64 * 0.01, 10.0]);
        }
        pts
    }

    #[test]
    fn kmeans_separates_blobs() {
        let pts = blobs();
        let res = kmeans(&pts, 2, 50, 1);
        assert_eq!(res.centroids.len(), 2);
        // Points from the same blob share a cluster.
        assert_eq!(res.assignment[0], res.assignment[2]);
        assert_eq!(res.assignment[1], res.assignment[3]);
        assert_ne!(res.assignment[0], res.assignment[1]);
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn kmeans_empty_and_zero_k() {
        let res = kmeans(&[], 3, 10, 1);
        assert!(res.assignment.is_empty());
        let res = kmeans(&blobs(), 0, 10, 1);
        assert!(res.centroids.is_empty());
    }

    #[test]
    fn kmeans_k_capped_at_points() {
        let pts = vec![vec![1.0], vec![2.0]];
        let res = kmeans(&pts, 10, 10, 3);
        assert!(res.centroids.len() <= 2);
    }

    #[test]
    fn elbow_finds_two_clusters() {
        let pts = blobs();
        let k = select_k_elbow(&pts, 1, 6, 0.3, 1);
        assert!((2..=3).contains(&k), "k = {k}");
    }

    #[test]
    fn kmeans_deterministic_for_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 2, 30, 9);
        let b = kmeans(&pts, 2, 30, 9);
        assert_eq!(a.assignment, b.assignment);
    }
}
