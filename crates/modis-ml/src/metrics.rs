//! Model performance metrics (Table 3 of the paper).
//!
//! Regression: MSE, MAE, RMSE, R². Classification: accuracy, precision,
//! recall, F1 (macro-averaged), AUC (binary, one-vs-rest averaged otherwise).
//! Ranking (task T5): Precision@k, Recall@k, NDCG@k.

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    mse(y_true, y_pred).sqrt()
}

/// Coefficient of determination R².
///
/// Returns 0 for an empty or constant target.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return 0.0;
    }
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred.iter())
        .map(|(t, p)| (t - p).powi(2))
        .sum();
    1.0 - ss_res / ss_tot
}

/// Classification accuracy over integer-valued class labels.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    let correct = y_true
        .iter()
        .zip(y_pred.iter())
        .filter(|(t, p)| (t.round() - p.round()).abs() < 0.5)
        .count();
    correct as f64 / y_true.len() as f64
}

/// Per-class confusion counts.
fn confusion(y_true: &[f64], y_pred: &[f64], class: i64) -> (usize, usize, usize) {
    let mut tp = 0;
    let mut fp = 0;
    let mut fne = 0;
    for (t, p) in y_true.iter().zip(y_pred.iter()) {
        let t = t.round() as i64;
        let p = p.round() as i64;
        match (t == class, p == class) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fne += 1,
            _ => {}
        }
    }
    (tp, fp, fne)
}

/// Distinct rounded class labels present in the ground truth.
fn classes(y_true: &[f64]) -> Vec<i64> {
    let mut cs: Vec<i64> = y_true.iter().map(|v| v.round() as i64).collect();
    cs.sort_unstable();
    cs.dedup();
    cs
}

/// Macro-averaged precision.
pub fn precision(y_true: &[f64], y_pred: &[f64]) -> f64 {
    let cs = classes(y_true);
    if cs.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for c in &cs {
        let (tp, fp, _) = confusion(y_true, y_pred, *c);
        sum += if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
    }
    sum / cs.len() as f64
}

/// Macro-averaged recall.
pub fn recall(y_true: &[f64], y_pred: &[f64]) -> f64 {
    let cs = classes(y_true);
    if cs.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for c in &cs {
        let (tp, _, fne) = confusion(y_true, y_pred, *c);
        sum += if tp + fne == 0 {
            0.0
        } else {
            tp as f64 / (tp + fne) as f64
        };
    }
    sum / cs.len() as f64
}

/// Macro-averaged F1 score.
pub fn f1_score(y_true: &[f64], y_pred: &[f64]) -> f64 {
    let cs = classes(y_true);
    if cs.is_empty() {
        return 0.0;
    }
    let mut sum = 0.0;
    for c in &cs {
        let (tp, fp, fne) = confusion(y_true, y_pred, *c);
        let p = if tp + fp == 0 {
            0.0
        } else {
            tp as f64 / (tp + fp) as f64
        };
        let r = if tp + fne == 0 {
            0.0
        } else {
            tp as f64 / (tp + fne) as f64
        };
        sum += if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        };
    }
    sum / cs.len() as f64
}

/// Area under the ROC curve for binary labels (`y_true` ∈ {0,1}) given
/// continuous scores. Uses the rank-sum (Mann–Whitney) formulation.
pub fn auc_binary(y_true: &[f64], scores: &[f64]) -> f64 {
    let pos: Vec<f64> = y_true
        .iter()
        .zip(scores.iter())
        .filter(|(t, _)| t.round() as i64 == 1)
        .map(|(_, s)| *s)
        .collect();
    let neg: Vec<f64> = y_true
        .iter()
        .zip(scores.iter())
        .filter(|(t, _)| t.round() as i64 != 1)
        .map(|(_, s)| *s)
        .collect();
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0;
    for p in &pos {
        for n in &neg {
            if p > n {
                wins += 1.0;
            } else if (p - n).abs() < 1e-12 {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() * neg.len()) as f64
}

/// One-vs-rest macro AUC for multi-class scores.
///
/// `scores[i][c]` is the score of class `c` for sample `i`.
pub fn auc_ovr(y_true: &[f64], scores: &[Vec<f64>]) -> f64 {
    let cs = classes(y_true);
    if cs.is_empty() || scores.is_empty() {
        return 0.5;
    }
    let n_classes = scores[0].len();
    let mut sum = 0.0;
    let mut counted = 0usize;
    for &c in &cs {
        if (c as usize) >= n_classes || c < 0 {
            continue;
        }
        let bin: Vec<f64> = y_true
            .iter()
            .map(|t| if t.round() as i64 == c { 1.0 } else { 0.0 })
            .collect();
        let sc: Vec<f64> = scores.iter().map(|s| s[c as usize]).collect();
        sum += auc_binary(&bin, &sc);
        counted += 1;
    }
    if counted == 0 {
        0.5
    } else {
        sum / counted as f64
    }
}

/// Precision@k for a ranked list of predicted item ids against a relevant set.
pub fn precision_at_k(ranked: &[usize], relevant: &[usize], k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let k = k.min(ranked.len());
    if k == 0 {
        return 0.0;
    }
    let hits = ranked[..k].iter().filter(|i| relevant.contains(i)).count();
    hits as f64 / k as f64
}

/// Recall@k.
pub fn recall_at_k(ranked: &[usize], relevant: &[usize], k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let k = k.min(ranked.len());
    let hits = ranked[..k].iter().filter(|i| relevant.contains(i)).count();
    hits as f64 / relevant.len() as f64
}

/// Normalised discounted cumulative gain at k (binary relevance).
pub fn ndcg_at_k(ranked: &[usize], relevant: &[usize], k: usize) -> f64 {
    if relevant.is_empty() || k == 0 {
        return 0.0;
    }
    let k = k.min(ranked.len());
    let mut dcg = 0.0;
    for (pos, item) in ranked[..k].iter().enumerate() {
        if relevant.contains(item) {
            dcg += 1.0 / ((pos as f64 + 2.0).log2());
        }
    }
    let ideal_hits = relevant.len().min(k);
    let idcg: f64 = (0..ideal_hits)
        .map(|pos| 1.0 / ((pos as f64 + 2.0).log2()))
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_metrics_perfect_prediction() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y), 0.0);
        assert_eq!(mae(&y, &y), 0.0);
        assert_eq!(rmse(&y, &y), 0.0);
        assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn regression_metrics_known_values() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!((mse(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        assert!((mae(&t, &p) - 2.0 / 3.0).abs() < 1e-12);
        assert!(r2(&t, &p) <= 0.0 + 1e-12);
    }

    #[test]
    fn r2_constant_target_is_zero() {
        assert_eq!(r2(&[5.0, 5.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn classification_metrics_binary() {
        let t = [0.0, 0.0, 1.0, 1.0];
        let p = [0.0, 1.0, 1.0, 1.0];
        assert!((accuracy(&t, &p) - 0.75).abs() < 1e-12);
        // class 0: tp=1 fp=0 fn=1 → P=1, R=0.5; class 1: tp=2 fp=1 fn=0 → P=2/3, R=1
        assert!((precision(&t, &p) - (1.0 + 2.0 / 3.0) / 2.0).abs() < 1e-12);
        assert!((recall(&t, &p) - 0.75).abs() < 1e-12);
        assert!(f1_score(&t, &p) > 0.7 && f1_score(&t, &p) < 0.9);
    }

    #[test]
    fn auc_perfect_and_random() {
        let t = [0.0, 0.0, 1.0, 1.0];
        assert!((auc_binary(&t, &[0.1, 0.2, 0.8, 0.9]) - 1.0).abs() < 1e-12);
        assert!((auc_binary(&t, &[0.9, 0.8, 0.2, 0.1]) - 0.0).abs() < 1e-12);
        assert_eq!(auc_binary(&[1.0, 1.0], &[0.5, 0.5]), 0.5);
    }

    #[test]
    fn auc_ovr_multiclass() {
        let t = [0.0, 1.0, 2.0];
        let scores = vec![
            vec![0.9, 0.05, 0.05],
            vec![0.1, 0.8, 0.1],
            vec![0.1, 0.1, 0.8],
        ];
        assert!((auc_ovr(&t, &scores) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_metrics() {
        let ranked = [3, 1, 7, 2, 9];
        let relevant = [1, 2, 5];
        assert!((precision_at_k(&ranked, &relevant, 2) - 0.5).abs() < 1e-12);
        assert!((recall_at_k(&ranked, &relevant, 5) - 2.0 / 3.0).abs() < 1e-12);
        let n = ndcg_at_k(&ranked, &relevant, 5);
        assert!(n > 0.0 && n < 1.0);
        // Perfect ranking has NDCG 1.
        assert!((ndcg_at_k(&[1, 2, 5], &relevant, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_metrics_edge_cases() {
        assert_eq!(precision_at_k(&[], &[1], 3), 0.0);
        assert_eq!(recall_at_k(&[1], &[], 3), 0.0);
        assert_eq!(ndcg_at_k(&[1], &[], 3), 0.0);
        assert_eq!(precision_at_k(&[1, 2], &[1], 0), 0.0);
    }

    #[test]
    fn empty_inputs_are_safe() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
        assert_eq!(f1_score(&[], &[]), 0.0);
    }
}
