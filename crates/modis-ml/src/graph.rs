//! Bipartite interaction graphs and a LightGCN-style link-prediction model.
//!
//! Task T5 of the paper is a link-regression/recommendation task: a bipartite
//! user–product graph is given, and a LightGCN model predicts the top-k
//! missing edges. The paper's augment/reduct operators become edge insertions
//! and deletions. This module provides:
//!
//! * [`BipartiteGraph`] — the graph artefact manipulated by the transducer;
//! * [`LightGcn`] — an embedding-propagation matrix-factorisation model
//!   (LightGCN simplifies GCNs to weighted-sum neighbourhood aggregation
//!   without feature transforms, which is exactly what is implemented here),
//!   trained with a BPR-style ranking objective;
//! * ranking evaluation helpers producing P@k / R@k / NDCG@k per user.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::metrics::{ndcg_at_k, precision_at_k, recall_at_k};

/// An undirected bipartite interaction graph between `n_users` and
/// `n_items`, with optional per-edge feature vectors.
#[derive(Debug, Clone, Default)]
pub struct BipartiteGraph {
    /// Number of user nodes.
    pub n_users: usize,
    /// Number of item nodes.
    pub n_items: usize,
    /// Interaction edges `(user, item)`.
    pub edges: Vec<(usize, usize)>,
    /// Optional per-edge feature vectors, aligned with `edges`.
    pub edge_features: Vec<Vec<f64>>,
}

impl BipartiteGraph {
    /// Creates an empty graph with the given node counts.
    pub fn new(n_users: usize, n_items: usize) -> Self {
        BipartiteGraph {
            n_users,
            n_items,
            edges: Vec::new(),
            edge_features: Vec::new(),
        }
    }

    /// Adds an edge with an optional feature vector. Duplicate edges are
    /// ignored.
    pub fn add_edge(&mut self, user: usize, item: usize, features: Vec<f64>) -> bool {
        if user >= self.n_users || item >= self.n_items {
            return false;
        }
        if self.edges.iter().any(|&(u, i)| u == user && i == item) {
            return false;
        }
        self.edges.push((user, item));
        self.edge_features.push(features);
        true
    }

    /// Removes an edge; returns whether it existed.
    pub fn remove_edge(&mut self, user: usize, item: usize) -> bool {
        if let Some(pos) = self.edges.iter().position(|&(u, i)| u == user && i == item) {
            self.edges.remove(pos);
            self.edge_features.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Items interacted with by a user.
    pub fn items_of(&self, user: usize) -> BTreeSet<usize> {
        self.edges
            .iter()
            .filter(|&&(u, _)| u == user)
            .map(|&(_, i)| i)
            .collect()
    }

    /// Users interacting with an item.
    pub fn users_of(&self, item: usize) -> BTreeSet<usize> {
        self.edges
            .iter()
            .filter(|&&(_, i)| i == item)
            .map(|&(u, _)| u)
            .collect()
    }

    /// Retains only the edges satisfying a predicate over `(user, item,
    /// features)`. Returns the number of removed edges.
    pub fn retain_edges<F: Fn(usize, usize, &[f64]) -> bool>(&mut self, keep: F) -> usize {
        let before = self.edges.len();
        let mut new_edges = Vec::new();
        let mut new_feats = Vec::new();
        for (idx, &(u, i)) in self.edges.iter().enumerate() {
            if keep(u, i, &self.edge_features[idx]) {
                new_edges.push((u, i));
                new_feats.push(self.edge_features[idx].clone());
            }
        }
        self.edges = new_edges;
        self.edge_features = new_feats;
        before - self.edges.len()
    }

    /// Splits the edges into (train, test) graphs deterministically.
    pub fn split_edges(&self, train_ratio: f64, seed: u64) -> (BipartiteGraph, BipartiteGraph) {
        let n = self.edges.len();
        let mut idx: Vec<usize> = (0..n).collect();
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(13);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            idx.swap(i, j);
        }
        let cut = ((n as f64) * train_ratio).round() as usize;
        let cut = cut.min(n);
        let mut train = BipartiteGraph::new(self.n_users, self.n_items);
        let mut test = BipartiteGraph::new(self.n_users, self.n_items);
        for (pos, &e) in idx.iter().enumerate() {
            let (u, i) = self.edges[e];
            let f = self.edge_features[e].clone();
            if pos < cut {
                train.add_edge(u, i, f);
            } else {
                test.add_edge(u, i, f);
            }
        }
        (train, test)
    }

    /// Reported graph size `(edges, feature-dimensions)` as in Table 5.
    pub fn reported_size(&self) -> (usize, usize) {
        let dim = self
            .edge_features
            .iter()
            .map(|f| f.len())
            .max()
            .unwrap_or(0);
        (self.num_edges(), dim)
    }
}

/// Hyper-parameters of the LightGCN-style model.
#[derive(Debug, Clone, Copy)]
pub struct LightGcnParams {
    /// Embedding dimensionality.
    pub dim: usize,
    /// Number of propagation layers.
    pub layers: usize,
    /// Number of BPR training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation on embeddings.
    pub reg: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LightGcnParams {
    fn default() -> Self {
        LightGcnParams {
            dim: 16,
            layers: 2,
            epochs: 60,
            learning_rate: 0.05,
            reg: 1e-4,
            seed: 7,
        }
    }
}

/// A trained LightGCN-style recommender.
#[derive(Debug, Clone)]
pub struct LightGcn {
    user_emb: Vec<Vec<f64>>,
    item_emb: Vec<Vec<f64>>,
    params: LightGcnParams,
}

impl LightGcn {
    /// Trains on the given interaction graph.
    pub fn fit(graph: &BipartiteGraph, params: LightGcnParams) -> LightGcn {
        let mut rng = StdRng::seed_from_u64(params.seed);
        let init = |rng: &mut StdRng| -> Vec<f64> {
            (0..params.dim).map(|_| rng.gen_range(-0.1..0.1)).collect()
        };
        let mut user_emb: Vec<Vec<f64>> = (0..graph.n_users).map(|_| init(&mut rng)).collect();
        let mut item_emb: Vec<Vec<f64>> = (0..graph.n_items).map(|_| init(&mut rng)).collect();

        if graph.edges.is_empty() || graph.n_items < 2 {
            return LightGcn {
                user_emb,
                item_emb,
                params,
            };
        }

        // Precompute adjacency for propagation and negative sampling.
        let mut user_items: Vec<Vec<usize>> = vec![Vec::new(); graph.n_users];
        let mut item_users: Vec<Vec<usize>> = vec![Vec::new(); graph.n_items];
        for &(u, i) in &graph.edges {
            user_items[u].push(i);
            item_users[i].push(u);
        }

        for _epoch in 0..params.epochs {
            // Light propagation: average the base embeddings with
            // symmetric-normalised neighbour aggregates, `layers` times.
            let (prop_user, prop_item) = propagate(
                &user_emb,
                &item_emb,
                &user_items,
                &item_users,
                params.layers,
            );

            // BPR updates on the *base* embeddings using propagated scores'
            // gradient approximation (gradients flow to base embeddings as if
            // layer-0; LightGCN's final embedding is the layer average, and
            // using it directly for the gradient keeps the implementation
            // compact while preserving ranking behaviour).
            for &(u, i_pos) in &graph.edges {
                // Sample a negative item not interacted with by u.
                let mut i_neg = rng.gen_range(0..graph.n_items);
                let mut guard = 0;
                while user_items[u].contains(&i_neg) && guard < 20 {
                    i_neg = rng.gen_range(0..graph.n_items);
                    guard += 1;
                }
                if user_items[u].contains(&i_neg) {
                    continue;
                }
                let score_pos = dot(&prop_user[u], &prop_item[i_pos]);
                let score_neg = dot(&prop_user[u], &prop_item[i_neg]);
                let diff = score_pos - score_neg;
                let sig = 1.0 / (1.0 + diff.exp()); // d/dx of -ln σ(x) = -σ(-x)
                for d in 0..params.dim {
                    let gu = sig * (prop_item[i_pos][d] - prop_item[i_neg][d])
                        - params.reg * user_emb[u][d];
                    let gp = sig * prop_user[u][d] - params.reg * item_emb[i_pos][d];
                    let gn = -sig * prop_user[u][d] - params.reg * item_emb[i_neg][d];
                    user_emb[u][d] += params.learning_rate * gu;
                    item_emb[i_pos][d] += params.learning_rate * gp;
                    item_emb[i_neg][d] += params.learning_rate * gn;
                }
            }
        }

        // Store the propagated embeddings for inference.
        let mut user_items2: Vec<Vec<usize>> = vec![Vec::new(); graph.n_users];
        let mut item_users2: Vec<Vec<usize>> = vec![Vec::new(); graph.n_items];
        for &(u, i) in &graph.edges {
            user_items2[u].push(i);
            item_users2[i].push(u);
        }
        let (pu, pi) = propagate(
            &user_emb,
            &item_emb,
            &user_items2,
            &item_users2,
            params.layers,
        );
        LightGcn {
            user_emb: pu,
            item_emb: pi,
            params,
        }
    }

    /// Interaction score for a (user, item) pair.
    pub fn score(&self, user: usize, item: usize) -> f64 {
        match (self.user_emb.get(user), self.item_emb.get(item)) {
            (Some(u), Some(i)) => dot(u, i),
            _ => 0.0,
        }
    }

    /// Items ranked by score for a user, excluding the provided known items.
    pub fn rank_items(&self, user: usize, exclude: &BTreeSet<usize>) -> Vec<usize> {
        let mut scored: Vec<(usize, f64)> = (0..self.item_emb.len())
            .filter(|i| !exclude.contains(i))
            .map(|i| (i, self.score(user, i)))
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.into_iter().map(|(i, _)| i).collect()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.params.dim
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// LightGCN propagation: layer-wise neighbour averaging with symmetric
/// normalisation, returning the mean over layers (including layer 0).
fn propagate(
    user_emb: &[Vec<f64>],
    item_emb: &[Vec<f64>],
    user_items: &[Vec<usize>],
    item_users: &[Vec<usize>],
    layers: usize,
) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
    let dim = user_emb.first().map(|e| e.len()).unwrap_or(0);
    let mut acc_u = user_emb.to_vec();
    let mut acc_i = item_emb.to_vec();
    let mut cur_u = user_emb.to_vec();
    let mut cur_i = item_emb.to_vec();
    for _ in 0..layers {
        let mut next_u = vec![vec![0.0; dim]; user_emb.len()];
        let mut next_i = vec![vec![0.0; dim]; item_emb.len()];
        for (u, items) in user_items.iter().enumerate() {
            for &i in items {
                let norm = 1.0
                    / ((items.len().max(1) as f64).sqrt()
                        * (item_users[i].len().max(1) as f64).sqrt());
                for d in 0..dim {
                    next_u[u][d] += norm * cur_i[i][d];
                    next_i[i][d] += norm * cur_u[u][d];
                }
            }
        }
        for (a, n) in acc_u.iter_mut().zip(next_u.iter()) {
            for d in 0..dim {
                a[d] += n[d];
            }
        }
        for (a, n) in acc_i.iter_mut().zip(next_i.iter()) {
            for d in 0..dim {
                a[d] += n[d];
            }
        }
        cur_u = next_u;
        cur_i = next_i;
    }
    let scale = 1.0 / (layers as f64 + 1.0);
    for e in acc_u.iter_mut().chain(acc_i.iter_mut()) {
        for d in e.iter_mut() {
            *d *= scale;
        }
    }
    (acc_u, acc_i)
}

/// Ranking evaluation of a trained model against held-out test edges.
///
/// Returns `(precision@k, recall@k, ndcg@k)` averaged over users that have at
/// least one test interaction.
pub fn evaluate_ranking(
    model: &LightGcn,
    train: &BipartiteGraph,
    test: &BipartiteGraph,
    k: usize,
) -> (f64, f64, f64) {
    let mut p_sum = 0.0;
    let mut r_sum = 0.0;
    let mut n_sum = 0.0;
    let mut users = 0usize;
    for u in 0..test.n_users {
        let relevant: Vec<usize> = test.items_of(u).into_iter().collect();
        if relevant.is_empty() {
            continue;
        }
        let known = train.items_of(u);
        let ranked = model.rank_items(u, &known);
        p_sum += precision_at_k(&ranked, &relevant, k);
        r_sum += recall_at_k(&ranked, &relevant, k);
        n_sum += ndcg_at_k(&ranked, &relevant, k);
        users += 1;
    }
    if users == 0 {
        (0.0, 0.0, 0.0)
    } else {
        (
            p_sum / users as f64,
            r_sum / users as f64,
            n_sum / users as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint user/item communities: users 0..5 like items 0..5, users
    /// 5..10 like items 5..10.
    fn block_graph() -> BipartiteGraph {
        let mut g = BipartiteGraph::new(10, 10);
        for u in 0..10 {
            let base = if u < 5 { 0 } else { 5 };
            for j in 0..4 {
                g.add_edge(u, base + (u + j) % 5, vec![u as f64, j as f64]);
            }
        }
        g
    }

    #[test]
    fn graph_edge_management() {
        let mut g = BipartiteGraph::new(3, 3);
        assert!(g.add_edge(0, 1, vec![]));
        assert!(!g.add_edge(0, 1, vec![]));
        assert!(!g.add_edge(5, 1, vec![]));
        assert_eq!(g.num_edges(), 1);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn items_and_users_of() {
        let g = block_graph();
        let items = g.items_of(0);
        assert_eq!(items.len(), 4);
        assert!(items.iter().all(|&i| i < 5));
        assert!(!g.users_of(0).is_empty());
    }

    #[test]
    fn retain_edges_filters() {
        let mut g = block_graph();
        let before = g.num_edges();
        let removed = g.retain_edges(|u, _, _| u < 5);
        assert_eq!(removed, before - g.num_edges());
        assert!(g.edges.iter().all(|&(u, _)| u < 5));
    }

    #[test]
    fn split_edges_partitions() {
        let g = block_graph();
        let (tr, te) = g.split_edges(0.75, 3);
        assert_eq!(tr.num_edges() + te.num_edges(), g.num_edges());
        assert_eq!(tr.n_users, g.n_users);
    }

    #[test]
    fn lightgcn_learns_block_structure() {
        let g = block_graph();
        let (train, test) = g.split_edges(0.8, 11);
        let model = LightGcn::fit(
            &train,
            LightGcnParams {
                epochs: 80,
                ..Default::default()
            },
        );
        let (p, r, n) = evaluate_ranking(&model, &train, &test, 5);
        // Within-block items should be recommended: better than random (0.1).
        assert!(p > 0.1, "precision@5 = {p}");
        assert!(r >= 0.0 && n >= 0.0);
        // Score of an in-block pair should generally exceed out-of-block.
        let in_block = model.score(0, 1);
        let out_block = model.score(0, 7);
        assert!(in_block > out_block, "{in_block} vs {out_block}");
    }

    #[test]
    fn empty_graph_is_safe() {
        let g = BipartiteGraph::new(0, 0);
        let model = LightGcn::fit(&g, LightGcnParams::default());
        assert_eq!(model.score(0, 0), 0.0);
        let (p, r, n) = evaluate_ranking(&model, &g, &g, 5);
        assert_eq!((p, r, n), (0.0, 0.0, 0.0));
    }

    #[test]
    fn reported_size_counts_edges_and_feature_dim() {
        let g = block_graph();
        let (edges, dim) = g.reported_size();
        assert_eq!(edges, g.num_edges());
        assert_eq!(dim, 2);
    }
}
