//! CART decision trees (regression and classification).
//!
//! The substrate for the paper's downstream models (random forest, gradient
//! boosting, LightGBM-style classifier) and the MO-GBM estimator. Trees use
//! variance reduction (regression) or Gini impurity (classification) and
//! split on thresholds drawn from sorted unique feature values.

/// Split criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// Variance reduction (regression).
    Mse,
    /// Gini impurity (classification).
    Gini,
}

/// Hyper-parameters for a single tree.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum number of samples required to split a node.
    pub min_samples_split: usize,
    /// Minimum number of samples in a leaf.
    pub min_samples_leaf: usize,
    /// Number of candidate thresholds per feature (quantile-based); 0 means
    /// every midpoint between consecutive unique values.
    pub max_thresholds: usize,
    /// Split criterion.
    pub criterion: Criterion,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 6,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_thresholds: 16,
            criterion: Criterion::Mse,
        }
    }
}

/// A tree node, either an internal split or a leaf prediction.
#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted CART decision tree.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    root: Node,
    params: TreeParams,
    n_features: usize,
    feature_importance: Vec<f64>,
}

impl DecisionTree {
    /// Fits a tree on the full feature set.
    pub fn fit(x: &[Vec<f64>], y: &[f64], params: TreeParams) -> DecisionTree {
        Self::fit_with_features(x, y, params, None, 0)
    }

    /// Fits a tree considering only a random subset of `max_features`
    /// features at each split (used by random forests). `seed` makes the
    /// randomness deterministic.
    pub fn fit_with_features(
        x: &[Vec<f64>],
        y: &[f64],
        params: TreeParams,
        max_features: Option<usize>,
        seed: u64,
    ) -> DecisionTree {
        let n_features = x.first().map(|r| r.len()).unwrap_or(0);
        let indices: Vec<usize> = (0..x.len()).collect();
        let mut importance = vec![0.0; n_features];
        let mut rng_state = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(0xD1B54A32D192ED03);
        let root = if x.is_empty() {
            Node::Leaf { value: 0.0 }
        } else {
            build_node(
                x,
                y,
                &indices,
                &params,
                0,
                n_features,
                max_features,
                &mut rng_state,
                &mut importance,
            )
        };
        DecisionTree {
            root,
            params,
            n_features,
            feature_importance: importance,
        }
    }

    /// Predicts a single sample.
    pub fn predict_one(&self, row: &[f64]) -> f64 {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row.get(*feature).copied().unwrap_or(0.0);
                    node = if v <= *threshold { left } else { right };
                }
            }
        }
    }

    /// Predicts a batch of samples.
    pub fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }

    /// Number of features seen at fit time.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Total impurity decrease attributed to each feature (unnormalised).
    pub fn feature_importance(&self) -> &[f64] {
        &self.feature_importance
    }

    /// Depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn depth_of(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth_of(left).max(depth_of(right)),
            }
        }
        depth_of(&self.root)
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => count(left) + count(right),
            }
        }
        count(&self.root)
    }

    /// Tree parameters used at fit time.
    pub fn params(&self) -> &TreeParams {
        &self.params
    }
}

fn next_rand(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 16
}

/// Impurity of a set of target values for the given criterion.
fn impurity(y: &[f64], indices: &[usize], criterion: Criterion) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    match criterion {
        Criterion::Mse => {
            let mean = indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64;
            indices.iter().map(|&i| (y[i] - mean).powi(2)).sum::<f64>() / indices.len() as f64
        }
        Criterion::Gini => {
            use std::collections::HashMap;
            let mut counts: HashMap<i64, usize> = HashMap::new();
            for &i in indices {
                *counts.entry(y[i].round() as i64).or_insert(0) += 1;
            }
            let n = indices.len() as f64;
            1.0 - counts
                .values()
                .map(|&c| (c as f64 / n).powi(2))
                .sum::<f64>()
        }
    }
}

/// Leaf prediction: mean (regression) or majority class (classification).
fn leaf_value(y: &[f64], indices: &[usize], criterion: Criterion) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    match criterion {
        Criterion::Mse => indices.iter().map(|&i| y[i]).sum::<f64>() / indices.len() as f64,
        Criterion::Gini => {
            use std::collections::HashMap;
            let mut counts: HashMap<i64, usize> = HashMap::new();
            for &i in indices {
                *counts.entry(y[i].round() as i64).or_insert(0) += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(c, n)| (n, std::cmp::Reverse(c)))
                .map(|(c, _)| c as f64)
                .unwrap_or(0.0)
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    params: &TreeParams,
    depth: usize,
    n_features: usize,
    max_features: Option<usize>,
    rng_state: &mut u64,
    importance: &mut [f64],
) -> Node {
    let node_impurity = impurity(y, indices, params.criterion);
    if depth >= params.max_depth
        || indices.len() < params.min_samples_split
        || node_impurity < 1e-12
        || n_features == 0
    {
        return Node::Leaf {
            value: leaf_value(y, indices, params.criterion),
        };
    }

    // Choose candidate features.
    let mut features: Vec<usize> = (0..n_features).collect();
    if let Some(k) = max_features {
        let k = k.min(n_features).max(1);
        // Partial Fisher-Yates to pick k features.
        for i in 0..k {
            let j = i + (next_rand(rng_state) as usize % (n_features - i));
            features.swap(i, j);
        }
        features.truncate(k);
    }

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, weighted impurity)
    for &f in &features {
        let mut vals: Vec<f64> = indices.iter().map(|&i| x[i][f]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        let thresholds: Vec<f64> =
            if params.max_thresholds == 0 || vals.len() <= params.max_thresholds {
                vals.windows(2).map(|w| (w[0] + w[1]) / 2.0).collect()
            } else {
                (1..=params.max_thresholds)
                    .map(|i| {
                        let q = i as f64 / (params.max_thresholds as f64 + 1.0);
                        let idx = ((vals.len() - 1) as f64 * q).round() as usize;
                        vals[idx]
                    })
                    .collect()
            };
        for &t in &thresholds {
            let left: Vec<usize> = indices.iter().copied().filter(|&i| x[i][f] <= t).collect();
            let right: Vec<usize> = indices.iter().copied().filter(|&i| x[i][f] > t).collect();
            if left.len() < params.min_samples_leaf || right.len() < params.min_samples_leaf {
                continue;
            }
            let wl = left.len() as f64 / indices.len() as f64;
            let wr = 1.0 - wl;
            let score = wl * impurity(y, &left, params.criterion)
                + wr * impurity(y, &right, params.criterion);
            if best.map(|(_, _, s)| score < s).unwrap_or(true) {
                best = Some((f, t, score));
            }
        }
    }

    match best {
        Some((feature, threshold, score)) if score < node_impurity - 1e-12 => {
            importance[feature] += (node_impurity - score) * indices.len() as f64;
            let left_idx: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| x[i][feature] <= threshold)
                .collect();
            let right_idx: Vec<usize> = indices
                .iter()
                .copied()
                .filter(|&i| x[i][feature] > threshold)
                .collect();
            let left = build_node(
                x,
                y,
                &left_idx,
                params,
                depth + 1,
                n_features,
                max_features,
                rng_state,
                importance,
            );
            let right = build_node(
                x,
                y,
                &right_idx,
                params,
                depth + 1,
                n_features,
                max_features,
                rng_state,
                importance,
            );
            Node::Split {
                feature,
                threshold,
                left: Box::new(left),
                right: Box::new(right),
            }
        }
        _ => Node::Leaf {
            value: leaf_value(y, indices, params.criterion),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let y: Vec<f64> = (0..40).map(|i| if i < 20 { 1.0 } else { 5.0 }).collect();
        (x, y)
    }

    #[test]
    fn regression_tree_learns_step_function() {
        let (x, y) = step_data();
        let tree = DecisionTree::fit(&x, &y, TreeParams::default());
        assert!((tree.predict_one(&[5.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!((tree.predict_one(&[35.0, 0.0]) - 5.0).abs() < 1e-9);
        assert!(tree.depth() >= 1);
    }

    #[test]
    fn classification_tree_learns_parity_free_split() {
        let x: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..30).map(|i| if i < 15 { 0.0 } else { 1.0 }).collect();
        let params = TreeParams {
            criterion: Criterion::Gini,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, params);
        assert_eq!(tree.predict_one(&[3.0]), 0.0);
        assert_eq!(tree.predict_one(&[25.0]), 1.0);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![4.0, 4.0, 4.0];
        let tree = DecisionTree::fit(&x, &y, TreeParams::default());
        assert_eq!(tree.num_leaves(), 1);
        assert_eq!(tree.predict_one(&[100.0]), 4.0);
    }

    #[test]
    fn max_depth_zero_gives_single_leaf() {
        let (x, y) = step_data();
        let params = TreeParams {
            max_depth: 0,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, params);
        assert_eq!(tree.num_leaves(), 1);
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        assert!((tree.predict_one(&[0.0, 0.0]) - mean).abs() < 1e-9);
    }

    #[test]
    fn feature_importance_identifies_informative_feature() {
        let (x, y) = step_data();
        let tree = DecisionTree::fit(&x, &y, TreeParams::default());
        let imp = tree.feature_importance();
        assert!(imp[0] > imp[1]);
    }

    #[test]
    fn empty_input_predicts_zero() {
        let tree = DecisionTree::fit(&[], &[], TreeParams::default());
        assert_eq!(tree.predict_one(&[1.0]), 0.0);
        assert_eq!(tree.n_features(), 0);
    }

    #[test]
    fn min_samples_leaf_is_respected() {
        let (x, y) = step_data();
        let params = TreeParams {
            min_samples_leaf: 25,
            ..Default::default()
        };
        let tree = DecisionTree::fit(&x, &y, params);
        // No split can produce two leaves of >= 25 samples out of 40.
        assert_eq!(tree.num_leaves(), 1);
    }

    #[test]
    fn feature_subsampling_is_deterministic() {
        let (x, y) = step_data();
        let t1 = DecisionTree::fit_with_features(&x, &y, TreeParams::default(), Some(1), 7);
        let t2 = DecisionTree::fit_with_features(&x, &y, TreeParams::default(), Some(1), 7);
        assert_eq!(t1.predict(&x), t2.predict(&x));
    }
}
