//! # modis-ml
//!
//! From-scratch machine-learning substrate for the MODis reproduction.
//!
//! The paper evaluates MODis with scikit-learn / LightGBM / LightGCN models
//! and a multi-output gradient-boosting estimator; the Rust ML ecosystem does
//! not provide drop-in equivalents, so this crate implements the required
//! models directly:
//!
//! * [`encoding`] — [`Dataset`](modis_data::Dataset) → numeric design matrix;
//! * [`tree`] / [`forest`] — CART trees and random forests (RFhouse, case
//!   studies);
//! * [`gbm`] — gradient-boosting regressor/classifier and the multi-output
//!   GBM estimator (GBmovie, LGCmental, MO-GBM);
//! * [`linear`] — ridge/OLS and logistic regression (LRavocado, H2O-style
//!   baseline);
//! * [`kmeans`](mod@kmeans) — multi-dimensional k-means (universal-table compression,
//!   scalability sweeps);
//! * [`feature`] — Fisher score, mutual information, top-k selection
//!   (`p_Fsc`, `p_MI`, SkSFM baseline);
//! * [`graph`] — bipartite graphs and a LightGCN-style recommender (task T5);
//! * [`metrics`] — every performance measure of Table 3.

#![warn(missing_docs)]

pub mod encoding;
pub mod feature;
pub mod forest;
pub mod gbm;
pub mod graph;
pub mod kmeans;
pub mod linear;
pub mod metrics;
pub mod tree;

pub use encoding::{encode, EncodeOptions, Encoded, TaskKind};
pub use feature::{
    fisher_score, fisher_scores, mutual_information, mutual_information_scores, top_k_features,
};
pub use forest::{ForestParams, RandomForest};
pub use gbm::{GbmParams, GradientBoostingClassifier, GradientBoostingRegressor, MultiOutputGbm};
pub use graph::{evaluate_ranking, BipartiteGraph, LightGcn, LightGcnParams};
pub use kmeans::{kmeans, select_k_elbow, KMeansResult};
pub use linear::{LogisticRegression, RidgeRegression};
pub use tree::{Criterion, DecisionTree, TreeParams};
