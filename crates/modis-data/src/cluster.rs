//! Active-domain clustering and literal derivation.
//!
//! The experiments (§6, "Construction of D_U and Operators") apply k-means
//! clustering over the active domain of each attribute (maximum k = 30) and
//! derive one equality/range literal per cluster. This bounds the number of
//! reduct operators per attribute regardless of `|adom(A)|`.

use std::collections::BTreeMap;

use crate::dataset::Dataset;
use crate::literal::Literal;
use crate::value::Value;

/// One derived cluster of an attribute's active domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainCluster {
    /// Attribute the cluster belongs to.
    pub attribute: String,
    /// Cluster index within the attribute.
    pub cluster_id: usize,
    /// Centroid (numeric attributes) or representative value.
    pub centroid: f64,
    /// Literal selecting the cluster's tuples.
    pub literal: Literal,
    /// Number of active-domain values assigned to the cluster.
    pub support: usize,
}

/// Clustering configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Maximum number of clusters per attribute (paper default: 30).
    pub max_k: usize,
    /// Number of Lloyd iterations.
    pub iterations: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            max_k: 30,
            iterations: 25,
        }
    }
}

/// One-dimensional k-means (Lloyd's algorithm) with deterministic
/// quantile-based initialisation.
///
/// Returns the assignment of every point to a cluster and the centroids.
pub fn kmeans_1d(points: &[f64], k: usize, iterations: usize) -> (Vec<usize>, Vec<f64>) {
    assert!(k > 0, "k must be positive");
    if points.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let k = k.min(points.len());
    let mut sorted = points.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    // Quantile initialisation keeps the procedure deterministic.
    let mut centroids: Vec<f64> = (0..k)
        .map(|i| {
            let q = (i as f64 + 0.5) / k as f64;
            let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
            sorted[idx]
        })
        .collect();
    centroids.dedup();
    while centroids.len() < k {
        // Pad duplicated centroids with small offsets to keep k slots.
        let last = *centroids.last().unwrap();
        centroids.push(last + 1e-9 * centroids.len() as f64);
    }

    let mut assignment = vec![0usize; points.len()];
    for _ in 0..iterations {
        // Assignment step.
        for (i, &p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, &ctr) in centroids.iter().enumerate() {
                let d = (p - ctr).abs();
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            assignment[i] = best;
        }
        // Update step.
        let mut sums = vec![0.0f64; centroids.len()];
        let mut counts = vec![0usize; centroids.len()];
        for (i, &p) in points.iter().enumerate() {
            sums[assignment[i]] += p;
            counts[assignment[i]] += 1;
        }
        let mut moved = false;
        for c in 0..centroids.len() {
            if counts[c] > 0 {
                let new_c = sums[c] / counts[c] as f64;
                if (new_c - centroids[c]).abs() > 1e-12 {
                    moved = true;
                }
                centroids[c] = new_c;
            }
        }
        if !moved {
            break;
        }
    }
    (assignment, centroids)
}

/// Derives literals for one attribute of a dataset.
///
/// * Numeric attributes with more than `max_k` distinct values are clustered
///   with 1-D k-means, producing one closed-range literal per cluster.
/// * Small / categorical domains produce one equality literal per distinct
///   value (capped at `max_k` most frequent values).
pub fn derive_attribute_literals(
    data: &Dataset,
    attribute: &str,
    config: &ClusterConfig,
) -> Vec<DomainCluster> {
    let col = match data.schema().position(attribute) {
        Some(c) => c,
        None => return Vec::new(),
    };
    let adom = data.active_domain(col);
    if adom.is_empty() {
        return Vec::new();
    }

    let numeric: Vec<f64> = adom.iter().filter_map(|v| v.as_f64()).collect();
    let all_numeric = numeric.len() == adom.len();

    if all_numeric && adom.len() > config.max_k {
        let k = config.max_k.max(1);
        let (assignment, centroids) = kmeans_1d(&numeric, k, config.iterations);
        let mut clusters: BTreeMap<usize, (f64, f64, usize)> = BTreeMap::new();
        for (i, &c) in assignment.iter().enumerate() {
            let v = numeric[i];
            let e = clusters
                .entry(c)
                .or_insert((f64::INFINITY, f64::NEG_INFINITY, 0));
            e.0 = e.0.min(v);
            e.1 = e.1.max(v);
            e.2 += 1;
        }
        clusters
            .into_iter()
            .enumerate()
            .map(|(idx, (c, (lo, hi, support)))| DomainCluster {
                attribute: attribute.to_string(),
                cluster_id: idx,
                centroid: centroids.get(c).copied().unwrap_or((lo + hi) / 2.0),
                literal: Literal::range(attribute, lo, hi),
                support,
            })
            .collect()
    } else {
        // Frequency-ranked equality literals.
        let mut freq: BTreeMap<Value, usize> = BTreeMap::new();
        for row in data.rows() {
            let v = &row[col];
            if !v.is_null() {
                *freq.entry(v.clone()).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(Value, usize)> = freq.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked
            .into_iter()
            .take(config.max_k)
            .enumerate()
            .map(|(idx, (v, support))| DomainCluster {
                attribute: attribute.to_string(),
                cluster_id: idx,
                centroid: v.as_f64().unwrap_or(idx as f64),
                literal: Literal::equals(attribute, v),
                support,
            })
            .collect()
    }
}

/// Derives literals for every attribute of the dataset except the listed
/// exclusions (typically the join key and the target attribute).
pub fn derive_all_literals(
    data: &Dataset,
    exclude: &[&str],
    config: &ClusterConfig,
) -> Vec<DomainCluster> {
    let mut out = Vec::new();
    for name in data.schema().names() {
        if exclude.contains(&name) {
            continue;
        }
        out.extend(derive_attribute_literals(data, name, config));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn numeric_data(n: usize) -> Dataset {
        let schema = Schema::from_names(["x", "label"]);
        let rows = (0..n)
            .map(|i| vec![Value::Float(i as f64), Value::Str(format!("c{}", i % 3))])
            .collect();
        Dataset::from_rows("num", schema, rows).unwrap()
    }

    #[test]
    fn kmeans_partitions_points() {
        let pts: Vec<f64> = vec![0.0, 0.1, 0.2, 10.0, 10.1, 10.2];
        let (assign, centroids) = kmeans_1d(&pts, 2, 20);
        assert_eq!(centroids.len(), 2);
        assert_eq!(assign[0], assign[1]);
        assert_eq!(assign[3], assign[5]);
        assert_ne!(assign[0], assign[3]);
    }

    #[test]
    fn kmeans_handles_k_larger_than_points() {
        let pts = vec![1.0, 2.0];
        let (assign, centroids) = kmeans_1d(&pts, 10, 5);
        assert_eq!(assign.len(), 2);
        assert!(centroids.len() <= 10);
    }

    #[test]
    fn kmeans_empty_input() {
        let (a, c) = kmeans_1d(&[], 3, 5);
        assert!(a.is_empty());
        assert!(c.is_empty());
    }

    #[test]
    fn large_numeric_domains_get_range_literals() {
        let data = numeric_data(100);
        let cfg = ClusterConfig {
            max_k: 5,
            iterations: 20,
        };
        let clusters = derive_attribute_literals(&data, "x", &cfg);
        assert_eq!(clusters.len(), 5);
        assert!(clusters
            .iter()
            .all(|c| matches!(c.literal.condition, crate::literal::Condition::Range { .. })));
        // Every row is covered by exactly one cluster literal.
        for row in data.rows() {
            let hits = clusters
                .iter()
                .filter(|c| c.literal.matches_row(&data, row))
                .count();
            assert_eq!(hits, 1);
        }
    }

    #[test]
    fn small_domains_get_equality_literals() {
        let data = numeric_data(30);
        let cfg = ClusterConfig::default();
        let clusters = derive_attribute_literals(&data, "label", &cfg);
        assert_eq!(clusters.len(), 3);
        assert!(clusters
            .iter()
            .all(|c| matches!(c.literal.condition, crate::literal::Condition::Equals(_))));
    }

    #[test]
    fn derive_all_literals_respects_exclusions() {
        let data = numeric_data(30);
        let cfg = ClusterConfig {
            max_k: 4,
            iterations: 10,
        };
        let all = derive_all_literals(&data, &["label"], &cfg);
        assert!(all.iter().all(|c| c.attribute == "x"));
    }

    #[test]
    fn unknown_attribute_yields_empty() {
        let data = numeric_data(10);
        assert!(derive_attribute_literals(&data, "nope", &ClusterConfig::default()).is_empty());
    }
}
