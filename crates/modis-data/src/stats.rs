//! Column statistics and correlation measures.
//!
//! BiMODis maintains a correlation graph `G_C` whose edges connect measures
//! with Spearman correlation coefficient above a threshold θ (§5.3); the
//! diversification distance and several baselines also need column summary
//! statistics.

use crate::dataset::Dataset;

/// Summary statistics of a numeric column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of non-null numeric cells.
    pub count: usize,
    /// Number of null cells.
    pub nulls: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl ColumnStats {
    /// Computes summary statistics from an optional-valued column.
    pub fn from_values(values: &[Option<f64>]) -> ColumnStats {
        let present: Vec<f64> = values
            .iter()
            .filter_map(|v| *v)
            .filter(|v| v.is_finite())
            .collect();
        let nulls = values.len() - present.len();
        if present.is_empty() {
            return ColumnStats {
                count: 0,
                nulls,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let count = present.len();
        let mean = present.iter().sum::<f64>() / count as f64;
        let var = present.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        let min = present.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = present.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        ColumnStats {
            count,
            nulls,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }

    /// Statistics for a dataset column.
    pub fn from_column(data: &Dataset, col: usize) -> ColumnStats {
        ColumnStats::from_values(&data.numeric_column(col))
    }
}

/// Mean of a slice (0 for an empty slice).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population standard deviation of a slice.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Pearson product-moment correlation coefficient.
///
/// Returns 0 when either slice is constant or the lengths differ.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut dx = 0.0;
    let mut dy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        num += (x - mx) * (y - my);
        dx += (x - mx).powi(2);
        dy += (y - my).powi(2);
    }
    if dx == 0.0 || dy == 0.0 {
        return 0.0;
    }
    num / (dx.sqrt() * dy.sqrt())
}

/// Fractional ranks (average rank for ties), 1-based.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && (xs[idx[j + 1]] - xs[idx[i]]).abs() < 1e-12 {
            j += 1;
        }
        // Average rank for the tie group [i, j].
        let avg_rank = ((i + 1 + j + 1) as f64) / 2.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation coefficient: Pearson correlation of the ranks.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    if xs.len() != ys.len() || xs.len() < 2 {
        return 0.0;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Euclidean distance between two vectors (shorter vector padded with 0).
pub fn euclidean(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().max(ys.len());
    (0..n)
        .map(|i| {
            let a = xs.get(i).copied().unwrap_or(0.0);
            let b = ys.get(i).copied().unwrap_or(0.0);
            (a - b).powi(2)
        })
        .sum::<f64>()
        .sqrt()
}

/// Cosine similarity between two vectors; 0 if either has zero norm.
pub fn cosine_similarity(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len().max(ys.len());
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for i in 0..n {
        let a = xs.get(i).copied().unwrap_or(0.0);
        let b = ys.get(i).copied().unwrap_or(0.0);
        dot += a * b;
        na += a * a;
        nb += b * b;
    }
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na.sqrt() * nb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::Value;

    #[test]
    fn column_stats_basic() {
        let s = ColumnStats::from_values(&[Some(1.0), Some(2.0), Some(3.0), None]);
        assert_eq!(s.count, 3);
        assert_eq!(s.nulls, 1);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn column_stats_empty() {
        let s = ColumnStats::from_values(&[None, None]);
        assert_eq!(s.count, 0);
        assert_eq!(s.nulls, 2);
    }

    #[test]
    fn column_stats_from_dataset() {
        let d = Dataset::from_rows(
            "d",
            Schema::from_names(["x"]),
            vec![vec![Value::Float(4.0)], vec![Value::Float(8.0)]],
        )
        .unwrap();
        let s = ColumnStats::from_column(&d, 0);
        assert!((s.mean - 6.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_correlation() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn spearman_monotonic_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [1.0, 4.0, 9.0, 16.0, 25.0];
        assert!((spearman(&xs, &ys) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn euclidean_and_cosine() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), 0.0);
    }

    #[test]
    fn mismatched_lengths_give_zero_correlation() {
        assert_eq!(pearson(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(spearman(&[1.0], &[1.0, 2.0]), 0.0);
    }
}
