//! Literals: the selection conditions carried by Augment/Reduct operators.
//!
//! The paper's operators are parameterised by a literal `c` of the form
//! `A = a` (equality). The experiments additionally extend operators with
//! range literals derived from k-means clustering of active domains
//! ("extended operators with range queries to control |adom|", Exp-3), so we
//! support both equality and closed-range forms.

use std::fmt;

use crate::dataset::Dataset;
use crate::value::Value;

/// A single selection condition on one attribute.
#[derive(Debug, Clone, PartialEq)]
pub enum Condition {
    /// `A = a`.
    Equals(Value),
    /// `lo <= A <= hi` on the numeric reading of the attribute.
    Range {
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
    /// `A` is missing.
    IsNull,
    /// `A` is present.
    NotNull,
}

/// A literal `c` posed on a named attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct Literal {
    /// Attribute name the condition refers to.
    pub attribute: String,
    /// The condition.
    pub condition: Condition,
}

impl Literal {
    /// Builds an equality literal `attribute = value`.
    pub fn equals(attribute: impl Into<String>, value: impl Into<Value>) -> Self {
        Literal {
            attribute: attribute.into(),
            condition: Condition::Equals(value.into()),
        }
    }

    /// Builds a closed range literal `lo <= attribute <= hi`.
    pub fn range(attribute: impl Into<String>, lo: f64, hi: f64) -> Self {
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        Literal {
            attribute: attribute.into(),
            condition: Condition::Range { lo, hi },
        }
    }

    /// Builds an `IS NULL` literal.
    pub fn is_null(attribute: impl Into<String>) -> Self {
        Literal {
            attribute: attribute.into(),
            condition: Condition::IsNull,
        }
    }

    /// Builds a `NOT NULL` literal.
    pub fn not_null(attribute: impl Into<String>) -> Self {
        Literal {
            attribute: attribute.into(),
            condition: Condition::NotNull,
        }
    }

    /// Evaluates the literal on a single value.
    pub fn matches_value(&self, v: &Value) -> bool {
        match &self.condition {
            Condition::Equals(target) => v == target,
            Condition::Range { lo, hi } => match v.as_f64() {
                Some(x) => x >= *lo && x <= *hi,
                None => false,
            },
            Condition::IsNull => v.is_null(),
            Condition::NotNull => !v.is_null(),
        }
    }

    /// Evaluates the literal on a row of the given dataset.
    ///
    /// Rows of datasets that do not contain the attribute never match.
    pub fn matches_row(&self, data: &Dataset, row: &[Value]) -> bool {
        match data.schema().position(&self.attribute) {
            Some(col) => row.get(col).map(|v| self.matches_value(v)).unwrap_or(false),
            None => false,
        }
    }

    /// Number of rows of `data` satisfying the literal.
    pub fn selectivity_count(&self, data: &Dataset) -> usize {
        data.rows()
            .iter()
            .filter(|r| self.matches_row(data, r))
            .count()
    }

    /// Fraction of rows of `data` satisfying the literal (0 for empty data).
    pub fn selectivity(&self, data: &Dataset) -> f64 {
        if data.num_rows() == 0 {
            return 0.0;
        }
        self.selectivity_count(data) as f64 / data.num_rows() as f64
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.condition {
            Condition::Equals(v) => write!(f, "{} = {}", self.attribute, v),
            Condition::Range { lo, hi } => write!(f, "{} ∈ [{}, {}]", self.attribute, lo, hi),
            Condition::IsNull => write!(f, "{} IS NULL", self.attribute),
            Condition::NotNull => write!(f, "{} IS NOT NULL", self.attribute),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn toy() -> Dataset {
        Dataset::from_rows(
            "toy",
            Schema::from_names(["year", "season"]),
            vec![
                vec![Value::Int(2001), Value::Str("spring".into())],
                vec![Value::Int(2005), Value::Str("summer".into())],
                vec![Value::Int(2013), Value::Null],
            ],
        )
        .unwrap()
    }

    #[test]
    fn equality_literal_matches() {
        let d = toy();
        let lit = Literal::equals("season", "spring");
        assert_eq!(lit.selectivity_count(&d), 1);
    }

    #[test]
    fn range_literal_matches_numeric() {
        let d = toy();
        let lit = Literal::range("year", 2000.0, 2006.0);
        assert_eq!(lit.selectivity_count(&d), 2);
        assert!((lit.selectivity(&d) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn range_constructor_normalises_bounds() {
        let lit = Literal::range("x", 5.0, 1.0);
        assert_eq!(lit.condition, Condition::Range { lo: 1.0, hi: 5.0 });
    }

    #[test]
    fn null_literals() {
        let d = toy();
        assert_eq!(Literal::is_null("season").selectivity_count(&d), 1);
        assert_eq!(Literal::not_null("season").selectivity_count(&d), 2);
    }

    #[test]
    fn unknown_attribute_never_matches() {
        let d = toy();
        let lit = Literal::equals("missing", 1);
        assert_eq!(lit.selectivity_count(&d), 0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Literal::equals("a", 3).to_string(), "a = 3");
        assert!(Literal::range("a", 0.0, 1.0).to_string().contains('['));
    }
}
