//! Cell values stored in MODis datasets.
//!
//! The paper works over structured tables whose cells may hold numbers,
//! categorical strings, booleans, or be missing (`Null`). Values must be
//! orderable and hashable so that active domains, equality literals and
//! cluster assignments are well defined.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single cell value.
///
/// `Null` represents a missing value (`t.A = ∅` in the paper). `Float` values
/// are compared with a total order (NaN sorts last) so `Value` can be used as
/// a key in ordered collections.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Missing value.
    #[default]
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Categorical / free-text value.
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Returns `true` if the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Converts the value into `f64` when it has a natural numeric reading.
    ///
    /// Strings are parsed when possible; booleans map to 0/1; `Null` returns
    /// `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Null => None,
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
        }
    }

    /// Converts the value into `i64` when lossless.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Returns the string payload if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns `true` when the value is numeric (`Int` or `Float`).
    pub fn is_numeric(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Float(_))
    }

    /// Parses a raw text token into the most specific value type.
    ///
    /// Empty strings, `"null"`, `"na"`, `"nan"` (case-insensitive) become
    /// `Null`; integers and floats are recognised; everything else is kept as
    /// a string.
    pub fn parse(token: &str) -> Value {
        let t = token.trim();
        if t.is_empty() {
            return Value::Null;
        }
        let lower = t.to_ascii_lowercase();
        if lower == "null" || lower == "na" || lower == "nan" || lower == "none" {
            return Value::Null;
        }
        if lower == "true" {
            return Value::Bool(true);
        }
        if lower == "false" {
            return Value::Bool(false);
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(t.to_string())
    }

    /// Rank of the variant used to order heterogeneous values.
    fn variant_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 2,
            Value::Str(_) => 3,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, ""),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => {
                (a.is_nan() && b.is_nan()) || (a - b).abs() == 0.0
            }
            (Value::Int(a), Value::Float(b)) | (Value::Float(b), Value::Int(a)) => {
                (*a as f64 - b).abs() == 0.0
            }
            _ => false,
        }
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        let (ra, rb) = (self.variant_rank(), other.variant_rank());
        if ra != rb {
            return ra.cmp(&rb);
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => {
                let a = self.as_f64().unwrap_or(f64::NAN);
                let b = other.as_f64().unwrap_or(f64::NAN);
                total_cmp_f64(a, b)
            }
        }
    }
}

/// Total order over floats with NaN sorted last.
fn total_cmp_f64(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.partial_cmp(&b).unwrap_or(Ordering::Equal),
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.variant_rank().hash(state);
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Str(s) => s.hash(state),
            Value::Int(i) => (*i as f64).to_bits().hash(state),
            Value::Float(f) => {
                if f.is_nan() {
                    u64::MAX.hash(state)
                } else {
                    f.to_bits().hash(state)
                }
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn parse_recognises_types() {
        assert_eq!(Value::parse("42"), Value::Int(42));
        assert_eq!(Value::parse("3.5"), Value::Float(3.5));
        assert_eq!(Value::parse("true"), Value::Bool(true));
        assert_eq!(Value::parse(""), Value::Null);
        assert_eq!(Value::parse("NaN"), Value::Null);
        assert_eq!(Value::parse("hello"), Value::Str("hello".into()));
    }

    #[test]
    fn numeric_cross_type_equality() {
        assert_eq!(Value::Int(3), Value::Float(3.0));
        assert_ne!(Value::Int(3), Value::Float(3.5));
    }

    #[test]
    fn as_f64_conversions() {
        assert_eq!(Value::Int(2).as_f64(), Some(2.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Str("2.5".into()).as_f64(), Some(2.5));
        assert_eq!(Value::Str("abc".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn ordering_is_total_and_null_first() {
        let mut vs = [
            Value::Str("b".into()),
            Value::Int(10),
            Value::Null,
            Value::Float(2.5),
            Value::Bool(true),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert!(matches!(vs.last().unwrap(), Value::Str(_)));
    }

    #[test]
    fn hash_consistent_with_eq_for_int_float() {
        let mut set = HashSet::new();
        set.insert(Value::Int(7));
        assert!(set.contains(&Value::Float(7.0)));
    }

    #[test]
    fn display_roundtrip_for_ints() {
        assert_eq!(Value::Int(12).to_string(), "12");
        assert_eq!(Value::Null.to_string(), "");
    }

    #[test]
    fn nan_handling() {
        let nan = Value::Float(f64::NAN);
        assert_eq!(nan, Value::Float(f64::NAN));
        assert_eq!(nan.cmp(&Value::Float(1.0)), Ordering::Greater);
    }

    #[test]
    fn as_i64_lossless_only() {
        assert_eq!(Value::Float(3.0).as_i64(), Some(3));
        assert_eq!(Value::Float(3.5).as_i64(), None);
        assert_eq!(Value::Bool(true).as_i64(), Some(1));
    }
}
