//! Joins and universal-table construction.
//!
//! `ApxMODis` starts from a *universal* dataset `D_U` carrying the universal
//! schema `R_U`, "populated by joining all the tables (with outer join to
//! preserve all the values besides common attributes, by default)" (§5.2).
//! This module provides hash equi-joins (inner / left / full outer) and a
//! multi-way outer join over a shared key.

use std::collections::HashMap;

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Schema;
use crate::value::Value;

/// Join flavours supported by the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Keep only matching tuples.
    Inner,
    /// Keep every left tuple, padding right attributes with nulls.
    LeftOuter,
    /// Keep every tuple from both sides (the paper's default for `D_U`).
    FullOuter,
}

/// Hash equi-join of two datasets on a shared key attribute.
///
/// The output schema is the union of the operand schemas; shared non-key
/// attributes take the left value when both are present.
pub fn hash_join(
    left: &Dataset,
    right: &Dataset,
    key: &str,
    kind: JoinKind,
) -> Result<Dataset, DataError> {
    let lk = left
        .schema()
        .position(key)
        .ok_or_else(|| DataError::MissingJoinKey(key.to_string()))?;
    let rk = right
        .schema()
        .position(key)
        .ok_or_else(|| DataError::MissingJoinKey(key.to_string()))?;

    let out_schema = left.schema().union(right.schema());
    let mut out = Dataset::new(format!("{}⋈{}", left.name, right.name), out_schema);

    // Column maps from each operand into the output schema.
    let lmap: Vec<usize> = left
        .schema()
        .names()
        .iter()
        .map(|n| out.schema().position(n).expect("union contains left attr"))
        .collect();
    let rmap: Vec<usize> = right
        .schema()
        .names()
        .iter()
        .map(|n| out.schema().position(n).expect("union contains right attr"))
        .collect();

    // Build hash index on the right side.
    let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows().iter().enumerate() {
        let k = row[rk].clone();
        if k.is_null() {
            continue;
        }
        index.entry(k).or_default().push(i);
    }

    let width = out.num_columns();
    let mut right_matched = vec![false; right.num_rows()];

    for lrow in left.rows() {
        let k = &lrow[lk];
        let matches = if k.is_null() { None } else { index.get(k) };
        match matches {
            Some(ris) if !ris.is_empty() => {
                for &ri in ris {
                    right_matched[ri] = true;
                    let rrow = &right.rows()[ri];
                    let mut new_row = vec![Value::Null; width];
                    for (ci, &oi) in lmap.iter().enumerate() {
                        new_row[oi] = lrow[ci].clone();
                    }
                    for (ci, &oi) in rmap.iter().enumerate() {
                        if new_row[oi].is_null() {
                            new_row[oi] = rrow[ci].clone();
                        }
                    }
                    out.push_row(new_row);
                }
            }
            _ => {
                if kind != JoinKind::Inner {
                    let mut new_row = vec![Value::Null; width];
                    for (ci, &oi) in lmap.iter().enumerate() {
                        new_row[oi] = lrow[ci].clone();
                    }
                    out.push_row(new_row);
                }
            }
        }
    }

    if kind == JoinKind::FullOuter {
        for (ri, rrow) in right.rows().iter().enumerate() {
            if right_matched[ri] {
                continue;
            }
            let mut new_row = vec![Value::Null; width];
            for (ci, &oi) in rmap.iter().enumerate() {
                new_row[oi] = rrow[ci].clone();
            }
            out.push_row(new_row);
        }
    }

    Ok(out)
}

/// Multi-way full outer join over a shared key: the universal table `D_U`.
///
/// Tables are joined left to right; the resulting dataset carries the
/// universal schema `R_U` of the pool. Returns an empty dataset for an empty
/// pool.
pub fn universal_table(pool: &[Dataset], key: &str) -> Result<Dataset, DataError> {
    let mut iter = pool.iter();
    let first = match iter.next() {
        Some(d) => d.clone(),
        None => return Ok(Dataset::new("D_U", Schema::new())),
    };
    let mut acc = first;
    for d in iter {
        acc = hash_join(&acc, d, key, JoinKind::FullOuter)?;
    }
    acc.name = "D_U".to_string();
    Ok(acc)
}

/// Union-compatible vertical concatenation: aligns on the universal schema of
/// both operands and stacks the rows. Used by the Starmie-style baseline
/// (table-union search).
pub fn union_all(left: &Dataset, right: &Dataset) -> Dataset {
    let schema = left.schema().union(right.schema());
    let mut out = Dataset::new(format!("{}∪{}", left.name, right.name), schema);
    let width = out.num_columns();
    for src in [left, right] {
        let map: Vec<usize> = src
            .schema()
            .names()
            .iter()
            .map(|n| out.schema().position(n).expect("union schema"))
            .collect();
        for row in src.rows() {
            let mut new_row = vec![Value::Null; width];
            for (ci, &oi) in map.iter().enumerate() {
                new_row[oi] = row[ci].clone();
            }
            out.push_row(new_row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn left() -> Dataset {
        Dataset::from_rows(
            "L",
            Schema::from_attributes(vec![Attribute::key("id"), Attribute::feature("a")]),
            vec![
                vec![Value::Int(1), Value::Float(1.0)],
                vec![Value::Int(2), Value::Float(2.0)],
                vec![Value::Int(3), Value::Float(3.0)],
            ],
        )
        .unwrap()
    }

    fn right() -> Dataset {
        Dataset::from_rows(
            "R",
            Schema::from_attributes(vec![Attribute::key("id"), Attribute::feature("b")]),
            vec![
                vec![Value::Int(2), Value::Str("x".into())],
                vec![Value::Int(3), Value::Str("y".into())],
                vec![Value::Int(4), Value::Str("z".into())],
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_keeps_matches_only() {
        let j = hash_join(&left(), &right(), "id", JoinKind::Inner).unwrap();
        assert_eq!(j.num_rows(), 2);
        assert_eq!(j.num_columns(), 3);
    }

    #[test]
    fn left_outer_join_pads_nulls() {
        let j = hash_join(&left(), &right(), "id", JoinKind::LeftOuter).unwrap();
        assert_eq!(j.num_rows(), 3);
        let b = j.schema().position("b").unwrap();
        assert!(j.value(0, b).is_null());
    }

    #[test]
    fn full_outer_join_preserves_all_tuples() {
        let j = hash_join(&left(), &right(), "id", JoinKind::FullOuter).unwrap();
        // 2 matches + 1 unmatched left + 1 unmatched right
        assert_eq!(j.num_rows(), 4);
        let ids: Vec<_> = j.column_by_name("id").unwrap();
        assert!(ids.contains(&Value::Int(4)));
    }

    #[test]
    fn missing_key_is_error() {
        let l = left();
        let bad = Dataset::new("bad", Schema::from_names(["zzz"]));
        assert!(hash_join(&l, &bad, "id", JoinKind::Inner).is_err());
    }

    #[test]
    fn universal_table_unions_schemas() {
        let third = Dataset::from_rows(
            "T",
            Schema::from_attributes(vec![Attribute::key("id"), Attribute::feature("c")]),
            vec![vec![Value::Int(1), Value::Int(10)]],
        )
        .unwrap();
        let u = universal_table(&[left(), right(), third], "id").unwrap();
        assert_eq!(u.name, "D_U");
        assert_eq!(u.num_columns(), 4);
        assert!(u.num_rows() >= 4);
    }

    #[test]
    fn universal_table_of_empty_pool() {
        let u = universal_table(&[], "id").unwrap();
        assert_eq!(u.num_rows(), 0);
        assert_eq!(u.num_columns(), 0);
    }

    #[test]
    fn union_all_stacks_rows() {
        let u = union_all(&left(), &right());
        assert_eq!(u.num_rows(), 6);
        assert_eq!(u.num_columns(), 3);
    }

    #[test]
    fn null_keys_do_not_join() {
        let mut l = left();
        l.set_value(0, 0, Value::Null).unwrap();
        let j = hash_join(&l, &right(), "id", JoinKind::Inner).unwrap();
        assert_eq!(j.num_rows(), 2);
    }
}
