//! # modis-data
//!
//! Tabular data substrate for the MODis skyline-dataset framework
//! ("Generating Skyline Datasets for Data Science Models", EDBT 2025).
//!
//! This crate provides everything the MODis finite-state transducer needs to
//! manipulate data:
//!
//! * [`value::Value`] / [`schema::Schema`] / [`dataset::Dataset`] — the table
//!   model of §2 (local schemas, universal schema, active domains, missing
//!   values);
//! * [`literal::Literal`] — equality and range conditions carried by
//!   operators;
//! * [`ops`] — the primitive `Augment ⊕_c` and `Reduct ⊖_c` operators of §3;
//! * [`join`] — hash/outer joins and the universal table `D_U` construction
//!   of §5.2;
//! * [`cluster`] — per-attribute k-means over active domains, deriving the
//!   literal lattice used by the search (§6);
//! * [`bitmap::StateBitmap`] — the state encoding `L` used by ApxMODis /
//!   BiMODis, packed into `u64` words;
//! * [`view`] — packed [`view::RowMask`] selection vectors and zero-copy
//!   [`view::DatasetView`]s, the columnar materialisation path;
//! * [`stats`] — Pearson/Spearman correlation, cosine/Euclidean distances and
//!   column statistics used by correlation-based pruning and
//!   diversification;
//! * [`csv`] — lightweight CSV I/O for the experiment harness.

#![warn(missing_docs)]

pub mod bitmap;
pub mod cluster;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod join;
pub mod literal;
pub mod ops;
pub mod schema;
pub mod stats;
pub mod value;
pub mod view;

pub use bitmap::StateBitmap;
pub use cluster::{derive_all_literals, derive_attribute_literals, ClusterConfig, DomainCluster};
pub use dataset::Dataset;
pub use error::DataError;
pub use join::{hash_join, union_all, universal_table, JoinKind};
pub use literal::{Condition, Literal};
pub use ops::{apply_operator, augment, augment_aligned, mask_attribute, reduct, Operator};
pub use schema::{universal_schema, Attribute, AttributeRole, Schema};
pub use value::Value;
pub use view::{DatasetView, RowMask};
