//! The primitive operators of the skyline data generator (§3).
//!
//! * [`augment`] — `⊕_c(D_M, D)`: extend `D_M`'s schema with an attribute of
//!   `D` and append the tuples of `D` satisfying literal `c`, padding unknown
//!   cells with nulls.
//! * [`reduct`] — `⊖_c(D_M)`: select the tuples of `D_M` satisfying `c` and
//!   remove them.
//!
//! Both are polynomial-time and expressible as SPJ queries; the
//! [`Operator`] enum packages them so the transducer can treat them
//! uniformly.

use std::fmt;

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::literal::Literal;
use crate::schema::Attribute;
use crate::value::Value;

/// A primitive operator of the data generator `T = (s_M, S, O, S_F, δ)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Operator {
    /// `⊕_c(·, D)`: augment with attribute `attribute` from source table
    /// `source` subject to literal `c`.
    Augment {
        /// Name of the source table in the pool `D`.
        source: String,
        /// Attribute of the source table to add (also used for value
        /// alignment when already present).
        attribute: String,
        /// Literal constraining which source tuples are brought in.
        literal: Literal,
    },
    /// `⊖_c(·)`: remove the tuples satisfying `literal`.
    Reduct {
        /// Literal selecting the tuples to remove.
        literal: Literal,
    },
}

impl Operator {
    /// Returns the literal carried by the operator.
    pub fn literal(&self) -> &Literal {
        match self {
            Operator::Augment { literal, .. } => literal,
            Operator::Reduct { literal } => literal,
        }
    }

    /// Whether this is an augmentation.
    pub fn is_augment(&self) -> bool {
        matches!(self, Operator::Augment { .. })
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operator::Augment {
                source,
                attribute,
                literal,
            } => {
                write!(f, "⊕[{source}.{attribute} | {literal}]")
            }
            Operator::Reduct { literal } => write!(f, "⊖[{literal}]"),
        }
    }
}

/// Applies `⊕_c(base, source)` (§3, Augment).
///
/// 1. the schema of `base` is augmented with `attribute` from `source` (if
///    not present);
/// 2. tuples of `source` satisfying `c` are appended, aligned on shared
///    attributes;
/// 3. remaining (unknown) cells are filled with nulls.
pub fn augment(
    base: &Dataset,
    source: &Dataset,
    attribute: &str,
    literal: &Literal,
) -> Result<Dataset, DataError> {
    let src_col = source
        .schema()
        .position(attribute)
        .ok_or_else(|| DataError::UnknownColumn(attribute.to_string()))?;

    let mut out = base.clone();
    out.name = format!("{}+{}", base.name, attribute);
    let attr = source
        .schema()
        .attribute(src_col)
        .cloned()
        .unwrap_or_else(|| Attribute::feature(attribute));
    out.add_column(attr);

    // Map shared attributes: source column index -> output column index.
    let shared: Vec<(usize, usize)> = source
        .schema()
        .names()
        .iter()
        .enumerate()
        .filter_map(|(si, name)| out.schema().position(name).map(|oi| (si, oi)))
        .collect();

    for row in source.rows() {
        if !literal.matches_row(source, row) {
            continue;
        }
        let mut new_row = vec![Value::Null; out.num_columns()];
        for &(si, oi) in &shared {
            new_row[oi] = row.get(si).cloned().unwrap_or(Value::Null);
        }
        out.push_row(new_row);
    }
    Ok(out)
}

/// Applies `⊗`-style *value alignment* augmentation used when constructing
/// the universal table: instead of appending rows, fills the `attribute`
/// column of `base` by matching on a join key, and appends unmatched source
/// tuples satisfying the literal.
///
/// This mirrors the spatial-join style augmentation of Example 3: attributes
/// are joined tuple-by-tuple where a key matches, and genuinely new evidence
/// is appended as new (partially null) tuples.
pub fn augment_aligned(
    base: &Dataset,
    source: &Dataset,
    attribute: &str,
    key: &str,
    literal: &Literal,
) -> Result<Dataset, DataError> {
    let src_attr_col = source
        .schema()
        .position(attribute)
        .ok_or_else(|| DataError::UnknownColumn(attribute.to_string()))?;
    let src_key_col = source
        .schema()
        .position(key)
        .ok_or_else(|| DataError::MissingJoinKey(key.to_string()))?;
    let base_key_col = base
        .schema()
        .position(key)
        .ok_or_else(|| DataError::MissingJoinKey(key.to_string()))?;

    let mut out = base.clone();
    out.name = format!("{}+{}", base.name, attribute);
    let attr = source
        .schema()
        .attribute(src_attr_col)
        .cloned()
        .unwrap_or_else(|| Attribute::feature(attribute));
    let out_attr_col = out.add_column(attr);

    // Index matching source rows by key value.
    use std::collections::HashMap;
    let mut index: HashMap<Value, Value> = HashMap::new();
    for row in source.rows() {
        if !literal.matches_row(source, row) {
            continue;
        }
        let k = row[src_key_col].clone();
        if k.is_null() {
            continue;
        }
        index.entry(k).or_insert_with(|| row[src_attr_col].clone());
    }

    for r in 0..out.num_rows() {
        let k = out.value(r, base_key_col).clone();
        if let Some(v) = index.get(&k) {
            out.set_value(r, out_attr_col, v.clone())?;
        }
    }
    Ok(out)
}

/// Applies `⊖_c(base)` (§3, Reduct): removes all tuples satisfying the
/// literal and returns the reduced dataset together with the number of
/// removed tuples.
pub fn reduct(base: &Dataset, literal: &Literal) -> (Dataset, usize) {
    let mut out = base.clone();
    out.name = format!("{}−[{}]", base.name, literal);
    let removed = out.retain(|row| !literal.matches_row(base, row));
    (out, removed)
}

/// Masks an attribute entirely: every cell of `attribute` becomes null.
///
/// This realises the "adom_s(A) = ∅" state semantics: the attribute is no
/// longer involved in training/testing without changing the schema width,
/// which keeps state bitmaps aligned with the universal schema.
pub fn mask_attribute(base: &Dataset, attribute: &str) -> Result<Dataset, DataError> {
    let col = base
        .schema()
        .position(attribute)
        .ok_or_else(|| DataError::UnknownColumn(attribute.to_string()))?;
    let mut out = base.clone();
    out.name = format!("{}∖{}", base.name, attribute);
    for r in 0..out.num_rows() {
        out.set_value(r, col, Value::Null)?;
    }
    Ok(out)
}

/// Applies a generic [`Operator`] given the source table pool.
pub fn apply_operator(
    base: &Dataset,
    pool: &[Dataset],
    op: &Operator,
) -> Result<Dataset, DataError> {
    match op {
        Operator::Augment {
            source,
            attribute,
            literal,
        } => {
            let src = pool
                .iter()
                .find(|d| d.name == *source)
                .ok_or_else(|| DataError::UnknownColumn(format!("source table {source}")))?;
            augment(base, src, attribute, literal)
        }
        Operator::Reduct { literal } => Ok(reduct(base, literal).0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn water() -> Dataset {
        Dataset::from_rows(
            "water",
            Schema::from_names(["site", "ph"]),
            vec![
                vec![Value::Int(1), Value::Float(6.8)],
                vec![Value::Int(2), Value::Float(7.2)],
            ],
        )
        .unwrap()
    }

    fn phosphorus() -> Dataset {
        Dataset::from_rows(
            "phos",
            Schema::from_names(["site", "phosphorus", "year"]),
            vec![
                vec![Value::Int(1), Value::Float(0.3), Value::Int(2013)],
                vec![Value::Int(2), Value::Float(0.9), Value::Int(2010)],
                vec![Value::Int(3), Value::Float(0.1), Value::Int(2013)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn augment_adds_attribute_and_matching_tuples() {
        let base = water();
        let src = phosphorus();
        let lit = Literal::equals("year", 2013);
        let out = augment(&base, &src, "phosphorus", &lit).unwrap();
        assert!(out.schema().contains("phosphorus"));
        // two source rows satisfy year=2013 and are appended
        assert_eq!(out.num_rows(), 4);
        // original rows have null phosphorus
        assert!(out
            .value(0, out.schema().position("phosphorus").unwrap())
            .is_null());
    }

    #[test]
    fn augment_unknown_attribute_errors() {
        let base = water();
        let src = phosphorus();
        let lit = Literal::equals("year", 2013);
        assert!(augment(&base, &src, "nitrate", &lit).is_err());
    }

    #[test]
    fn augment_aligned_joins_on_key() {
        let base = water();
        let src = phosphorus();
        let lit = Literal::not_null("phosphorus");
        let out = augment_aligned(&base, &src, "phosphorus", "site", &lit).unwrap();
        assert_eq!(out.num_rows(), 2);
        let c = out.schema().position("phosphorus").unwrap();
        assert_eq!(out.value(0, c), &Value::Float(0.3));
        assert_eq!(out.value(1, c), &Value::Float(0.9));
    }

    #[test]
    fn reduct_removes_matching_rows() {
        let src = phosphorus();
        let lit = Literal::range("year", 0.0, 2012.0);
        let (out, removed) = reduct(&src, &lit);
        assert_eq!(removed, 1);
        assert_eq!(out.num_rows(), 2);
    }

    #[test]
    fn reduct_with_nonmatching_literal_is_identity_on_rows() {
        let src = phosphorus();
        let lit = Literal::equals("year", 1900);
        let (out, removed) = reduct(&src, &lit);
        assert_eq!(removed, 0);
        assert_eq!(out.num_rows(), src.num_rows());
    }

    #[test]
    fn mask_attribute_nulls_column() {
        let src = phosphorus();
        let out = mask_attribute(&src, "phosphorus").unwrap();
        let c = out.schema().position("phosphorus").unwrap();
        assert!(out.rows().iter().all(|r| r[c].is_null()));
        assert_eq!(out.num_columns(), src.num_columns());
    }

    #[test]
    fn apply_operator_dispatches() {
        let base = water();
        let pool = vec![phosphorus()];
        let op = Operator::Augment {
            source: "phos".into(),
            attribute: "phosphorus".into(),
            literal: Literal::equals("year", 2013),
        };
        let out = apply_operator(&base, &pool, &op).unwrap();
        assert!(out.schema().contains("phosphorus"));
        let op2 = Operator::Reduct {
            literal: Literal::equals("site", 1),
        };
        let out2 = apply_operator(&out, &pool, &op2).unwrap();
        assert!(out2.num_rows() < out.num_rows());
    }

    #[test]
    fn operator_display() {
        let op = Operator::Reduct {
            literal: Literal::equals("a", 1),
        };
        assert!(op.to_string().contains('⊖'));
        assert!(!op.is_augment());
    }
}
