//! The `Dataset` table type: a row-oriented table conforming to a [`Schema`].
//!
//! Datasets are the artefacts manipulated by the MODis finite-state
//! transducer: operators augment them with new attributes/tuples or reduce
//! them by removing tuples matching a literal (§3).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::error::DataError;
use crate::schema::{Attribute, Schema};
use crate::value::Value;

/// A structured table instance `D(A_1 … A_m)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Human-readable name (source table id).
    pub name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Dataset {
    /// Creates an empty dataset with the given schema.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Dataset {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Creates a dataset from a schema and row data.
    ///
    /// Rows shorter than the schema are padded with `Null`; longer rows are
    /// an error.
    pub fn from_rows(
        name: impl Into<String>,
        schema: Schema,
        rows: Vec<Vec<Value>>,
    ) -> Result<Self, DataError> {
        let width = schema.len();
        let mut fixed = Vec::with_capacity(rows.len());
        for (i, mut r) in rows.into_iter().enumerate() {
            if r.len() > width {
                return Err(DataError::RowArity {
                    row: i,
                    expected: width,
                    found: r.len(),
                });
            }
            r.resize(width, Value::Null);
            fixed.push(r);
        }
        Ok(Dataset {
            name: name.into(),
            schema,
            rows: fixed,
        })
    }

    /// Schema of the dataset.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples `|D|`.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of attributes.
    pub fn num_columns(&self) -> usize {
        self.schema.len()
    }

    /// Whether the dataset contains no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Borrow all rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Borrow a single row.
    pub fn row(&self, i: usize) -> Option<&[Value]> {
        self.rows.get(i).map(|r| r.as_slice())
    }

    /// Value at `(row, column)`.
    pub fn value(&self, row: usize, col: usize) -> &Value {
        self.rows
            .get(row)
            .and_then(|r| r.get(col))
            .unwrap_or(&Value::Null)
    }

    /// Value at `(row, attribute-name)`.
    pub fn value_by_name(&self, row: usize, name: &str) -> Option<&Value> {
        let c = self.schema.position(name)?;
        self.rows.get(row).and_then(|r| r.get(c))
    }

    /// Appends a tuple, padding/truncating to the schema width.
    pub fn push_row(&mut self, mut row: Vec<Value>) {
        row.resize(self.schema.len(), Value::Null);
        self.rows.push(row);
    }

    /// Sets a single cell.
    pub fn set_value(&mut self, row: usize, col: usize, v: Value) -> Result<(), DataError> {
        let width = self.schema.len();
        let r = self
            .rows
            .get_mut(row)
            .ok_or(DataError::RowOutOfBounds { row, len: 0 })?;
        if col >= width {
            return Err(DataError::UnknownColumnIndex(col));
        }
        r[col] = v;
        Ok(())
    }

    /// Adds a new attribute column, filling existing rows with `Null`.
    ///
    /// Returns the column index of the (possibly pre-existing) attribute.
    pub fn add_column(&mut self, attr: Attribute) -> usize {
        let before = self.schema.len();
        let idx = self.schema.push(attr);
        if self.schema.len() > before {
            for r in &mut self.rows {
                r.push(Value::Null);
            }
        }
        idx
    }

    /// The column as a vector of values.
    pub fn column(&self, col: usize) -> Vec<Value> {
        self.rows
            .iter()
            .map(|r| r.get(col).cloned().unwrap_or(Value::Null))
            .collect()
    }

    /// The column by attribute name.
    pub fn column_by_name(&self, name: &str) -> Option<Vec<Value>> {
        self.schema.position(name).map(|c| self.column(c))
    }

    /// Numeric view of a column; non-numeric / missing cells become `None`.
    pub fn numeric_column(&self, col: usize) -> Vec<Option<f64>> {
        self.rows
            .iter()
            .map(|r| r.get(col).and_then(|v| v.as_f64()))
            .collect()
    }

    /// Active domain `adom(A)` of a column: the set of distinct non-null
    /// values occurring in the dataset (§2).
    pub fn active_domain(&self, col: usize) -> BTreeSet<Value> {
        self.rows
            .iter()
            .filter_map(|r| r.get(col))
            .filter(|v| !v.is_null())
            .cloned()
            .collect()
    }

    /// Active domain by attribute name.
    pub fn active_domain_by_name(&self, name: &str) -> BTreeSet<Value> {
        self.schema
            .position(name)
            .map(|c| self.active_domain(c))
            .unwrap_or_default()
    }

    /// Sizes of all active domains, keyed by attribute name.
    pub fn active_domain_sizes(&self) -> BTreeMap<String, usize> {
        self.schema
            .names()
            .iter()
            .enumerate()
            .map(|(i, n)| (n.to_string(), self.active_domain(i).len()))
            .collect()
    }

    /// Fraction of cells that are missing.
    pub fn missing_ratio(&self) -> f64 {
        let total = self.num_rows() * self.num_columns();
        if total == 0 {
            return 0.0;
        }
        let missing: usize = self
            .rows
            .iter()
            .map(|r| r.iter().filter(|v| v.is_null()).count())
            .sum();
        missing as f64 / total as f64
    }

    /// Projection onto a subset of columns (by index).
    pub fn project(&self, indices: &[usize]) -> Dataset {
        let schema = self.schema.project(indices);
        let rows = self
            .rows
            .iter()
            .map(|r| {
                indices
                    .iter()
                    .map(|&i| r.get(i).cloned().unwrap_or(Value::Null))
                    .collect()
            })
            .collect();
        Dataset {
            name: format!("{}#proj", self.name),
            schema,
            rows,
        }
    }

    /// Projection onto a subset of columns (by name); unknown names are
    /// silently skipped.
    pub fn project_by_names(&self, names: &[&str]) -> Dataset {
        let idx: Vec<usize> = names
            .iter()
            .filter_map(|n| self.schema.position(n))
            .collect();
        self.project(&idx)
    }

    /// Selects rows matching a predicate into a new dataset.
    pub fn filter<F: Fn(&[Value]) -> bool>(&self, pred: F) -> Dataset {
        let rows = self.rows.iter().filter(|r| pred(r)).cloned().collect();
        Dataset {
            name: format!("{}#sel", self.name),
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Removes rows matching a predicate in place; returns removed count.
    pub fn retain<F: Fn(&[Value]) -> bool>(&mut self, keep: F) -> usize {
        let before = self.rows.len();
        self.rows.retain(|r| keep(r));
        before - self.rows.len()
    }

    /// Drops all columns whose cells are entirely null and returns the new
    /// dataset together with retained column indices.
    ///
    /// The paper reports output sizes "excluding attributes with all cells
    /// masked" (§6).
    pub fn drop_all_null_columns(&self) -> (Dataset, Vec<usize>) {
        let keep: Vec<usize> = (0..self.num_columns())
            .filter(|&c| self.rows.iter().any(|r| !r[c].is_null()))
            .collect();
        (self.project(&keep), keep)
    }

    /// Dataset size `(rows, columns)` as reported in the paper's tables,
    /// excluding all-null columns.
    pub fn reported_size(&self) -> (usize, usize) {
        let non_null_cols = (0..self.num_columns())
            .filter(|&c| self.rows.iter().any(|r| !r[c].is_null()))
            .count();
        (self.num_rows(), non_null_cols)
    }

    /// Random sample of `n` rows (deterministic given the `seed`).
    pub fn sample(&self, n: usize, seed: u64) -> Dataset {
        if n >= self.num_rows() {
            return self.clone();
        }
        // A simple LCG keeps this dependency free and deterministic.
        let mut state = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let mut indices: Vec<usize> = (0..self.num_rows()).collect();
        for i in (1..indices.len()).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            indices.swap(i, j);
        }
        indices.truncate(n);
        let rows = indices.iter().map(|&i| self.rows[i].clone()).collect();
        Dataset {
            name: format!("{}#sample", self.name),
            schema: self.schema.clone(),
            rows,
        }
    }

    /// Vertically concatenates another dataset with an identical schema.
    pub fn append(&mut self, other: &Dataset) -> Result<(), DataError> {
        if other.schema.names() != self.schema.names() {
            return Err(DataError::SchemaMismatch {
                left: self.schema.to_string(),
                right: other.schema.to_string(),
            });
        }
        self.rows.extend(other.rows.iter().cloned());
        Ok(())
    }

    /// Splits the dataset into (train, test) by a ratio, deterministically.
    pub fn split(&self, train_ratio: f64, seed: u64) -> (Dataset, Dataset) {
        let shuffled = self.sample(self.num_rows(), seed);
        let cut = ((self.num_rows() as f64) * train_ratio).round() as usize;
        let cut = cut.min(self.num_rows());
        let train_rows = shuffled.rows[..cut].to_vec();
        let test_rows = shuffled.rows[cut..].to_vec();
        (
            Dataset {
                name: format!("{}#train", self.name),
                schema: self.schema.clone(),
                rows: train_rows,
            },
            Dataset {
                name: format!("{}#test", self.name),
                schema: self.schema.clone(),
                rows: test_rows,
            },
        )
    }

    /// Renames the dataset, builder style.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} [{} rows]",
            self.name,
            self.schema,
            self.num_rows()
        )?;
        for r in self.rows.iter().take(5) {
            let cells: Vec<String> = r.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        if self.num_rows() > 5 {
            writeln!(f, "  … ({} more rows)", self.num_rows() - 5)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let schema = Schema::from_names(["a", "b"]);
        Dataset::from_rows(
            "toy",
            schema,
            vec![
                vec![Value::Int(1), Value::Float(2.0)],
                vec![Value::Int(2), Value::Null],
                vec![Value::Int(1), Value::Float(4.0)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn from_rows_pads_short_rows() {
        let schema = Schema::from_names(["a", "b", "c"]);
        let d = Dataset::from_rows("d", schema, vec![vec![Value::Int(1)]]).unwrap();
        assert_eq!(d.value(0, 2), &Value::Null);
    }

    #[test]
    fn from_rows_rejects_long_rows() {
        let schema = Schema::from_names(["a"]);
        let err = Dataset::from_rows("d", schema, vec![vec![Value::Int(1), Value::Int(2)]]);
        assert!(err.is_err());
    }

    #[test]
    fn active_domain_excludes_null() {
        let d = toy();
        assert_eq!(d.active_domain(0).len(), 2);
        assert_eq!(d.active_domain(1).len(), 2);
    }

    #[test]
    fn missing_ratio_counts_nulls() {
        let d = toy();
        assert!((d.missing_ratio() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn add_column_backfills_null() {
        let mut d = toy();
        let idx = d.add_column(Attribute::feature("c"));
        assert_eq!(idx, 2);
        assert_eq!(d.value(0, 2), &Value::Null);
        assert_eq!(d.num_columns(), 3);
    }

    #[test]
    fn projection_and_filter() {
        let d = toy();
        let p = d.project_by_names(&["b"]);
        assert_eq!(p.num_columns(), 1);
        let f = d.filter(|r| r[0] == Value::Int(1));
        assert_eq!(f.num_rows(), 2);
    }

    #[test]
    fn drop_all_null_columns_removes_masked() {
        let mut d = toy();
        d.add_column(Attribute::feature("empty"));
        let (clean, kept) = d.drop_all_null_columns();
        assert_eq!(clean.num_columns(), 2);
        assert_eq!(kept, vec![0, 1]);
        assert_eq!(d.reported_size(), (3, 2));
    }

    #[test]
    fn split_partitions_all_rows() {
        let d = toy();
        let (tr, te) = d.split(0.67, 7);
        assert_eq!(tr.num_rows() + te.num_rows(), d.num_rows());
    }

    #[test]
    fn sample_is_deterministic() {
        let d = toy();
        let s1 = d.sample(2, 42);
        let s2 = d.sample(2, 42);
        assert_eq!(s1.rows(), s2.rows());
    }

    #[test]
    fn append_requires_same_schema() {
        let mut d = toy();
        let other = toy();
        assert!(d.append(&other).is_ok());
        assert_eq!(d.num_rows(), 6);
        let bad = Dataset::new("x", Schema::from_names(["z"]));
        assert!(d.append(&bad).is_err());
    }
}
