//! Minimal CSV reading/writing for datasets.
//!
//! The harness exchanges generated datasets and experiment outputs as CSV;
//! this keeps the workspace free of heavyweight I/O dependencies.

use std::fs;
use std::path::Path;

use crate::dataset::Dataset;
use crate::error::DataError;
use crate::schema::Schema;
use crate::value::Value;

/// Parses one CSV line honouring double-quote escaping.
fn parse_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if in_quotes && chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = !in_quotes;
                }
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Escapes one field for CSV output.
fn escape(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parses CSV text (first line = header) into a dataset.
pub fn from_csv_str(name: &str, text: &str) -> Result<Dataset, DataError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| DataError::Csv("empty input".into()))?;
    let names = parse_line(header);
    let schema = Schema::from_names(names.iter().map(|s| s.trim().to_string()));
    let mut rows = Vec::new();
    for (i, line) in lines.enumerate() {
        let fields = parse_line(line);
        if fields.len() > schema.len() {
            return Err(DataError::Csv(format!(
                "line {} has {} fields, header has {}",
                i + 2,
                fields.len(),
                schema.len()
            )));
        }
        rows.push(fields.iter().map(|f| Value::parse(f)).collect());
    }
    Dataset::from_rows(name, schema, rows)
}

/// Serialises a dataset to CSV text.
pub fn to_csv_str(data: &Dataset) -> String {
    let mut out = String::new();
    out.push_str(
        &data
            .schema()
            .names()
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in data.rows() {
        let line = row
            .iter()
            .map(|v| escape(&v.to_string()))
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

/// Reads a CSV file into a dataset named after the file stem.
pub fn read_csv(path: impl AsRef<Path>) -> Result<Dataset, DataError> {
    let path = path.as_ref();
    let text = fs::read_to_string(path).map_err(|e| DataError::Csv(e.to_string()))?;
    let name = path
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("dataset");
    from_csv_str(name, &text)
}

/// Writes a dataset to a CSV file.
pub fn write_csv(data: &Dataset, path: impl AsRef<Path>) -> Result<(), DataError> {
    fs::write(path.as_ref(), to_csv_str(data)).map_err(|e| DataError::Csv(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let text = "a,b,c\n1,2.5,hello\n,true,\"x,y\"\n";
        let d = from_csv_str("t", text).unwrap();
        assert_eq!(d.num_rows(), 2);
        assert_eq!(d.value(0, 0), &Value::Int(1));
        assert_eq!(d.value(1, 0), &Value::Null);
        assert_eq!(d.value(1, 2), &Value::Str("x,y".into()));
        let back = to_csv_str(&d);
        let d2 = from_csv_str("t2", &back).unwrap();
        assert_eq!(d.rows(), d2.rows());
    }

    #[test]
    fn quoted_quotes() {
        let text = "a\n\"he said \"\"hi\"\"\"\n";
        let d = from_csv_str("t", text).unwrap();
        assert_eq!(d.value(0, 0), &Value::Str("he said \"hi\"".into()));
    }

    #[test]
    fn empty_input_is_error() {
        assert!(from_csv_str("t", "").is_err());
    }

    #[test]
    fn too_many_fields_is_error() {
        assert!(from_csv_str("t", "a,b\n1,2,3\n").is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("modis_csv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.csv");
        let d = from_csv_str("toy", "x,y\n1,2\n3,4\n").unwrap();
        write_csv(&d, &path).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.name, "toy");
    }
}
