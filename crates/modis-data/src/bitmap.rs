//! State bitmaps `L`.
//!
//! ApxMODis associates each state `s` with a bitmap `L` that encodes whether
//! the schema of `s` contains an attribute of `D_U` and whether `D_s`
//! contains values from each active-domain cluster (§5.2, Fig. 4 / Example 5
//! use labels such as `(1, 1, 1, 0)`). Flipping a 1-bit to 0 corresponds to
//! applying one reduct operator; flipping 0→1 is an augmentation in the
//! backward search of BiMODis.
//!
//! Bits are packed 64 to a `u64` word (bit `i` lives at word `i / 64`,
//! position `i % 64`), so equality, hashing, population counts and the
//! similarity/distance kernels used by dominance bookkeeping and the
//! diversification distance all run word-wise instead of bit-by-bit. Every
//! search cache (`ValuationContext`'s record store, the substrates' memo
//! tables, the engine's sharded cross-scenario cache) keys on `StateBitmap`,
//! so these word-level `Hash`/`Eq`/`Ord` implementations sit on the hot path
//! of every state valuation.
//!
//! Invariant: bits at positions `>= len` of the last word are always zero,
//! which lets `Eq`/`Hash` compare raw words without masking.

use std::fmt;

const WORD_BITS: usize = 64;

/// A fixed-length bitmap over the reducible units of a universal table,
/// packed into `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct StateBitmap {
    words: Vec<u64>,
    len: usize,
}

#[inline]
fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

impl StateBitmap {
    /// All-ones bitmap of length `n` (the universal state `s_U`).
    pub fn full(n: usize) -> Self {
        let mut words = vec![u64::MAX; words_for(n)];
        let rem = n % WORD_BITS;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << rem) - 1;
            }
        }
        StateBitmap { words, len: n }
    }

    /// All-zeros bitmap of length `n` (the minimal backward state `s_b`).
    pub fn empty(n: usize) -> Self {
        StateBitmap {
            words: vec![0; words_for(n)],
            len: n,
        }
    }

    /// Builds a bitmap from explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        let mut b = StateBitmap::empty(bits.len());
        for (i, &bit) in bits.iter().enumerate() {
            if bit {
                b.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        b
    }

    /// Rebuilds a bitmap from its packed words (the inverse of
    /// [`Self::words`], used by the cache-snapshot codec). Returns `None`
    /// when the word count does not match `len` or a padding bit beyond
    /// `len` is set — both would break the masking-free `Eq`/`Hash`
    /// invariant, so malformed input is rejected instead of adopted.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != words_for(len) {
            return None;
        }
        let rem = len % WORD_BITS;
        if rem != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << rem) - 1) != 0 {
                    return None;
                }
            }
        }
        Some(StateBitmap { words, len })
    }

    /// Length of the bitmap.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of entry `i` (`false` out of bounds).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.len && self.words[i / WORD_BITS] >> (i % WORD_BITS) & 1 == 1
    }

    /// Sets entry `i` (no-op out of bounds).
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        if i < self.len {
            let (w, b) = (i / WORD_BITS, i % WORD_BITS);
            if v {
                self.words[w] |= 1u64 << b;
            } else {
                self.words[w] &= !(1u64 << b);
            }
        }
    }

    /// Number of set entries (word-wise popcount).
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of cleared entries.
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Returns a copy with entry `i` flipped.
    pub fn flipped(&self, i: usize) -> StateBitmap {
        let mut b = self.clone();
        if i < b.len {
            b.words[i / WORD_BITS] ^= 1u64 << (i % WORD_BITS);
        }
        b
    }

    /// Iterates the indices of set entries in increasing order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            std::iter::successors((word != 0).then_some(word), |w| {
                let w = w & (w - 1);
                (w != 0).then_some(w)
            })
            .map(move |w| wi * WORD_BITS + w.trailing_zeros() as usize)
        })
    }

    /// Iterates the indices of cleared entries in increasing order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| !self.get(i))
    }

    /// Iterates all entries in order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(|i| self.get(i))
    }

    /// Indices of set entries.
    pub fn ones(&self) -> Vec<usize> {
        self.iter_ones().collect()
    }

    /// Indices of cleared entries.
    pub fn zeros(&self) -> Vec<usize> {
        self.iter_zeros().collect()
    }

    /// The bits as a `Vec<bool>` (unpacked copy).
    pub fn bits(&self) -> Vec<bool> {
        self.iter().collect()
    }

    /// The packed words backing the bitmap (bit `i` at word `i / 64`,
    /// position `i % 64`; trailing bits of the last word are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place word-wise intersection (`self &= other`). `self` keeps its
    /// length; entries of `other` beyond it are ignored, entries missing
    /// from `other` read 0.
    pub fn and_with(&mut self, other: &StateBitmap) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
        let shared = other.words.len();
        for w in self.words.iter_mut().skip(shared) {
            *w = 0;
        }
    }

    /// In-place word-wise union (`self |= other`). `self` keeps its length;
    /// entries of `other` beyond it are ignored.
    pub fn or_with(&mut self, other: &StateBitmap) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.clear_tail();
    }

    /// In-place word-wise difference (`self &= !other`). `self` keeps its
    /// length; entries of `other` beyond it are ignored.
    pub fn and_not_with(&mut self, other: &StateBitmap) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// Word-wise intersection. The result has `self`'s length; entries of
    /// `other` beyond it are ignored, entries missing from `other` read 0.
    pub fn and(&self, other: &StateBitmap) -> StateBitmap {
        let mut out = self.clone();
        out.and_with(other);
        out
    }

    /// Word-wise union. The result has `self`'s length; entries of `other`
    /// beyond it are ignored.
    pub fn or(&self, other: &StateBitmap) -> StateBitmap {
        let mut out = self.clone();
        out.or_with(other);
        out
    }

    /// Word-wise difference (`self AND NOT other`). The result has `self`'s
    /// length; entries of `other` beyond it are ignored.
    pub fn and_not(&self, other: &StateBitmap) -> StateBitmap {
        let mut out = self.clone();
        out.and_not_with(other);
        out
    }

    /// Zeroes any bits of the last word beyond `len`, restoring the padding
    /// invariant after a word-wise op that may have set them.
    fn clear_tail(&mut self) {
        let rem = self.len % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Cosine similarity between two bitmaps viewed as 0/1 vectors.
    ///
    /// Used by the diversification distance (Eq. 2). Returns 0 when either
    /// bitmap is all-zero. Entries of the longer bitmap beyond the common
    /// prefix contribute to the norms but not the dot product.
    pub fn cosine_similarity(&self, other: &StateBitmap) -> f64 {
        // Zero-padding makes the word-wise AND vanish beyond the shorter
        // bitmap, so the dot product over zipped words is exactly the dot
        // product over the common prefix.
        let dot: usize = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum();
        let na = self.count_ones() as f64;
        let nb = other.count_ones() as f64;
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot as f64 / (na.sqrt() * nb.sqrt())
        }
    }

    /// Hamming distance between two bitmaps (differing positions; the longer
    /// bitmap's tail counts where it has set bits).
    pub fn hamming_distance(&self, other: &StateBitmap) -> usize {
        let (short, long) = if self.words.len() <= other.words.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut d: usize = short
            .words
            .iter()
            .zip(&long.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum();
        d += long
            .words
            .iter()
            .skip(short.words.len())
            .map(|w| w.count_ones() as usize)
            .sum::<usize>();
        d
    }
}

impl PartialOrd for StateBitmap {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for StateBitmap {
    /// Lexicographic order over the bit sequence (bit 0 first, `false <
    /// true`), then by length — identical to the order the old `Vec<bool>`
    /// backing derived, so deterministic tie-breaks in `finalize_result`
    /// sort skyline entries exactly as before.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        let common = self.len.min(other.len);
        let full_words = common / WORD_BITS;
        for w in 0..full_words {
            let diff = self.words[w] ^ other.words[w];
            if diff != 0 {
                let bit = diff.trailing_zeros();
                return if self.words[w] >> bit & 1 == 0 {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
            }
        }
        let rem = common % WORD_BITS;
        if rem != 0 {
            let mask = (1u64 << rem) - 1;
            let diff = (self.words[full_words] ^ other.words[full_words]) & mask;
            if diff != 0 {
                let bit = diff.trailing_zeros();
                return if self.words[full_words] >> bit & 1 == 0 {
                    Ordering::Less
                } else {
                    Ordering::Greater
                };
            }
        }
        self.len.cmp(&other.len)
    }
}

impl fmt::Display for StateBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s: String = self.iter().map(|b| if b { '1' } else { '0' }).collect();
        write!(f, "({s})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty() {
        let f = StateBitmap::full(4);
        let e = StateBitmap::empty(4);
        assert_eq!(f.count_ones(), 4);
        assert_eq!(e.count_ones(), 0);
        assert_eq!(f.hamming_distance(&e), 4);
    }

    #[test]
    fn full_is_exact_across_word_boundaries() {
        for n in [63, 64, 65, 128, 130] {
            let f = StateBitmap::full(n);
            assert_eq!(f.count_ones(), n, "n = {n}");
            assert!(!f.get(n), "padding bit must read false");
            assert_eq!(f, StateBitmap::from_bits(vec![true; n]));
        }
    }

    #[test]
    fn flip_is_involutive() {
        let b = StateBitmap::full(3);
        let b2 = b.flipped(1).flipped(1);
        assert_eq!(b, b2);
    }

    #[test]
    fn ones_and_zeros_partition_indices() {
        let b = StateBitmap::from_bits(vec![true, false, true, false]);
        assert_eq!(b.ones(), vec![0, 2]);
        assert_eq!(b.zeros(), vec![1, 3]);
        assert_eq!(b.count_zeros(), 2);
    }

    #[test]
    fn iter_ones_crosses_words() {
        let mut b = StateBitmap::empty(130);
        for i in [0, 63, 64, 127, 129] {
            b.set(i, true);
        }
        assert_eq!(b.ones(), vec![0, 63, 64, 127, 129]);
        assert_eq!(b.count_ones(), 5);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = StateBitmap::from_bits(vec![true, true, false]);
        let b = StateBitmap::from_bits(vec![true, false, false]);
        let sim = a.cosine_similarity(&b);
        assert!(sim > 0.0 && sim <= 1.0);
        assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-12);
        let zero = StateBitmap::empty(3);
        assert_eq!(a.cosine_similarity(&zero), 0.0);
    }

    #[test]
    fn from_words_round_trips_and_rejects_malformed_input() {
        for n in [0, 1, 63, 64, 65, 130] {
            let mut b = StateBitmap::empty(n);
            for i in (0..n).step_by(3) {
                b.set(i, true);
            }
            let rebuilt = StateBitmap::from_words(b.words().to_vec(), n).unwrap();
            assert_eq!(rebuilt, b, "n = {n}");
        }
        // Wrong word count.
        assert!(StateBitmap::from_words(vec![0, 0], 64).is_none());
        // Padding bit set beyond len.
        assert!(StateBitmap::from_words(vec![1 << 5], 5).is_none());
        assert!(StateBitmap::from_words(vec![(1 << 5) - 1], 5).is_some());
    }

    #[test]
    fn set_and_get_out_of_bounds_are_safe() {
        let mut b = StateBitmap::empty(2);
        b.set(10, true);
        assert!(!b.get(10));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn display_shows_bits() {
        let b = StateBitmap::from_bits(vec![true, false, true]);
        assert_eq!(b.to_string(), "(101)");
    }

    #[test]
    fn different_length_hamming() {
        let a = StateBitmap::from_bits(vec![true]);
        let b = StateBitmap::from_bits(vec![true, true, false]);
        assert_eq!(a.hamming_distance(&b), 1);
    }

    #[test]
    fn ordering_matches_vec_bool_lexicographic() {
        let cases = [
            (vec![false, true], vec![true, false]),
            (vec![true], vec![true, true, false]),
            (vec![true, true], vec![true, true]),
            (vec![false; 70], vec![true; 70]),
        ];
        for (a, b) in cases {
            let pa = StateBitmap::from_bits(a.clone());
            let pb = StateBitmap::from_bits(b.clone());
            assert_eq!(pa.cmp(&pb), a.cmp(&b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn word_ops_match_bitwise_semantics() {
        let a = StateBitmap::from_bits(vec![true, true, false, false]);
        let b = StateBitmap::from_bits(vec![true, false, true, false]);
        assert_eq!(
            a.and(&b),
            StateBitmap::from_bits(vec![true, false, false, false])
        );
        assert_eq!(
            a.or(&b),
            StateBitmap::from_bits(vec![true, true, true, false])
        );
        assert_eq!(
            a.and_not(&b),
            StateBitmap::from_bits(vec![false, true, false, false])
        );
        // Shorter `other` reads as zero-padded.
        let short = StateBitmap::from_bits(vec![true]);
        assert_eq!(
            a.and(&short),
            StateBitmap::from_bits(vec![true, false, false, false])
        );
        assert_eq!(a.or(&short).len(), 4);
    }
}
