//! State bitmaps `L`.
//!
//! ApxMODis associates each state `s` with a bitmap `L` that encodes whether
//! the schema of `s` contains an attribute of `D_U` and whether `D_s`
//! contains values from each active-domain cluster (§5.2, Fig. 4 / Example 5
//! use labels such as `(1, 1, 1, 0)`). Flipping a 1-bit to 0 corresponds to
//! applying one reduct operator; flipping 0→1 is an augmentation in the
//! backward search of BiMODis.

use std::fmt;

/// A fixed-length bitmap over the reducible units of a universal table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateBitmap {
    bits: Vec<bool>,
}

impl StateBitmap {
    /// All-ones bitmap of length `n` (the universal state `s_U`).
    pub fn full(n: usize) -> Self {
        StateBitmap {
            bits: vec![true; n],
        }
    }

    /// All-zeros bitmap of length `n` (the minimal backward state `s_b`).
    pub fn empty(n: usize) -> Self {
        StateBitmap {
            bits: vec![false; n],
        }
    }

    /// Builds a bitmap from explicit bits.
    pub fn from_bits(bits: Vec<bool>) -> Self {
        StateBitmap { bits }
    }

    /// Length of the bitmap.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the bitmap has no entries.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Value of entry `i`.
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i).copied().unwrap_or(false)
    }

    /// Sets entry `i`.
    pub fn set(&mut self, i: usize, v: bool) {
        if i < self.bits.len() {
            self.bits[i] = v;
        }
    }

    /// Number of set entries.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().filter(|b| **b).count()
    }

    /// Number of cleared entries.
    pub fn count_zeros(&self) -> usize {
        self.len() - self.count_ones()
    }

    /// Returns a copy with entry `i` flipped.
    pub fn flipped(&self, i: usize) -> StateBitmap {
        let mut b = self.clone();
        if i < b.bits.len() {
            b.bits[i] = !b.bits[i];
        }
        b
    }

    /// Indices of set entries.
    pub fn ones(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if b { Some(i) } else { None })
            .collect()
    }

    /// Indices of cleared entries.
    pub fn zeros(&self) -> Vec<usize> {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| if !b { Some(i) } else { None })
            .collect()
    }

    /// Raw bits.
    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// Cosine similarity between two bitmaps viewed as 0/1 vectors.
    ///
    /// Used by the diversification distance (Eq. 2). Returns 0 when either
    /// bitmap is all-zero.
    pub fn cosine_similarity(&self, other: &StateBitmap) -> f64 {
        let n = self.len().min(other.len());
        let mut dot = 0.0f64;
        let mut na = 0.0f64;
        let mut nb = 0.0f64;
        for i in 0..n {
            let a = if self.get(i) { 1.0 } else { 0.0 };
            let b = if other.get(i) { 1.0 } else { 0.0 };
            dot += a * b;
            na += a * a;
            nb += b * b;
        }
        // Include any trailing entries of the longer bitmap in the norms.
        for i in n..self.len() {
            if self.get(i) {
                na += 1.0;
            }
        }
        for i in n..other.len() {
            if other.get(i) {
                nb += 1.0;
            }
        }
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na.sqrt() * nb.sqrt())
        }
    }

    /// Hamming distance between two bitmaps (differing positions).
    pub fn hamming_distance(&self, other: &StateBitmap) -> usize {
        let n = self.len().max(other.len());
        (0..n).filter(|&i| self.get(i) != other.get(i)).count()
    }
}

impl fmt::Display for StateBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s: String = self
            .bits
            .iter()
            .map(|&b| if b { '1' } else { '0' })
            .collect();
        write!(f, "({s})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_and_empty() {
        let f = StateBitmap::full(4);
        let e = StateBitmap::empty(4);
        assert_eq!(f.count_ones(), 4);
        assert_eq!(e.count_ones(), 0);
        assert_eq!(f.hamming_distance(&e), 4);
    }

    #[test]
    fn flip_is_involutive() {
        let b = StateBitmap::full(3);
        let b2 = b.flipped(1).flipped(1);
        assert_eq!(b, b2);
    }

    #[test]
    fn ones_and_zeros_partition_indices() {
        let b = StateBitmap::from_bits(vec![true, false, true, false]);
        assert_eq!(b.ones(), vec![0, 2]);
        assert_eq!(b.zeros(), vec![1, 3]);
        assert_eq!(b.count_zeros(), 2);
    }

    #[test]
    fn cosine_similarity_bounds() {
        let a = StateBitmap::from_bits(vec![true, true, false]);
        let b = StateBitmap::from_bits(vec![true, false, false]);
        let sim = a.cosine_similarity(&b);
        assert!(sim > 0.0 && sim <= 1.0);
        assert!((a.cosine_similarity(&a) - 1.0).abs() < 1e-12);
        let zero = StateBitmap::empty(3);
        assert_eq!(a.cosine_similarity(&zero), 0.0);
    }

    #[test]
    fn set_and_get_out_of_bounds_are_safe() {
        let mut b = StateBitmap::empty(2);
        b.set(10, true);
        assert!(!b.get(10));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn display_shows_bits() {
        let b = StateBitmap::from_bits(vec![true, false, true]);
        assert_eq!(b.to_string(), "(101)");
    }

    #[test]
    fn different_length_hamming() {
        let a = StateBitmap::from_bits(vec![true]);
        let b = StateBitmap::from_bits(vec![true, true, false]);
        assert_eq!(a.hamming_distance(&b), 1);
    }
}
