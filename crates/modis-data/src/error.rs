//! Error types for the data substrate.

use std::fmt;

/// Errors raised by dataset construction and manipulation.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum DataError {
    /// A row had more cells than the schema allows.
    RowArity {
        row: usize,
        expected: usize,
        found: usize,
    },
    /// A row index was out of bounds.
    RowOutOfBounds { row: usize, len: usize },
    /// Column index outside of the schema.
    UnknownColumnIndex(usize),
    /// Column name not present in the schema.
    UnknownColumn(String),
    /// Two schemas that must match do not.
    SchemaMismatch { left: String, right: String },
    /// A join key attribute was missing from one of the operands.
    MissingJoinKey(String),
    /// CSV parsing failed.
    Csv(String),
    /// An operator was applied in an invalid configuration.
    InvalidOperator(String),
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::RowArity {
                row,
                expected,
                found,
            } => {
                write!(
                    f,
                    "row {row} has {found} cells, schema expects at most {expected}"
                )
            }
            DataError::RowOutOfBounds { row, len } => {
                write!(f, "row index {row} out of bounds (len {len})")
            }
            DataError::UnknownColumnIndex(i) => write!(f, "unknown column index {i}"),
            DataError::UnknownColumn(n) => write!(f, "unknown column `{n}`"),
            DataError::SchemaMismatch { left, right } => {
                write!(f, "schema mismatch: {left} vs {right}")
            }
            DataError::MissingJoinKey(k) => write!(f, "join key `{k}` missing from operand"),
            DataError::Csv(msg) => write!(f, "csv error: {msg}"),
            DataError::InvalidOperator(msg) => write!(f, "invalid operator: {msg}"),
        }
    }
}

impl std::error::Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = DataError::UnknownColumn("abc".into());
        assert!(e.to_string().contains("abc"));
        let e = DataError::RowArity {
            row: 3,
            expected: 2,
            found: 5,
        };
        assert!(e.to_string().contains('3'));
    }
}
