//! Schemas and attributes.
//!
//! A dataset `D(A_1 … A_m)` conforms to a local schema `R_D(A_1 … A_m)`.
//! The *universal schema* `R_U` is the union of the local schemas of all
//! source tables (§2 of the paper).

use std::collections::BTreeMap;
use std::fmt;

/// The role an attribute plays for the downstream model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeRole {
    /// Regular feature column.
    Feature,
    /// The prediction target of the downstream model.
    Target,
    /// Join key shared across source tables.
    Key,
}

/// A named, typed attribute of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Attribute {
    /// Attribute name (unique within a schema).
    pub name: String,
    /// Role of the attribute for the model / integration pipeline.
    pub role: AttributeRole,
}

impl Attribute {
    /// Creates a feature attribute.
    pub fn feature(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            role: AttributeRole::Feature,
        }
    }

    /// Creates the target attribute.
    pub fn target(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            role: AttributeRole::Target,
        }
    }

    /// Creates a join-key attribute.
    pub fn key(name: impl Into<String>) -> Self {
        Attribute {
            name: name.into(),
            role: AttributeRole::Key,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

/// An ordered collection of attributes with fast name lookup.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    attributes: Vec<Attribute>,
    index: BTreeMap<String, usize>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema::default()
    }

    /// Creates a schema from a list of attributes.
    ///
    /// Duplicate names keep the first occurrence.
    pub fn from_attributes<I: IntoIterator<Item = Attribute>>(attrs: I) -> Self {
        let mut s = Schema::new();
        for a in attrs {
            s.push(a);
        }
        s
    }

    /// Convenience constructor: every name becomes a feature attribute.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema::from_attributes(names.into_iter().map(|n| Attribute::feature(n.into())))
    }

    /// Appends an attribute, returning its column index. Re-adding an
    /// existing name returns the existing index.
    pub fn push(&mut self, attr: Attribute) -> usize {
        if let Some(&i) = self.index.get(&attr.name) {
            return i;
        }
        let i = self.attributes.len();
        self.index.insert(attr.name.clone(), i);
        self.attributes.push(attr);
        i
    }

    /// Number of attributes (`|R|`).
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// Whether the schema has no attributes.
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }

    /// Index of an attribute by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Whether the schema contains `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Attribute at a column index.
    pub fn attribute(&self, idx: usize) -> Option<&Attribute> {
        self.attributes.get(idx)
    }

    /// All attributes in column order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// All attribute names in column order.
    pub fn names(&self) -> Vec<&str> {
        self.attributes.iter().map(|a| a.name.as_str()).collect()
    }

    /// Index of the target attribute, if declared.
    pub fn target_index(&self) -> Option<usize> {
        self.attributes
            .iter()
            .position(|a| a.role == AttributeRole::Target)
    }

    /// Index of the join-key attribute, if declared.
    pub fn key_index(&self) -> Option<usize> {
        self.attributes
            .iter()
            .position(|a| a.role == AttributeRole::Key)
    }

    /// Indices of feature attributes (excludes key and target).
    pub fn feature_indices(&self) -> Vec<usize> {
        self.attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == AttributeRole::Feature)
            .map(|(i, _)| i)
            .collect()
    }

    /// Union of two schemas (the universal-schema construction `R_U`).
    ///
    /// Attribute order: all of `self` first, then attributes of `other` not
    /// already present. Roles of shared attributes keep `self`'s role.
    pub fn union(&self, other: &Schema) -> Schema {
        let mut s = self.clone();
        for a in other.attributes() {
            s.push(a.clone());
        }
        s
    }

    /// Projection of the schema onto a set of column indices.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::from_attributes(indices.iter().filter_map(|&i| self.attribute(i).cloned()))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "({})",
            self.attributes
                .iter()
                .map(|a| a.name.clone())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

/// Builds the universal schema of a set of local schemas (§2).
pub fn universal_schema<'a, I: IntoIterator<Item = &'a Schema>>(schemas: I) -> Schema {
    let mut u = Schema::new();
    for s in schemas {
        u = u.union(s);
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_deduplicates_names() {
        let mut s = Schema::new();
        let a = s.push(Attribute::feature("x"));
        let b = s.push(Attribute::feature("x"));
        assert_eq!(a, b);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_preserves_order_and_dedups() {
        let s1 = Schema::from_names(["a", "b"]);
        let s2 = Schema::from_names(["b", "c"]);
        let u = s1.union(&s2);
        assert_eq!(u.names(), vec!["a", "b", "c"]);
    }

    #[test]
    fn universal_schema_of_many() {
        let s1 = Schema::from_names(["k", "a"]);
        let s2 = Schema::from_names(["k", "b"]);
        let s3 = Schema::from_names(["k", "c", "a"]);
        let u = universal_schema([&s1, &s2, &s3]);
        assert_eq!(u.len(), 4);
        assert!(u.contains("c"));
    }

    #[test]
    fn role_lookup() {
        let s = Schema::from_attributes(vec![
            Attribute::key("id"),
            Attribute::feature("x"),
            Attribute::target("y"),
        ]);
        assert_eq!(s.key_index(), Some(0));
        assert_eq!(s.target_index(), Some(2));
        assert_eq!(s.feature_indices(), vec![1]);
    }

    #[test]
    fn projection_keeps_subset() {
        let s = Schema::from_names(["a", "b", "c"]);
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["c", "a"]);
    }
}
