//! Zero-copy dataset views: packed row-selection masks plus attribute masks
//! over a borrowed universal table.
//!
//! The MODis hot path valuates thousands of states, and every state denotes
//! a dataset that is a *selection* of the universal table's rows plus a
//! *masking* of some attributes. Cloning the universal table per state (the
//! seed's `materialize`) made each valuation O(|D_U|) in allocations; a
//! [`DatasetView`] instead carries a [`RowMask`] (one bit per universal row)
//! and a masked-column set, and reads cell values straight out of the
//! borrowed table — masked attributes read as `Null`, deselected rows are
//! skipped by the iterators. Materialising a state becomes a handful of
//! word-wise AND-NOTs over precomputed per-unit masks; downstream encoding
//! reads through the view without ever copying a `Value`.

use crate::bitmap::StateBitmap;
use crate::dataset::Dataset;
use crate::schema::Schema;
use crate::value::Value;

static NULL_VALUE: Value = Value::Null;

/// A packed selection vector over the rows of a table.
///
/// A thin newtype over [`StateBitmap`] — one packed-`u64` implementation
/// (tail-masking invariant, word-wise ops, set-bit iteration) serves both
/// the unit-space state encoding and the row-space selection vectors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowMask {
    bits: StateBitmap,
}

impl RowMask {
    /// Mask selecting every one of `nrows` rows.
    pub fn all(nrows: usize) -> Self {
        RowMask {
            bits: StateBitmap::full(nrows),
        }
    }

    /// Mask selecting no rows.
    pub fn none(nrows: usize) -> Self {
        RowMask {
            bits: StateBitmap::empty(nrows),
        }
    }

    /// Mask selecting the rows for which `pred` holds.
    pub fn from_pred<F: FnMut(usize) -> bool>(nrows: usize, mut pred: F) -> Self {
        let mut mask = RowMask::none(nrows);
        for r in 0..nrows {
            if pred(r) {
                mask.bits.set(r, true);
            }
        }
        mask
    }

    /// Number of rows the mask ranges over.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the mask ranges over zero rows.
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Whether row `r` is selected (`false` out of bounds).
    #[inline]
    pub fn get(&self, r: usize) -> bool {
        self.bits.get(r)
    }

    /// Selects or deselects row `r` (no-op out of bounds).
    pub fn set(&mut self, r: usize, v: bool) {
        self.bits.set(r, v);
    }

    /// Number of selected rows (word-wise popcount).
    #[inline]
    pub fn count(&self) -> usize {
        self.bits.count_ones()
    }

    /// Word-wise `self &= other` (masks must range over the same rows).
    pub fn intersect_with(&mut self, other: &RowMask) {
        debug_assert_eq!(self.len(), other.len());
        self.bits.and_with(&other.bits);
    }

    /// Word-wise `self &= !other`: removes `other`'s rows from the
    /// selection. This is the reduct `⊖_c`: `other` holds the rows matching
    /// the literal, and subtracting it keeps exactly the non-matching rows.
    pub fn subtract(&mut self, other: &RowMask) {
        debug_assert_eq!(self.len(), other.len());
        self.bits.and_not_with(&other.bits);
    }

    /// Word-wise `self |= other`.
    pub fn union_with(&mut self, other: &RowMask) {
        debug_assert_eq!(self.len(), other.len());
        self.bits.or_with(&other.bits);
    }

    /// Iterates the selected row indices in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits.iter_ones()
    }

    /// The packed selection words (row `r` at word `r / 64`, bit `r % 64`).
    pub fn words(&self) -> &[u64] {
        self.bits.words()
    }
}

/// A zero-copy dataset: a borrowed base table, a row selection and a set of
/// masked (all-null reading) attributes.
#[derive(Debug, Clone)]
pub struct DatasetView<'a> {
    base: &'a Dataset,
    mask: RowMask,
    masked_cols: Vec<bool>,
}

impl<'a> DatasetView<'a> {
    /// A view selecting `mask`'s rows of `base`, with `masked_cols[c]`
    /// columns reading as `Null`.
    ///
    /// `mask` must range over exactly `base.num_rows()` rows and
    /// `masked_cols` must have one entry per column.
    pub fn new(base: &'a Dataset, mask: RowMask, masked_cols: Vec<bool>) -> Self {
        debug_assert_eq!(mask.len(), base.num_rows());
        debug_assert_eq!(masked_cols.len(), base.num_columns());
        DatasetView {
            base,
            mask,
            masked_cols,
        }
    }

    /// The identity view: every row selected, no column masked.
    pub fn full(base: &'a Dataset) -> Self {
        DatasetView {
            mask: RowMask::all(base.num_rows()),
            masked_cols: vec![false; base.num_columns()],
            base,
        }
    }

    /// The borrowed base table.
    pub fn base(&self) -> &'a Dataset {
        self.base
    }

    /// The row-selection mask.
    pub fn mask(&self) -> &RowMask {
        &self.mask
    }

    /// Schema of the base table (shared by the view).
    pub fn schema(&self) -> &'a Schema {
        self.base.schema()
    }

    /// Number of selected rows.
    pub fn num_rows(&self) -> usize {
        self.mask.count()
    }

    /// Number of columns (masked ones included, as in the masking reduct
    /// `adom_s(A) = ∅`, which keeps the schema width).
    pub fn num_columns(&self) -> usize {
        self.base.num_columns()
    }

    /// Whether the view selects no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    /// Whether column `c` is masked (reads as `Null`).
    #[inline]
    pub fn is_col_masked(&self, c: usize) -> bool {
        self.masked_cols.get(c).copied().unwrap_or(false)
    }

    /// Value at `(base_row, col)` honouring the attribute mask; never
    /// copies. `base_row` indexes the *base* table — pair with
    /// [`Self::row_indices`].
    #[inline]
    pub fn value(&self, base_row: usize, col: usize) -> &'a Value {
        if self.is_col_masked(col) {
            &NULL_VALUE
        } else {
            self.base
                .row(base_row)
                .and_then(|r| r.get(col))
                .unwrap_or(&NULL_VALUE)
        }
    }

    /// Iterates the base-table indices of the selected rows in order.
    pub fn row_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.mask.iter()
    }

    /// Whether column `c` reads entirely null over the selected rows
    /// (masked columns trivially do).
    pub fn col_is_all_null(&self, c: usize) -> bool {
        self.is_col_masked(c)
            || self.row_indices().all(|r| {
                self.base
                    .row(r)
                    .and_then(|row| row.get(c))
                    .is_none_or(Value::is_null)
            })
    }

    /// Dataset size `(rows, columns)` as reported in the paper's tables,
    /// excluding all-null columns — byte-identical to materialising the view
    /// and calling [`Dataset::reported_size`].
    pub fn reported_size(&self) -> (usize, usize) {
        let cols = (0..self.num_columns())
            .filter(|&c| !self.col_is_all_null(c))
            .count();
        (self.num_rows(), cols)
    }

    /// Fraction of cells (over selected rows × all columns) that read as
    /// missing; masked cells count as missing.
    pub fn missing_ratio(&self) -> f64 {
        let rows = self.num_rows();
        let total = rows * self.num_columns();
        if total == 0 {
            return 0.0;
        }
        let masked = self.masked_cols.iter().filter(|&&m| m).count();
        let mut missing = masked * rows;
        for r in self.row_indices() {
            if let Some(row) = self.base.row(r) {
                missing += row
                    .iter()
                    .enumerate()
                    .filter(|(c, v)| !self.masked_cols[*c] && v.is_null())
                    .count();
            }
        }
        missing as f64 / total as f64
    }

    /// Copies the view into an owned [`Dataset`]: selected rows in base
    /// order, masked columns written as `Null`. This is the compatibility
    /// path for consumers that still need an owned table; the result equals
    /// the clone-and-filter materialisation of the same state.
    pub fn to_dataset(&self) -> Dataset {
        let rows: Vec<Vec<Value>> = self
            .row_indices()
            .filter_map(|r| self.base.row(r))
            .map(|row| {
                row.iter()
                    .enumerate()
                    .map(|(c, v)| {
                        if self.masked_cols[c] {
                            Value::Null
                        } else {
                            v.clone()
                        }
                    })
                    .collect()
            })
            .collect();
        Dataset::from_rows(
            format!("{}#view", self.base.name),
            self.base.schema().clone(),
            rows,
        )
        .expect("view rows conform to the base schema")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Attribute, Schema};

    fn toy() -> Dataset {
        Dataset::from_rows(
            "toy",
            Schema::from_attributes(vec![
                Attribute::key("id"),
                Attribute::feature("x"),
                Attribute::feature("y"),
            ]),
            (0..10)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Float(i as f64),
                        if i % 3 == 0 {
                            Value::Null
                        } else {
                            Value::Float(1.0)
                        },
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn row_mask_all_none_and_count() {
        let all = RowMask::all(70);
        assert_eq!(all.count(), 70);
        assert!(all.get(69) && !all.get(70));
        let none = RowMask::none(70);
        assert_eq!(none.count(), 0);
    }

    #[test]
    fn row_mask_set_ops_match_per_bit_semantics() {
        let even = RowMask::from_pred(10, |r| r % 2 == 0);
        let small = RowMask::from_pred(10, |r| r < 5);
        let mut a = even.clone();
        a.intersect_with(&small);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 2, 4]);
        let mut b = even.clone();
        b.subtract(&small);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![6, 8]);
        let mut c = RowMask::none(10);
        c.union_with(&even);
        assert_eq!(c, even);
    }

    #[test]
    fn full_view_matches_base() {
        let d = toy();
        let v = DatasetView::full(&d);
        assert_eq!(v.num_rows(), d.num_rows());
        assert_eq!(v.reported_size(), d.reported_size());
        assert!((v.missing_ratio() - d.missing_ratio()).abs() < 1e-12);
        assert_eq!(v.to_dataset().rows(), d.rows());
    }

    #[test]
    fn masked_column_reads_null_and_drops_from_reported_size() {
        let d = toy();
        let v = DatasetView::new(&d, RowMask::all(10), vec![false, true, false]);
        assert!(v.value(0, 1).is_null());
        assert_eq!(v.value(0, 0), &Value::Int(0));
        assert_eq!(v.reported_size().1, d.reported_size().1 - 1);
        let owned = v.to_dataset();
        assert!(owned.rows().iter().all(|r| r[1].is_null()));
    }

    #[test]
    fn row_selection_skips_rows_in_order() {
        let d = toy();
        let mask = RowMask::from_pred(10, |r| r % 2 == 1);
        let v = DatasetView::new(&d, mask, vec![false; 3]);
        assert_eq!(v.num_rows(), 5);
        assert_eq!(v.row_indices().collect::<Vec<_>>(), vec![1, 3, 5, 7, 9]);
        let owned = v.to_dataset();
        assert_eq!(owned.num_rows(), 5);
        assert_eq!(owned.value(0, 0), &Value::Int(1));
    }

    #[test]
    fn empty_view_is_safe() {
        let d = toy();
        let v = DatasetView::new(&d, RowMask::none(10), vec![false; 3]);
        assert!(v.is_empty());
        assert_eq!(v.reported_size(), (0, 0));
        assert_eq!(v.missing_ratio(), 0.0);
        assert_eq!(v.to_dataset().num_rows(), 0);
    }
}
