//! BiMODis: bi-directional skyline set generation with correlation-based
//! pruning (Alg. 2 / Alg. 4), and its pruning-free variant NOBiMODis.
//!
//! A forward frontier reduces from the universal state `s_U` while a backward
//! frontier augments from the minimal state `s_b` produced by `BackSt`. The
//! correlation graph `G_C` over the measures (Spearman ρ ≥ θ on the valuated
//! tests `T`) and globally observed per-transition deltas give parameterised
//! performance bounds `[p̂_l, p̂_u]` for unvaluated children; children whose
//! optimistic bound is already ε-dominated by a skyline member are pruned
//! without valuation (Lemma 4).

use std::collections::VecDeque;
use std::time::Instant;

use modis_data::StateBitmap;

use crate::config::{ModisConfig, SkylineResult};
use crate::correlation::{CorrelationGraph, DeltaTracker, PerfBounds};
use crate::estimator::ValuationContext;
use crate::pareto::EpsilonSkyline;
use crate::search_common::{finalize_result, op_gen, Direction, ProtectedSet, VisitedSet};
use crate::substrate::Substrate;

/// Runs BiMODis (with correlation-based pruning) over a substrate.
pub fn bi_modis<S: Substrate + ?Sized>(substrate: &S, config: &ModisConfig) -> SkylineResult {
    run_bidirectional(substrate, config, true)
}

/// Runs NOBiMODis: the bi-directional search without correlation pruning.
pub fn nobi_modis<S: Substrate + ?Sized>(substrate: &S, config: &ModisConfig) -> SkylineResult {
    run_bidirectional(substrate, config, false)
}

/// Statistics specific to the bi-directional search.
#[derive(Debug, Clone, Copy, Default)]
pub struct BiStats {
    /// Number of children skipped by correlation-based pruning.
    pub pruned: usize,
    /// Number of levels processed before the frontiers met or emptied.
    pub levels: usize,
}

/// Bi-directional search result together with its pruning statistics.
pub fn bi_modis_with_stats<S: Substrate + ?Sized>(
    substrate: &S,
    config: &ModisConfig,
    prune: bool,
) -> (SkylineResult, BiStats) {
    let ctx = ValuationContext::new(substrate, config.estimator);
    bi_modis_with_context(&ctx, config, prune)
}

fn run_bidirectional<S: Substrate + ?Sized>(
    substrate: &S,
    config: &ModisConfig,
    prune: bool,
) -> SkylineResult {
    bi_modis_with_stats(substrate, config, prune).0
}

/// Runs the bi-directional search with an externally managed valuation
/// context (lets callers install an [`crate::estimator::EvaluationHook`]
/// and share test records across runs).
pub fn bi_modis_with_context<S: Substrate + ?Sized>(
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
    prune: bool,
) -> (SkylineResult, BiStats) {
    let start = Instant::now();
    let substrate = ctx.substrate();
    let measures = substrate.measures().clone();
    let protected = ProtectedSet::of(substrate);
    let m = measures.len();
    let mut skyline = EpsilonSkyline::new(measures, config.epsilon, config.decisive);
    let mut visited = VisitedSet::new();
    let mut deltas = DeltaTracker::new(m);
    let mut stats = BiStats::default();

    let s_u = substrate.forward_start();
    let s_b = substrate.backward_start();
    let perf_u = ctx.valuate(&s_u);
    skyline.offer(&s_u, &perf_u, 0);
    visited.insert(&s_u);
    let perf_b = if s_b != s_u {
        let p = ctx.valuate(&s_b);
        skyline.offer(&s_b, &p, 0);
        visited.insert(&s_b);
        p
    } else {
        perf_u.clone()
    };

    let mut forward: VecDeque<(StateBitmap, Vec<f64>, usize)> = VecDeque::new();
    let mut backward: VecDeque<(StateBitmap, Vec<f64>, usize)> = VecDeque::new();
    forward.push_back((s_u, perf_u, 0));
    backward.push_back((s_b, perf_b, 0));

    while !forward.is_empty() || !backward.is_empty() {
        if ctx.num_valuated() >= config.max_states {
            break;
        }
        // Frontier meeting condition: a state reachable from both ends has
        // been visited by both searches; with a shared `visited` set this is
        // detected implicitly when a child is already visited by the other
        // frontier — the paper's Q_f ∩ Q_b ≠ ∅ termination is approximated by
        // the level cap below.
        let corr = CorrelationGraph::from_series(&ctx.measure_series(), config.theta);

        for (queue, direction) in [
            (&mut forward, Direction::Forward),
            (&mut backward, Direction::Backward),
        ] {
            let Some((state, parent_perf, level)) = queue.pop_front() else {
                continue;
            };
            if level >= config.max_level {
                continue;
            }
            stats.levels = stats.levels.max(level + 1);
            for child in op_gen(&state, direction, &protected) {
                if ctx.num_valuated() >= config.max_states {
                    break;
                }
                if !visited.insert(&child) {
                    continue;
                }
                if prune && deltas.observations() >= 3 {
                    let bounds =
                        PerfBounds::from_parent(&parent_perf, &deltas.min, &deltas.max, &corr);
                    let dominated = skyline
                        .entries()
                        .iter()
                        .any(|e| bounds.epsilon_dominated_by(&e.perf, config.epsilon));
                    if dominated {
                        stats.pruned += 1;
                        continue;
                    }
                }
                let perf = ctx.valuate(&child);
                deltas.observe(&parent_perf, &perf);
                skyline.offer(&child, &perf, level + 1);
                queue.push_back((child, perf, level + 1));
            }
        }
        if forward.is_empty() && backward.is_empty() {
            break;
        }
    }

    let result = finalize_result(&skyline, ctx, config, start.elapsed().as_secs_f64());
    (result, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apx::apx_modis;
    use crate::estimator::EstimatorMode;
    use crate::substrate::mock::MockSubstrate;

    fn oracle_config() -> ModisConfig {
        ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_epsilon(0.1)
            .with_max_states(300)
            .with_max_level(6)
    }

    #[test]
    fn bimodis_produces_nonempty_skyline() {
        let sub = MockSubstrate::new(8);
        let res = bi_modis(&sub, &oracle_config());
        assert!(!res.is_empty());
        for a in &res.entries {
            for b in &res.entries {
                assert!(!crate::dominance::dominates(&a.perf, &b.perf) || a.bitmap == b.bitmap);
            }
        }
    }

    #[test]
    fn nobimodis_matches_or_beats_bimodis_quality() {
        let sub = MockSubstrate::new(8);
        let cfg = oracle_config();
        let with = bi_modis(&sub, &cfg);
        let without = nobi_modis(&sub, &cfg);
        let best_quality = |r: &SkylineResult| {
            r.entries
                .iter()
                .map(|e| e.perf[0])
                .fold(f64::INFINITY, f64::min)
        };
        // Pruning may only skip states, never invent better ones.
        assert!(best_quality(&without) <= best_quality(&with) + 1e-9);
    }

    #[test]
    fn pruning_reduces_valuations() {
        let sub = MockSubstrate::new(10);
        let cfg = oracle_config().with_max_states(500).with_max_level(5);
        let (with, stats_with) = bi_modis_with_stats(&sub, &cfg, true);
        let (without, _) = bi_modis_with_stats(&sub, &cfg, false);
        assert!(with.states_valuated <= without.states_valuated);
        // At least some states considered (pruning counter is well-defined).
        assert!(stats_with.pruned < 10_000);
    }

    #[test]
    fn bimodis_explores_from_both_ends() {
        let sub = MockSubstrate::new(6);
        let cfg = oracle_config().with_max_level(2).with_max_states(1000);
        let res = bi_modis(&sub, &cfg);
        // Backward start (all zeros) is level 0 and should be valuated even
        // though the forward search would need 6 levels to reach it.
        assert!(res.states_valuated >= 2);
        let has_sparse = res.entries.iter().any(|e| e.bitmap.count_ones() <= 2);
        let has_dense = res.entries.iter().any(|e| e.bitmap.count_ones() >= 4);
        assert!(has_sparse || has_dense);
    }

    #[test]
    fn bimodis_uses_fewer_or_equal_states_than_apx_for_same_budget() {
        let sub = MockSubstrate::new(8);
        let cfg = oracle_config().with_max_states(120).with_max_level(4);
        let bi = bi_modis(&sub, &cfg);
        let apx = apx_modis(&sub, &cfg);
        assert!(bi.states_valuated <= cfg.max_states + 1);
        assert!(apx.states_valuated <= cfg.max_states + 1);
    }
}
