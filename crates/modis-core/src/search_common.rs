//! Helpers shared by the MODis search algorithms.

use std::collections::HashSet;

use modis_data::StateBitmap;

use crate::config::{ModisConfig, SkylineEntry, SkylineResult};
use crate::estimator::ValuationContext;
use crate::pareto::EpsilonSkyline;
use crate::substrate::Substrate;

/// Search direction of an `OpGen` expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward search: flip 1 → 0 (reduct operators).
    Forward,
    /// Backward search: flip 0 → 1 (augment operators).
    Backward,
}

/// O(1)-membership set of protected unit indices.
///
/// `OpGen` consults protection once per candidate flip per expansion; a
/// linear scan over a `&[usize]` made that O(|protected|) in the innermost
/// loop of every search. This packs the indices into a word-level bitset.
#[derive(Debug, Clone, Default)]
pub struct ProtectedSet {
    words: Vec<u64>,
    len: usize,
}

impl ProtectedSet {
    /// Builds the set from unit indices, sized for a `num_units` universe.
    pub fn from_indices(indices: &[usize], num_units: usize) -> Self {
        let mut words = vec![0u64; num_units.div_ceil(64)];
        let mut len = 0;
        for &i in indices {
            debug_assert!(i < num_units, "protected unit {i} out of range");
            let (w, b) = (i / 64, i % 64);
            if w >= words.len() {
                words.resize(w + 1, 0);
            }
            if words[w] & (1 << b) == 0 {
                words[w] |= 1 << b;
                len += 1;
            }
        }
        ProtectedSet { words, len }
    }

    /// The protected set of a substrate.
    pub fn of<S: Substrate + ?Sized>(substrate: &S) -> Self {
        Self::from_indices(&substrate.protected_units(), substrate.num_units())
    }

    /// Whether unit `i` is protected (constant time).
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Number of protected units.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no unit is protected.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Procedure `OpGen`: spawns every one-flip child of a state in the given
/// direction, skipping protected units.
pub fn op_gen(
    bitmap: &StateBitmap,
    direction: Direction,
    protected: &ProtectedSet,
) -> Vec<StateBitmap> {
    let flip = |i: usize| (!protected.contains(i)).then(|| bitmap.flipped(i));
    match direction {
        Direction::Forward => bitmap.iter_ones().filter_map(flip).collect(),
        Direction::Backward => bitmap.iter_zeros().filter_map(flip).collect(),
    }
}

/// Tracks which states have already been spawned to avoid revisiting them.
#[derive(Debug, Default)]
pub struct VisitedSet {
    seen: HashSet<StateBitmap>,
}

impl VisitedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        VisitedSet::default()
    }

    /// Inserts a state; returns `true` when it was not seen before.
    pub fn insert(&mut self, bitmap: &StateBitmap) -> bool {
        self.seen.insert(bitmap.clone())
    }

    /// Number of visited states.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Finalises a search: the ε-skyline members are re-valuated with the oracle
/// (actual model training), sized, pruned of exact dominance, and wrapped in
/// a [`SkylineResult`].
pub fn finalize_result<S: Substrate + ?Sized>(
    skyline: &EpsilonSkyline,
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
    elapsed_seconds: f64,
) -> SkylineResult {
    let _ = config;
    let mut entries: Vec<SkylineEntry> = skyline
        .finalize()
        .into_iter()
        .map(|mut e| {
            let raw = ctx.raw_for(&e.bitmap);
            e.perf = ctx.substrate().measures().normalise(&raw);
            e.raw = raw;
            e.size = ctx.substrate().artifact_size(&e.bitmap);
            e
        })
        .collect();
    // Total order (perf sum, then lexicographic perf, then bitmap): ties on
    // the sum must not leave the output order at the mercy of HashMap
    // iteration, or parallel and repeated runs could not be compared
    // byte-for-byte.
    entries.sort_by(|a, b| {
        let (sa, sb) = (a.perf.iter().sum::<f64>(), b.perf.iter().sum::<f64>());
        sa.partial_cmp(&sb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                a.perf
                    .iter()
                    .zip(&b.perf)
                    .find_map(|(x, y)| x.partial_cmp(y).filter(|o| o.is_ne()))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .then_with(|| a.bitmap.cmp(&b.bitmap))
    });
    SkylineResult {
        entries,
        states_valuated: ctx.num_valuated(),
        elapsed_seconds,
        stats: ctx.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimatorMode;
    use crate::substrate::mock::MockSubstrate;

    #[test]
    fn op_gen_forward_flips_ones() {
        let b = StateBitmap::from_bits(vec![true, false, true]);
        let children = op_gen(&b, Direction::Forward, &ProtectedSet::default());
        assert_eq!(children.len(), 2);
        assert!(children.iter().all(|c| c.count_ones() == 1));
    }

    #[test]
    fn op_gen_backward_flips_zeros_and_respects_protection() {
        let b = StateBitmap::from_bits(vec![true, false, false]);
        let children = op_gen(
            &b,
            Direction::Backward,
            &ProtectedSet::from_indices(&[2], 3),
        );
        assert_eq!(children.len(), 1);
        assert!(children[0].get(1));
    }

    #[test]
    fn protected_set_membership_and_dedup() {
        let p = ProtectedSet::from_indices(&[0, 65, 65, 127], 128);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
        assert!(p.contains(0) && p.contains(65) && p.contains(127));
        assert!(!p.contains(1) && !p.contains(64) && !p.contains(500));
        assert!(!ProtectedSet::default().contains(0));
    }

    #[test]
    fn visited_set_dedups() {
        let mut v = VisitedSet::new();
        let b = StateBitmap::full(3);
        assert!(v.insert(&b));
        assert!(!v.insert(&b));
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
    }

    #[test]
    fn finalize_result_fills_raw_and_size() {
        let sub = MockSubstrate::new(4);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let cfg = ModisConfig::default();
        let mut sky = EpsilonSkyline::new(sub.measures().clone(), cfg.epsilon, None);
        let b = StateBitmap::full(4);
        let perf = ctx.valuate(&b);
        sky.offer(&b, &perf, 0);
        let res = finalize_result(&sky, &ctx, &cfg, 0.1);
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.entries[0].raw.len(), 2);
        assert_eq!(res.entries[0].size, (40, 4));
        assert!(res.states_valuated >= 1);
    }
}
