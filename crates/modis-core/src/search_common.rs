//! Helpers shared by the MODis search algorithms.

use std::collections::HashSet;

use modis_data::StateBitmap;

use crate::config::{ModisConfig, SkylineEntry, SkylineResult};
use crate::estimator::ValuationContext;
use crate::pareto::EpsilonSkyline;
use crate::substrate::Substrate;

/// Search direction of an `OpGen` expansion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Forward search: flip 1 → 0 (reduct operators).
    Forward,
    /// Backward search: flip 0 → 1 (augment operators).
    Backward,
}

/// Procedure `OpGen`: spawns every one-flip child of a state in the given
/// direction, skipping protected units.
pub fn op_gen(bitmap: &StateBitmap, direction: Direction, protected: &[usize]) -> Vec<StateBitmap> {
    let candidates: Vec<usize> = match direction {
        Direction::Forward => bitmap.ones(),
        Direction::Backward => bitmap.zeros(),
    };
    candidates
        .into_iter()
        .filter(|i| !protected.contains(i))
        .map(|i| bitmap.flipped(i))
        .collect()
}

/// Tracks which states have already been spawned to avoid revisiting them.
#[derive(Debug, Default)]
pub struct VisitedSet {
    seen: HashSet<StateBitmap>,
}

impl VisitedSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        VisitedSet::default()
    }

    /// Inserts a state; returns `true` when it was not seen before.
    pub fn insert(&mut self, bitmap: &StateBitmap) -> bool {
        self.seen.insert(bitmap.clone())
    }

    /// Number of visited states.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

/// Finalises a search: the ε-skyline members are re-valuated with the oracle
/// (actual model training), sized, pruned of exact dominance, and wrapped in
/// a [`SkylineResult`].
pub fn finalize_result<S: Substrate + ?Sized>(
    skyline: &EpsilonSkyline,
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
    elapsed_seconds: f64,
) -> SkylineResult {
    let _ = config;
    let mut entries: Vec<SkylineEntry> = skyline
        .finalize()
        .into_iter()
        .map(|mut e| {
            let raw = ctx.raw_for(&e.bitmap);
            e.perf = ctx.substrate().measures().normalise(&raw);
            e.raw = raw;
            e.size = ctx.substrate().artifact_size(&e.bitmap);
            e
        })
        .collect();
    entries.sort_by(|a, b| {
        a.perf
            .iter()
            .sum::<f64>()
            .partial_cmp(&b.perf.iter().sum::<f64>())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    SkylineResult {
        entries,
        states_valuated: ctx.num_valuated(),
        elapsed_seconds,
        stats: ctx.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimatorMode;
    use crate::substrate::mock::MockSubstrate;

    #[test]
    fn op_gen_forward_flips_ones() {
        let b = StateBitmap::from_bits(vec![true, false, true]);
        let children = op_gen(&b, Direction::Forward, &[]);
        assert_eq!(children.len(), 2);
        assert!(children.iter().all(|c| c.count_ones() == 1));
    }

    #[test]
    fn op_gen_backward_flips_zeros_and_respects_protection() {
        let b = StateBitmap::from_bits(vec![true, false, false]);
        let children = op_gen(&b, Direction::Backward, &[2]);
        assert_eq!(children.len(), 1);
        assert!(children[0].get(1));
    }

    #[test]
    fn visited_set_dedups() {
        let mut v = VisitedSet::new();
        let b = StateBitmap::full(3);
        assert!(v.insert(&b));
        assert!(!v.insert(&b));
        assert_eq!(v.len(), 1);
        assert!(!v.is_empty());
    }

    #[test]
    fn finalize_result_fills_raw_and_size() {
        let sub = MockSubstrate::new(4);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let cfg = ModisConfig::default();
        let mut sky = EpsilonSkyline::new(sub.measures().clone(), cfg.epsilon, None);
        let b = StateBitmap::full(4);
        let perf = ctx.valuate(&b);
        sky.offer(&b, &perf, 0);
        let res = finalize_result(&sky, &ctx, &cfg, 0.1);
        assert_eq!(res.entries.len(), 1);
        assert_eq!(res.entries[0].raw.len(), 2);
        assert_eq!(res.entries[0].size, (40, 4));
        assert!(res.states_valuated >= 1);
    }
}
