//! DivMODis: diversified skyline dataset generation (§5.4, Alg. 3).
//!
//! DivMODis extends the `(N, ε)`-approximation with a per-level greedy
//! selection-and-replacement step that keeps at most `k` skyline members
//! maximising the diversification score of Eq. (2):
//!
//! `div(D_F) = Σ_{i<j} dis(D_i, D_j)` with
//! `dis = α·(1 − cos(L_i, L_j))/2 + (1 − α)·euc(P_i, P_j)/euc_max`.

use std::collections::VecDeque;
use std::time::Instant;

use modis_data::stats::euclidean;

use crate::config::{ModisConfig, SkylineEntry, SkylineResult};
use crate::estimator::ValuationContext;
use crate::pareto::EpsilonSkyline;
use crate::search_common::{finalize_result, op_gen, Direction, ProtectedSet, VisitedSet};
use crate::substrate::Substrate;

/// Pairwise distance `dis(D_i, D_j)` of Eq. (2).
pub fn diversification_distance(
    a: &SkylineEntry,
    b: &SkylineEntry,
    alpha: f64,
    euc_max: f64,
) -> f64 {
    let content = alpha * (1.0 - a.bitmap.cosine_similarity(&b.bitmap)) / 2.0;
    let scale = if euc_max > 1e-12 { euc_max } else { 1.0 };
    let perf = (1.0 - alpha) * euclidean(&a.perf, &b.perf) / scale;
    content + perf
}

/// Diversification score `div(D_F)` of a set of entries.
pub fn diversification_score(entries: &[SkylineEntry], alpha: f64, euc_max: f64) -> f64 {
    let mut score = 0.0;
    for i in 0..entries.len() {
        for j in (i + 1)..entries.len() {
            score += diversification_distance(&entries[i], &entries[j], alpha, euc_max);
        }
    }
    score
}

/// One diversification step at a level (Alg. 3): keeps at most `k` entries by
/// greedy replacement maximising `div`.
pub fn diversify_level(
    entries: Vec<SkylineEntry>,
    k: usize,
    alpha: f64,
    euc_max: f64,
) -> Vec<SkylineEntry> {
    if entries.len() <= k {
        return entries;
    }
    // Initialise with the first k entries (a deterministic stand-in for the
    // random initialisation of Alg. 3, keeping runs reproducible).
    let mut selected: Vec<SkylineEntry> = entries[..k].to_vec();
    let mut score = diversification_score(&selected, alpha, euc_max);
    let mut improved = true;
    while improved {
        improved = false;
        for slot in 0..selected.len() {
            for candidate in &entries {
                if selected
                    .iter()
                    .any(|s| s.bitmap == candidate.bitmap && s.perf == candidate.perf)
                {
                    continue;
                }
                let mut trial = selected.clone();
                trial[slot] = candidate.clone();
                let trial_score = diversification_score(&trial, alpha, euc_max);
                if trial_score > score + 1e-12 {
                    selected = trial;
                    score = trial_score;
                    improved = true;
                }
            }
        }
    }
    selected
}

/// Runs DivMODis over a substrate.
pub fn div_modis<S: Substrate + ?Sized>(substrate: &S, config: &ModisConfig) -> SkylineResult {
    let ctx = ValuationContext::new(substrate, config.estimator);
    div_modis_with_context(&ctx, config)
}

/// Runs DivMODis with an externally managed valuation context (lets callers
/// install an [`crate::estimator::EvaluationHook`] and share test records
/// across runs).
pub fn div_modis_with_context<S: Substrate + ?Sized>(
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
) -> SkylineResult {
    let start = Instant::now();
    let substrate = ctx.substrate();
    let measures = substrate.measures().clone();
    let protected = ProtectedSet::of(substrate);
    let mut skyline = EpsilonSkyline::new(measures, config.epsilon, config.decisive);
    let mut visited = VisitedSet::new();
    let mut queue: VecDeque<(modis_data::StateBitmap, usize)> = VecDeque::new();

    let s_u = substrate.forward_start();
    let perf_u = ctx.valuate(&s_u);
    skyline.offer(&s_u, &perf_u, 0);
    visited.insert(&s_u);
    queue.push_back((s_u, 0));

    // Normalisation constant euc_m: the maximum Euclidean distance among the
    // historical performances in T, updated as the search proceeds.
    let mut euc_max: f64 = 1e-9;
    let mut current_level = 0usize;

    while let Some((state, level)) = queue.pop_front() {
        if ctx.num_valuated() >= config.max_states {
            break;
        }
        if level > current_level {
            // Level boundary: diversify the skyline kept so far (Alg. 3 is
            // invoked on D_F^i before level i+1 is processed).
            let diversified = diversify_level(skyline.entries(), config.k, config.alpha, euc_max);
            skyline.replace_entries(diversified);
            current_level = level;
        }
        if level >= config.max_level {
            continue;
        }
        for child in op_gen(&state, Direction::Forward, &protected) {
            if ctx.num_valuated() >= config.max_states {
                break;
            }
            if !visited.insert(&child) {
                continue;
            }
            let perf = ctx.valuate(&child);
            for rec in skyline.entries() {
                euc_max = euc_max.max(euclidean(&rec.perf, &perf));
            }
            skyline.offer(&child, &perf, level + 1);
            queue.push_back((child, level + 1));
        }
    }

    // Final diversification pass.
    let diversified = diversify_level(skyline.entries(), config.k, config.alpha, euc_max);
    skyline.replace_entries(diversified);
    finalize_result(&skyline, ctx, config, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::EstimatorMode;
    use crate::substrate::mock::MockSubstrate;
    use modis_data::StateBitmap;

    fn entry(bits: Vec<bool>, perf: Vec<f64>) -> SkylineEntry {
        SkylineEntry {
            bitmap: StateBitmap::from_bits(bits),
            perf,
            raw: Vec::new(),
            size: (0, 0),
            level: 0,
        }
    }

    #[test]
    fn distance_combines_content_and_performance() {
        let a = entry(vec![true, true, false], vec![0.1, 0.2]);
        let b = entry(vec![false, false, true], vec![0.8, 0.9]);
        let c = entry(vec![true, true, false], vec![0.1, 0.2]);
        let far = diversification_distance(&a, &b, 0.5, 1.0);
        let near = diversification_distance(&a, &c, 0.5, 1.0);
        assert!(far > near);
        assert!(near.abs() < 1e-9);
        // α = 1 ignores performance.
        let only_content = diversification_distance(&a, &b, 1.0, 1.0);
        assert!((only_content - 0.5).abs() < 1e-9);
    }

    #[test]
    fn diversification_score_is_monotone_in_set_size() {
        let a = entry(vec![true, false], vec![0.1, 0.2]);
        let b = entry(vec![false, true], vec![0.9, 0.8]);
        let c = entry(vec![true, true], vec![0.5, 0.5]);
        let two = diversification_score(&[a.clone(), b.clone()], 0.5, 1.0);
        let three = diversification_score(&[a, b, c], 0.5, 1.0);
        assert!(three >= two);
    }

    #[test]
    fn diversify_level_keeps_k_most_diverse() {
        let entries = vec![
            entry(vec![true, true, true, true], vec![0.1, 0.1]),
            entry(vec![true, true, true, false], vec![0.11, 0.11]),
            entry(vec![false, false, false, true], vec![0.9, 0.9]),
        ];
        let kept = diversify_level(entries, 2, 0.5, 1.2);
        assert_eq!(kept.len(), 2);
        // The two most different entries (first and third) should survive.
        let ones: Vec<usize> = kept.iter().map(|e| e.bitmap.count_ones()).collect();
        assert!(ones.contains(&1));
        assert!(ones.contains(&4) || ones.contains(&3));
    }

    #[test]
    fn diversify_level_noop_when_small() {
        let entries = vec![entry(vec![true], vec![0.1, 0.2])];
        assert_eq!(diversify_level(entries.clone(), 3, 0.5, 1.0).len(), 1);
    }

    #[test]
    fn divmodis_bounds_skyline_size_by_k() {
        let sub = MockSubstrate::new(8);
        let cfg = ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(200)
            .with_diversification(3, 0.5);
        let res = div_modis(&sub, &cfg);
        assert!(!res.is_empty());
        assert!(res.len() <= 3, "skyline has {} members", res.len());
    }

    #[test]
    fn alpha_one_prefers_content_spread() {
        let sub = MockSubstrate::new(8);
        let base = ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(150);
        let content = div_modis(&sub, &base.clone().with_diversification(3, 1.0));
        let perf = div_modis(&sub, &base.with_diversification(3, 0.0));
        assert!(!content.is_empty() && !perf.is_empty());
    }
}
