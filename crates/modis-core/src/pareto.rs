//! The ε-skyline maintenance structure (`UPareto`, Alg. 1 lines 20–30).
//!
//! States are placed in the `(|P|−1)`-dimensional discretised grid of
//! Eq. (1); each cell holds at most one representative, and a newcomer
//! replaces the occupant only when it is strictly better on the decisive
//! measure. Candidates violating an upper bound `p_u` are skipped early.

use std::collections::HashMap;

use modis_data::StateBitmap;

use crate::config::SkylineEntry;
use crate::dominance::{dominated_flags, epsilon_dominates};
use crate::measure::{position, MeasureSet};

/// A cell-indexed ε-skyline under construction.
#[derive(Debug, Clone)]
pub struct EpsilonSkyline {
    measures: MeasureSet,
    epsilon: f64,
    decisive: usize,
    cells: HashMap<Vec<i64>, SkylineEntry>,
}

impl EpsilonSkyline {
    /// Creates an empty ε-skyline for the given measure set.
    pub fn new(measures: MeasureSet, epsilon: f64, decisive: Option<usize>) -> Self {
        let decisive = decisive.unwrap_or_else(|| measures.decisive_index());
        EpsilonSkyline {
            measures,
            epsilon,
            decisive,
            cells: HashMap::new(),
        }
    }

    /// ε used by the grid.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Decisive measure index.
    pub fn decisive(&self) -> usize {
        self.decisive
    }

    /// Number of occupied cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether no cell is occupied.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Offers a valuated state to the skyline (procedure `UPareto`).
    ///
    /// Returns `true` when the state was inserted (new cell) or replaced an
    /// occupant.
    pub fn offer(&mut self, bitmap: &StateBitmap, perf: &[f64], level: usize) -> bool {
        // Early skip: any measure above its upper bound disqualifies the
        // state from every skyline set (Alg. 1 line 23).
        if self.measures.violates_upper(perf) {
            return false;
        }
        let pos = position(perf, &self.measures, self.epsilon, self.decisive);
        match self.cells.get_mut(&pos) {
            None => {
                self.cells.insert(
                    pos,
                    SkylineEntry {
                        bitmap: bitmap.clone(),
                        perf: perf.to_vec(),
                        raw: Vec::new(),
                        size: (0, 0),
                        level,
                    },
                );
                true
            }
            Some(occupant) => {
                if perf[self.decisive] < occupant.perf[self.decisive] - 1e-12 {
                    *occupant = SkylineEntry {
                        bitmap: bitmap.clone(),
                        perf: perf.to_vec(),
                        raw: Vec::new(),
                        size: (0, 0),
                        level,
                    };
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Whether some current member ε-dominates the given performance vector.
    pub fn epsilon_dominated(&self, perf: &[f64]) -> bool {
        self.cells
            .values()
            .any(|e| epsilon_dominates(&e.perf, perf, self.epsilon))
    }

    /// Current members (arbitrary order).
    pub fn entries(&self) -> Vec<SkylineEntry> {
        self.cells.values().cloned().collect()
    }

    /// Replaces the member set (used by the level-wise diversification).
    pub fn replace_entries(&mut self, entries: Vec<SkylineEntry>) {
        self.cells.clear();
        for e in entries {
            let pos = position(&e.perf, &self.measures, self.epsilon, self.decisive);
            self.cells.insert(pos, e);
        }
    }

    /// Final clean-up: removes members dominated (exactly) by another member,
    /// so the output satisfies the mutual non-dominance property of §4.
    ///
    /// Runs through the kernel-accelerated [`dominated_flags`], which is
    /// differentially tested to match the pairwise definition exactly.
    pub fn finalize(&self) -> Vec<SkylineEntry> {
        let entries = self.entries();
        let perfs: Vec<&[f64]> = entries.iter().map(|e| e.perf.as_slice()).collect();
        let flags = dominated_flags(&perfs);
        entries
            .into_iter()
            .zip(flags)
            .filter(|(_, dominated)| !dominated)
            .map(|(e, _)| e)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureSpec;

    fn measures() -> MeasureSet {
        MeasureSet::new(vec![
            MeasureSpec::maximise("q").with_bounds(0.01, 0.95),
            MeasureSpec::minimise("c", 1.0).with_bounds(0.01, 0.9),
        ])
    }

    #[test]
    fn offer_inserts_and_replaces_by_decisive() {
        let mut sky = EpsilonSkyline::new(measures(), 0.3, None);
        let b = StateBitmap::full(3);
        assert!(sky.offer(&b, &[0.2, 0.5], 0));
        // Same cell (close first coordinate), better decisive (cost) replaces.
        assert!(sky.offer(&b.flipped(0), &[0.21, 0.4], 1));
        // Same cell, worse decisive is rejected.
        assert!(!sky.offer(&b.flipped(1), &[0.2, 0.6], 1));
        assert_eq!(sky.len(), 1);
        assert_eq!(sky.entries()[0].perf[1], 0.4);
    }

    #[test]
    fn upper_bound_violation_is_skipped() {
        let mut sky = EpsilonSkyline::new(measures(), 0.3, None);
        assert!(!sky.offer(&StateBitmap::full(2), &[0.99, 0.5], 0));
        assert!(sky.is_empty());
    }

    #[test]
    fn distinct_cells_coexist() {
        let mut sky = EpsilonSkyline::new(measures(), 0.2, None);
        let b = StateBitmap::full(2);
        assert!(sky.offer(&b, &[0.05, 0.8], 0));
        assert!(sky.offer(&b.flipped(0), &[0.6, 0.1], 0));
        assert_eq!(sky.len(), 2);
        assert!(sky.epsilon_dominated(&[0.7, 0.2]));
        assert!(!sky.epsilon_dominated(&[0.04, 0.05]));
    }

    #[test]
    fn finalize_prunes_dominated_members() {
        let mut sky = EpsilonSkyline::new(measures(), 0.05, None);
        let b = StateBitmap::full(2);
        sky.offer(&b, &[0.05, 0.1], 0);
        sky.offer(&b.flipped(0), &[0.5, 0.5], 0);
        let fin = sky.finalize();
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].perf, vec![0.05, 0.1]);
    }

    #[test]
    fn replace_entries_reindexes() {
        let mut sky = EpsilonSkyline::new(measures(), 0.2, None);
        let b = StateBitmap::full(2);
        sky.offer(&b, &[0.05, 0.8], 0);
        sky.offer(&b.flipped(0), &[0.6, 0.1], 0);
        let mut entries = sky.entries();
        entries.truncate(1);
        sky.replace_entries(entries);
        assert_eq!(sky.len(), 1);
    }
}
