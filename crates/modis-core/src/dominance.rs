//! Dominance relations and skyline computation (§4, §5.1).
//!
//! * [`dominates`] — strict Pareto dominance over normalised minimise-form
//!   performance vectors;
//! * [`epsilon_dominates`] — the `(1+ε)` relaxation used by the
//!   `(N, ε)`-approximation;
//! * [`skyline`] — exact Pareto front, dispatching to the fast kernels of
//!   [`crate::dominance_index`] (exact 2D sort-and-scan, sum-sorted scans
//!   with early termination, u64 level-mask pre-filters);
//! * [`skyline_pairwise_baseline`] — the retained `O(n²·|P|)` reference
//!   kernel every fast kernel is differentially tested against;
//! * [`dominated_flags`] — the dominance-only predicate (no duplicate rule)
//!   used by skyline finalisation;
//! * [`epsilon_skyline_cover`] — verifies the ε-skyline covering property.

/// Strict Pareto dominance: `a ≺ b` means `b` dominates `a`.
///
/// `b` dominates `a` iff `b` is no worse on every measure and strictly better
/// on at least one (all measures minimised).
pub fn dominates(b: &[f64], a: &[f64]) -> bool {
    if a.len() != b.len() || a.is_empty() {
        return false;
    }
    let mut strictly_better = false;
    for (x, y) in b.iter().zip(a.iter()) {
        if *x > y + 1e-12 {
            return false;
        }
        if *x < y - 1e-12 {
            strictly_better = true;
        }
    }
    strictly_better
}

/// ε-dominance `b ⪰_ε a`: `b.p ≤ (1+ε)·a.p` for every measure and `b.p* ≤
/// a.p*` for at least one (decisive) measure.
pub fn epsilon_dominates(b: &[f64], a: &[f64], epsilon: f64) -> bool {
    if a.len() != b.len() || a.is_empty() {
        return false;
    }
    let factor = 1.0 + epsilon;
    let mut some_no_worse = false;
    for (x, y) in b.iter().zip(a.iter()) {
        if *x > factor * y + 1e-12 {
            return false;
        }
        if *x <= *y + 1e-12 {
            some_no_worse = true;
        }
    }
    some_no_worse
}

/// Retained pairwise reference skyline (`O(n²·|P|)`): the indices of
/// vectors no other vector [`dominates`], minus exact duplicates of earlier
/// vectors, preserving input order.
///
/// Every fast kernel in [`crate::dominance_index`] is differentially tested
/// to return a byte-identical index set; this baseline **is** the public
/// contract of [`skyline`] and must not be "optimised".
pub fn skyline_pairwise_baseline<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    skyline_pairwise_with_stats(points).0
}

/// [`skyline_pairwise_baseline`] with comparison counting.
pub(crate) fn skyline_pairwise_with_stats<P: AsRef<[f64]>>(
    points: &[P],
) -> (Vec<usize>, crate::dominance_index::DominanceStats) {
    let mut stats = crate::dominance_index::DominanceStats::new("pairwise");
    let mut result = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        let p = p.as_ref();
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let q = q.as_ref();
            stats.comparisons += 1;
            if dominates(q, p) {
                continue 'outer;
            }
            // Tie-break exact duplicates: keep only the first occurrence.
            if j < i && q == p {
                continue 'outer;
            }
        }
        result.push(i);
    }
    stats.finish(points.len());
    (result, stats)
}

/// Pairwise dominance-only flags (no duplicate rule): `flags[i]` is true
/// iff some other vector dominates vector `i`.
pub(crate) fn pairwise_flags_with_stats<P: AsRef<[f64]>>(
    points: &[P],
) -> (Vec<bool>, crate::dominance_index::DominanceStats) {
    let mut stats = crate::dominance_index::DominanceStats::new("pairwise");
    let flags = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            points.iter().enumerate().any(|(j, q)| {
                if i == j {
                    return false;
                }
                stats.comparisons += 1;
                dominates(q.as_ref(), p.as_ref())
            })
        })
        .collect();
    stats.finish(points.len());
    (flags, stats)
}

/// Exact skyline (Pareto front) of a set of performance vectors; returns the
/// indices of non-dominated vectors, preserving input order.
///
/// Dispatches to the fastest applicable kernel of
/// [`crate::dominance_index`] — all byte-identical to
/// [`skyline_pairwise_baseline`] — and flushes the kernel's work statistics
/// into the ambient telemetry (when a scope is open) and the thread-local
/// dominance tally.
pub fn skyline<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    let (keep, stats) = skyline_with_stats(points);
    crate::dominance_index::record_stats(&stats);
    keep
}

/// [`skyline`] returning the kernel's work statistics without flushing them.
pub fn skyline_with_stats<P: AsRef<[f64]>>(
    points: &[P],
) -> (Vec<usize>, crate::dominance_index::DominanceStats) {
    use crate::dominance_index as dx;
    match dx::uniform_dims(points) {
        None => skyline_pairwise_with_stats(points),
        Some(_) if points.len() < 2 => skyline_pairwise_with_stats(points),
        Some(2) => dx::skyline_scan_2d_with_stats(points),
        Some(_) if points.len() >= dx::MASK_MIN_POINTS => dx::skyline_indexed_with_stats(points),
        Some(_) => dx::skyline_sorted_with_stats(points),
    }
}

/// Dominance-only flags: `flags[i]` is true iff some *other* vector
/// dominates vector `i` (exact duplicates are not flagged — they do not
/// dominate each other). Kernel-accelerated like [`skyline`]; flushes work
/// statistics the same way.
pub fn dominated_flags<P: AsRef<[f64]>>(points: &[P]) -> Vec<bool> {
    let (flags, stats) = dominated_flags_with_stats(points);
    crate::dominance_index::record_stats(&stats);
    flags
}

/// [`dominated_flags`] returning the kernel's work statistics without
/// flushing them.
pub fn dominated_flags_with_stats<P: AsRef<[f64]>>(
    points: &[P],
) -> (Vec<bool>, crate::dominance_index::DominanceStats) {
    use crate::dominance_index as dx;
    match dx::uniform_dims(points) {
        None => pairwise_flags_with_stats(points),
        Some(_) if points.len() < 2 => pairwise_flags_with_stats(points),
        Some(2) => match dx::flags_scan_2d(points) {
            Some(res) => res,
            None => pairwise_flags_with_stats(points),
        },
        Some(_) => dx::indexed_flags_with_stats(points, points.len() >= dx::MASK_MIN_POINTS),
    }
}

/// Checks the ε-skyline covering property: every vector in `all` is
/// ε-dominated by some member of `subset` (given as indices into `all`).
pub fn epsilon_skyline_cover(all: &[Vec<f64>], subset: &[usize], epsilon: f64) -> bool {
    all.iter().enumerate().all(|(i, p)| {
        subset.contains(&i)
            || subset
                .iter()
                .any(|&j| epsilon_dominates(&all[j], p, epsilon))
    })
}

/// Removes vectors of `indices` that are dominated by another member of
/// `indices` (mutual non-dominance property of a skyline set).
pub fn prune_dominated(points: &[Vec<f64>], indices: &[usize]) -> Vec<usize> {
    indices
        .iter()
        .copied()
        .filter(|&i| {
            !indices
                .iter()
                .any(|&j| j != i && dominates(&points[j], &points[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basic_cases() {
        assert!(dominates(&[0.1, 0.2], &[0.2, 0.3]));
        assert!(!dominates(&[0.2, 0.3], &[0.1, 0.2]));
        assert!(!dominates(&[0.1, 0.4], &[0.2, 0.3]));
        // Equal vectors do not dominate each other.
        assert!(!dominates(&[0.1, 0.2], &[0.1, 0.2]));
        assert!(!dominates(&[], &[]));
    }

    #[test]
    fn paper_example_4_dominance() {
        // Performance vectors of D1..D5 from Example 4 (RMSE, R̂², T_train).
        let d = [
            vec![0.48, 0.33, 0.37],
            vec![0.41, 0.24, 0.37],
            vec![0.26, 0.15, 0.37],
            vec![0.37, 0.22, 0.39],
            vec![0.25, 0.18, 0.35],
        ];
        // D1 ≺ D2 ≺ D3 and D4 ≺ D5 (later dominates earlier).
        assert!(dominates(&d[1], &d[0]));
        assert!(dominates(&d[2], &d[1]));
        assert!(dominates(&d[4], &d[3]));
        // D3 ⊀ D5 and D5 ⊀ D3.
        assert!(!dominates(&d[2], &d[4]));
        assert!(!dominates(&d[4], &d[2]));
        // Skyline = {D3, D5} = indices {2, 4}.
        let sky = skyline(&d);
        assert_eq!(sky, vec![2, 4]);
    }

    #[test]
    fn epsilon_dominance_relaxation() {
        // Slightly worse on one measure but within (1+ε).
        assert!(epsilon_dominates(&[0.11, 0.2], &[0.1, 0.25], 0.2));
        assert!(!epsilon_dominates(&[0.2, 0.2], &[0.1, 0.25], 0.2));
        // ε = 0 reduces to weak dominance with the "some no worse" clause.
        assert!(epsilon_dominates(&[0.1, 0.2], &[0.1, 0.2], 0.0));
    }

    #[test]
    fn skyline_2d_matches_generic() {
        let pts: Vec<Vec<f64>> = vec![
            vec![0.1, 0.9],
            vec![0.2, 0.5],
            vec![0.3, 0.6],
            vec![0.5, 0.2],
            vec![0.9, 0.1],
            vec![0.6, 0.6],
        ];
        let sky2 = skyline(&pts);
        // Generic path by adding a constant third dimension.
        let pts3: Vec<Vec<f64>> = pts.iter().map(|p| vec![p[0], p[1], 0.5]).collect();
        let mut sky3 = skyline(&pts3);
        sky3.sort_unstable();
        assert_eq!(sky2, sky3);
        assert!(sky2.contains(&0) && sky2.contains(&4));
        assert!(!sky2.contains(&2));
    }

    #[test]
    fn skyline_of_duplicates_keeps_one() {
        let pts = vec![vec![0.1, 0.1, 0.1], vec![0.1, 0.1, 0.1]];
        assert_eq!(skyline(&pts), vec![0]);
    }

    #[test]
    fn cover_property_detects_missing_coverage() {
        let all = vec![vec![0.1, 0.5], vec![0.5, 0.1], vec![0.12, 0.55]];
        assert!(epsilon_skyline_cover(&all, &[0, 1], 0.2));
        assert!(!epsilon_skyline_cover(&all, &[1], 0.2));
    }

    #[test]
    fn prune_dominated_removes_inner_points() {
        let pts = vec![vec![0.1, 0.5], vec![0.2, 0.6], vec![0.5, 0.1]];
        let pruned = prune_dominated(&pts, &[0, 1, 2]);
        assert_eq!(pruned, vec![0, 2]);
    }

    /// Pins the NaN/∞ semantics of [`dominates`] that every kernel must
    /// reproduce: a NaN coordinate passes both the "no worse" and the
    /// "strictly better" checks vacuously in *both* directions, so a
    /// NaN-laced vector can dominate (and escape domination selectively).
    #[test]
    fn nan_dominance_semantics_are_pinned() {
        // NaN on one coordinate, strictly better on the other: dominates.
        assert!(dominates(&[f64::NAN, 0.1], &[0.5, 0.5]));
        // All-NaN never dominates (no strict win anywhere).
        assert!(!dominates(&[f64::NAN, f64::NAN], &[0.5, 0.5]));
        // A NaN coordinate in the dominated point imposes no constraint.
        assert!(dominates(&[0.1, 0.1], &[f64::NAN, 0.5]));
        // NaN-containing vectors are never exact duplicates.
        let pts = vec![vec![f64::NAN, 0.5], vec![f64::NAN, 0.5]];
        assert_eq!(skyline(&pts), vec![0, 1]);
    }

    /// Regression for the seed-era 2D kernel, whose
    /// `partial_cmp(..).unwrap_or(Equal)` sort silently misordered NaN
    /// points: the dispatcher's 2D scan must agree with the pairwise
    /// baseline on NaN- and ∞-laced two-measure inputs.
    #[test]
    fn skyline_2d_nan_and_infinite_regression() {
        let pts = vec![
            vec![f64::NAN, 0.2],
            vec![0.3, 0.4],
            vec![f64::NAN, f64::NAN],
            vec![0.1, f64::NAN],
            vec![f64::INFINITY, 0.05],
            vec![f64::NEG_INFINITY, 0.9],
            vec![0.2, 0.5],
        ];
        let base = skyline_pairwise_baseline(&pts);
        assert_eq!(skyline(&pts), base);
        // Pin the exact set. Vacuous NaN checks make dominance cyclic here:
        // [inf, 0.05] beats [NaN, 0.2] on y, [0.1, NaN] beats [inf, 0.05]
        // on x, [-inf, 0.9] beats [0.1, NaN] on x, and [NaN, 0.2] beats
        // [-inf, 0.9] (and every finite point) on y — so only the all-NaN
        // vector, which nothing strictly beats, survives.
        assert_eq!(base, vec![2]);
    }

    /// Two points closer than the dominance tolerance on every coordinate
    /// do not dominate each other — both must survive, in 2D and beyond.
    #[test]
    fn sub_tolerance_pairs_both_survive() {
        let pts2 = vec![vec![0.1, 0.5], vec![0.1, 0.5 - 5e-13]];
        assert_eq!(skyline(&pts2), vec![0, 1]);
        let pts3 = vec![vec![0.1, 0.5, 0.2], vec![0.1, 0.5 - 5e-13, 0.2 + 5e-13]];
        assert_eq!(skyline(&pts3), vec![0, 1]);
    }

    #[test]
    fn dominated_flags_match_pairwise_definition() {
        let pts = vec![
            vec![0.1, 0.5, 0.3],
            vec![0.2, 0.6, 0.4],
            vec![0.1, 0.5, 0.3],
            vec![0.5, 0.1, 0.9],
        ];
        // Index 1 is dominated by 0 (and 2); duplicates are not flagged.
        assert_eq!(dominated_flags(&pts), vec![false, true, false, false]);
    }
}
