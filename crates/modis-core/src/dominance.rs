//! Dominance relations and skyline computation (§4, §5.1).
//!
//! * [`dominates`] — strict Pareto dominance over normalised minimise-form
//!   performance vectors;
//! * [`epsilon_dominates`] — the `(1+ε)` relaxation used by the
//!   `(N, ε)`-approximation;
//! * [`skyline`] — exact Pareto front (Kung-style divide and conquer for
//!   2–3 measures, simple filtering otherwise);
//! * [`epsilon_skyline_cover`] — verifies the ε-skyline covering property.

/// Strict Pareto dominance: `a ≺ b` means `b` dominates `a`.
///
/// `b` dominates `a` iff `b` is no worse on every measure and strictly better
/// on at least one (all measures minimised).
pub fn dominates(b: &[f64], a: &[f64]) -> bool {
    if a.len() != b.len() || a.is_empty() {
        return false;
    }
    let mut strictly_better = false;
    for (x, y) in b.iter().zip(a.iter()) {
        if *x > y + 1e-12 {
            return false;
        }
        if *x < y - 1e-12 {
            strictly_better = true;
        }
    }
    strictly_better
}

/// ε-dominance `b ⪰_ε a`: `b.p ≤ (1+ε)·a.p` for every measure and `b.p* ≤
/// a.p*` for at least one (decisive) measure.
pub fn epsilon_dominates(b: &[f64], a: &[f64], epsilon: f64) -> bool {
    if a.len() != b.len() || a.is_empty() {
        return false;
    }
    let factor = 1.0 + epsilon;
    let mut some_no_worse = false;
    for (x, y) in b.iter().zip(a.iter()) {
        if *x > factor * y + 1e-12 {
            return false;
        }
        if *x <= *y + 1e-12 {
            some_no_worse = true;
        }
    }
    some_no_worse
}

/// Exact skyline (Pareto front) of a set of performance vectors; returns the
/// indices of non-dominated vectors, preserving input order.
///
/// For two objectives the classic Kung sort-and-scan algorithm is used
/// (`O(n log n)`); otherwise a pairwise filter (`O(n²·|P|)`) is used, which
/// is adequate for the bounded state counts explored by MODis.
pub fn skyline(points: &[Vec<f64>]) -> Vec<usize> {
    if points.is_empty() {
        return Vec::new();
    }
    let dims = points[0].len();
    if dims == 2 {
        return skyline_2d(points);
    }
    let mut result = Vec::new();
    'outer: for (i, p) in points.iter().enumerate() {
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            if dominates(q, p) {
                continue 'outer;
            }
            // Tie-break exact duplicates: keep only the first occurrence.
            if j < i && q == p {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

/// Kung's algorithm specialised to two minimised objectives.
fn skyline_2d(points: &[Vec<f64>]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| {
        points[a][0]
            .partial_cmp(&points[b][0])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(
                points[a][1]
                    .partial_cmp(&points[b][1])
                    .unwrap_or(std::cmp::Ordering::Equal),
            )
    });
    let mut best_second = f64::INFINITY;
    let mut keep = Vec::new();
    for &i in &idx {
        if points[i][1] < best_second - 1e-12 {
            keep.push(i);
            best_second = points[i][1];
        }
    }
    keep.sort_unstable();
    keep
}

/// Checks the ε-skyline covering property: every vector in `all` is
/// ε-dominated by some member of `subset` (given as indices into `all`).
pub fn epsilon_skyline_cover(all: &[Vec<f64>], subset: &[usize], epsilon: f64) -> bool {
    all.iter().enumerate().all(|(i, p)| {
        subset.contains(&i)
            || subset
                .iter()
                .any(|&j| epsilon_dominates(&all[j], p, epsilon))
    })
}

/// Removes vectors of `indices` that are dominated by another member of
/// `indices` (mutual non-dominance property of a skyline set).
pub fn prune_dominated(points: &[Vec<f64>], indices: &[usize]) -> Vec<usize> {
    indices
        .iter()
        .copied()
        .filter(|&i| {
            !indices
                .iter()
                .any(|&j| j != i && dominates(&points[j], &points[i]))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basic_cases() {
        assert!(dominates(&[0.1, 0.2], &[0.2, 0.3]));
        assert!(!dominates(&[0.2, 0.3], &[0.1, 0.2]));
        assert!(!dominates(&[0.1, 0.4], &[0.2, 0.3]));
        // Equal vectors do not dominate each other.
        assert!(!dominates(&[0.1, 0.2], &[0.1, 0.2]));
        assert!(!dominates(&[], &[]));
    }

    #[test]
    fn paper_example_4_dominance() {
        // Performance vectors of D1..D5 from Example 4 (RMSE, R̂², T_train).
        let d = [
            vec![0.48, 0.33, 0.37],
            vec![0.41, 0.24, 0.37],
            vec![0.26, 0.15, 0.37],
            vec![0.37, 0.22, 0.39],
            vec![0.25, 0.18, 0.35],
        ];
        // D1 ≺ D2 ≺ D3 and D4 ≺ D5 (later dominates earlier).
        assert!(dominates(&d[1], &d[0]));
        assert!(dominates(&d[2], &d[1]));
        assert!(dominates(&d[4], &d[3]));
        // D3 ⊀ D5 and D5 ⊀ D3.
        assert!(!dominates(&d[2], &d[4]));
        assert!(!dominates(&d[4], &d[2]));
        // Skyline = {D3, D5} = indices {2, 4}.
        let sky = skyline(&d);
        assert_eq!(sky, vec![2, 4]);
    }

    #[test]
    fn epsilon_dominance_relaxation() {
        // Slightly worse on one measure but within (1+ε).
        assert!(epsilon_dominates(&[0.11, 0.2], &[0.1, 0.25], 0.2));
        assert!(!epsilon_dominates(&[0.2, 0.2], &[0.1, 0.25], 0.2));
        // ε = 0 reduces to weak dominance with the "some no worse" clause.
        assert!(epsilon_dominates(&[0.1, 0.2], &[0.1, 0.2], 0.0));
    }

    #[test]
    fn skyline_2d_matches_generic() {
        let pts: Vec<Vec<f64>> = vec![
            vec![0.1, 0.9],
            vec![0.2, 0.5],
            vec![0.3, 0.6],
            vec![0.5, 0.2],
            vec![0.9, 0.1],
            vec![0.6, 0.6],
        ];
        let sky2 = skyline(&pts);
        // Generic path by adding a constant third dimension.
        let pts3: Vec<Vec<f64>> = pts.iter().map(|p| vec![p[0], p[1], 0.5]).collect();
        let mut sky3 = skyline(&pts3);
        sky3.sort_unstable();
        assert_eq!(sky2, sky3);
        assert!(sky2.contains(&0) && sky2.contains(&4));
        assert!(!sky2.contains(&2));
    }

    #[test]
    fn skyline_of_duplicates_keeps_one() {
        let pts = vec![vec![0.1, 0.1, 0.1], vec![0.1, 0.1, 0.1]];
        assert_eq!(skyline(&pts), vec![0]);
    }

    #[test]
    fn cover_property_detects_missing_coverage() {
        let all = vec![vec![0.1, 0.5], vec![0.5, 0.1], vec![0.12, 0.55]];
        assert!(epsilon_skyline_cover(&all, &[0, 1], 0.2));
        assert!(!epsilon_skyline_cover(&all, &[1], 0.2));
    }

    #[test]
    fn prune_dominated_removes_inner_points() {
        let pts = vec![vec![0.1, 0.5], vec![0.2, 0.6], vec![0.5, 0.1]];
        let pruned = prune_dominated(&pts, &[0, 1, 2]);
        assert_eq!(pruned, vec![0, 2]);
    }
}
