//! A bounded memo table with second-chance ("generation clock") eviction.
//!
//! The substrates memoise raw metric vectors per state and the engine keeps
//! a process-wide evaluation store; both previously grew without bound over
//! long suites (a ROADMAP open item). [`ClockCache`] bounds them with the
//! classic clock policy: every entry carries a referenced bit that hits set
//! and the rotating hand clears, so recently used evaluations survive while
//! cold ones are reclaimed in O(1) amortised time — no per-access list
//! splicing like LRU, which matters under the `Mutex`es these caches live
//! behind.

use std::collections::HashMap;
use std::hash::Hash;

struct Slot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// A bounded `K → V` map with second-chance eviction. Capacity 0 means
/// unbounded (the pre-eviction behaviour).
pub struct ClockCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    hand: usize,
    evictions: usize,
}

impl<K: Eq + Hash + Clone, V> ClockCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        ClockCache {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            evictions: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries evicted so far.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Looks up `key`, marking the entry as recently used. Accepts any
    /// borrowed form of the key (like `HashMap::get`), so callers can probe
    /// without materialising an owned key.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let &idx = self.map.get(key)?;
        let slot = &mut self.slots[idx];
        slot.referenced = true;
        Some(&slot.value)
    }

    /// Mutable lookup, marking the entry as recently used.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let &idx = self.map.get(key)?;
        let slot = &mut self.slots[idx];
        slot.referenced = true;
        Some(&mut slot.value)
    }

    /// Whether `key` is stored (does not touch the referenced bit).
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Inserts or replaces `key`'s entry, evicting the clock victim when the
    /// cache is full. Returns `true` when an unrelated entry was evicted.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            let slot = &mut self.slots[idx];
            slot.value = value;
            slot.referenced = true;
            return false;
        }
        if self.capacity == 0 || self.slots.len() < self.capacity {
            self.map.insert(key.clone(), self.slots.len());
            self.slots.push(Slot {
                key,
                value,
                referenced: true,
            });
            return false;
        }
        // Second chance: clear referenced bits until a cold victim turns up.
        // Terminates within two sweeps — the first clears every bit.
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = &mut self.slots[idx];
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            self.map.remove(&slot.key);
            self.map.insert(key.clone(), idx);
            *slot = Slot {
                key,
                value,
                referenced: true,
            };
            self.evictions += 1;
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = ClockCache::new(0);
        for i in 0..100 {
            c.insert(i, i * 2);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&99), Some(&198));
    }

    #[test]
    fn bounded_cache_holds_capacity_and_counts_evictions() {
        let mut c = ClockCache::new(4);
        for i in 0..10 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.evictions(), 6);
    }

    #[test]
    fn referenced_entries_survive_one_sweep() {
        let mut c = ClockCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        // Inserting "d" sweeps once (clearing every insertion-set bit),
        // wraps, and evicts the first cold slot: "a". Afterwards the hand
        // rests on "b" and both "b" and "c" are cold.
        c.insert("d", 4);
        assert_eq!(c.len(), 3);
        assert!(!c.contains(&"a") && c.contains(&"d"));
        assert_eq!(c.evictions(), 1);
        // Re-mark "b": the next insertion's victim must skip it (second
        // chance) and take "c" instead. Without the referenced bit the hand
        // would evict "b" here.
        assert_eq!(c.get(&"b"), Some(&2));
        c.insert("e", 5);
        assert!(c.contains(&"b"), "referenced entry must survive the sweep");
        assert!(!c.contains(&"c"), "cold entry is the clock victim");
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut c = ClockCache::new(2);
        c.insert(1, "x");
        c.insert(1, "y");
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&1), Some(&"y"));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut c = ClockCache::new(2);
        c.insert(1, vec![1.0]);
        c.get_mut(&1).unwrap().push(2.0);
        assert_eq!(c.get(&1), Some(&vec![1.0, 2.0]));
    }
}
