//! A bounded memo table with second-chance ("generation clock") eviction.
//!
//! The substrates memoise raw metric vectors per state and the engine keeps
//! a process-wide evaluation store; both previously grew without bound over
//! long suites (a ROADMAP open item). [`ClockCache`] bounds them with the
//! classic clock policy: every entry carries a referenced bit that hits set
//! and the rotating hand clears, so recently used evaluations survive while
//! cold ones are reclaimed in O(1) amortised time — no per-access list
//! splicing like LRU, which matters under the `Mutex`es these caches live
//! behind.

use std::collections::HashMap;
use std::hash::Hash;

struct Slot<K, V> {
    key: K,
    value: V,
    referenced: bool,
}

/// A bounded `K → V` map with second-chance eviction. Capacity 0 means
/// unbounded (the pre-eviction behaviour).
pub struct ClockCache<K, V> {
    capacity: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    hand: usize,
    evictions: usize,
}

impl<K: Eq + Hash + Clone, V> ClockCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 = unbounded).
    pub fn new(capacity: usize) -> Self {
        ClockCache {
            capacity,
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            evictions: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The configured capacity (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries evicted so far.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Current position of the clock hand (the next eviction candidate).
    pub fn hand(&self) -> usize {
        self.hand
    }

    /// Iterates the stored entries in *slot order* together with their
    /// referenced bits. Slot order plus [`Self::hand`] fully determines
    /// future eviction behaviour, so a snapshot taken through this iterator
    /// and replayed through [`Self::restore_slot`] / [`Self::set_hand`]
    /// reproduces the cache exactly — values, order and eviction schedule.
    pub fn iter_slots(&self) -> impl Iterator<Item = (&K, &V, bool)> {
        self.slots.iter().map(|s| (&s.key, &s.value, s.referenced))
    }

    /// Appends an entry as the next slot, preserving an explicit referenced
    /// bit — the restore-side counterpart of [`Self::iter_slots`]. Returns
    /// `false` (and stores nothing) when the key is already present or the
    /// cache is at capacity; restores into a smaller cache should fall back
    /// to [`Self::insert`].
    pub fn restore_slot(&mut self, key: K, value: V, referenced: bool) -> bool {
        if self.map.contains_key(&key) {
            return false;
        }
        if self.capacity != 0 && self.slots.len() >= self.capacity {
            return false;
        }
        self.map.insert(key.clone(), self.slots.len());
        self.slots.push(Slot {
            key,
            value,
            referenced,
        });
        true
    }

    /// Repositions the clock hand (clamped into the slot range); pairs with
    /// [`Self::restore_slot`] when rebuilding a cache from a snapshot.
    pub fn set_hand(&mut self, hand: usize) {
        self.hand = if self.slots.is_empty() {
            0
        } else {
            hand % self.slots.len()
        };
    }

    /// Looks up `key`, marking the entry as recently used. Accepts any
    /// borrowed form of the key (like `HashMap::get`), so callers can probe
    /// without materialising an owned key.
    pub fn get<Q>(&mut self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let &idx = self.map.get(key)?;
        let slot = &mut self.slots[idx];
        slot.referenced = true;
        Some(&slot.value)
    }

    /// Mutable lookup, marking the entry as recently used.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        let &idx = self.map.get(key)?;
        let slot = &mut self.slots[idx];
        slot.referenced = true;
        Some(&mut slot.value)
    }

    /// Whether `key` is stored (does not touch the referenced bit).
    pub fn contains<Q>(&self, key: &Q) -> bool
    where
        K: std::borrow::Borrow<Q>,
        Q: Hash + Eq + ?Sized,
    {
        self.map.contains_key(key)
    }

    /// Inserts or replaces `key`'s entry, evicting the clock victim when the
    /// cache is full. Returns `true` when an unrelated entry was evicted.
    pub fn insert(&mut self, key: K, value: V) -> bool {
        if let Some(&idx) = self.map.get(&key) {
            let slot = &mut self.slots[idx];
            slot.value = value;
            slot.referenced = true;
            return false;
        }
        if self.capacity == 0 || self.slots.len() < self.capacity {
            self.map.insert(key.clone(), self.slots.len());
            self.slots.push(Slot {
                key,
                value,
                referenced: true,
            });
            return false;
        }
        // Second chance: clear referenced bits until a cold victim turns up.
        // Terminates within two sweeps — the first clears every bit.
        loop {
            let idx = self.hand;
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = &mut self.slots[idx];
            if slot.referenced {
                slot.referenced = false;
                continue;
            }
            self.map.remove(&slot.key);
            self.map.insert(key.clone(), idx);
            *slot = Slot {
                key,
                value,
                referenced: true,
            };
            self.evictions += 1;
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_cache_never_evicts() {
        let mut c = ClockCache::new(0);
        for i in 0..100 {
            c.insert(i, i * 2);
        }
        assert_eq!(c.len(), 100);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&99), Some(&198));
    }

    #[test]
    fn bounded_cache_holds_capacity_and_counts_evictions() {
        let mut c = ClockCache::new(4);
        for i in 0..10 {
            c.insert(i, i);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.evictions(), 6);
    }

    #[test]
    fn referenced_entries_survive_one_sweep() {
        let mut c = ClockCache::new(3);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3);
        // Inserting "d" sweeps once (clearing every insertion-set bit),
        // wraps, and evicts the first cold slot: "a". Afterwards the hand
        // rests on "b" and both "b" and "c" are cold.
        c.insert("d", 4);
        assert_eq!(c.len(), 3);
        assert!(!c.contains(&"a") && c.contains(&"d"));
        assert_eq!(c.evictions(), 1);
        // Re-mark "b": the next insertion's victim must skip it (second
        // chance) and take "c" instead. Without the referenced bit the hand
        // would evict "b" here.
        assert_eq!(c.get(&"b"), Some(&2));
        c.insert("e", 5);
        assert!(c.contains(&"b"), "referenced entry must survive the sweep");
        assert!(!c.contains(&"c"), "cold entry is the clock victim");
        assert_eq!(c.evictions(), 2);
    }

    #[test]
    fn replacing_a_key_does_not_evict() {
        let mut c = ClockCache::new(2);
        c.insert(1, "x");
        c.insert(1, "y");
        assert_eq!(c.len(), 1);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&1), Some(&"y"));
    }

    #[test]
    fn slot_snapshot_reproduces_eviction_schedule() {
        // Build a cache with a mixed referenced pattern and a moved hand…
        let mut original = ClockCache::new(3);
        original.insert("a", 1);
        original.insert("b", 2);
        original.insert("c", 3);
        original.insert("d", 4); // evicts "a", hand moves
        original.get(&"b");

        // …replay its slots and hand into a fresh cache…
        let mut restored = ClockCache::new(3);
        let slots: Vec<(&str, i32, bool)> =
            original.iter_slots().map(|(k, v, r)| (*k, *v, r)).collect();
        for (k, v, r) in slots {
            assert!(restored.restore_slot(k, v, r));
        }
        restored.set_hand(original.hand());

        // …and check both caches pick the same victim next.
        original.insert("x", 9);
        restored.insert("x", 9);
        fn keys(c: &ClockCache<&'static str, i32>) -> Vec<&'static str> {
            let mut k: Vec<&'static str> = c.iter_slots().map(|(k, _, _)| *k).collect();
            k.sort_unstable();
            k
        }
        assert_eq!(keys(&original), keys(&restored));
    }

    #[test]
    fn restore_slot_refuses_duplicates_and_overflow() {
        let mut c = ClockCache::new(2);
        assert!(c.restore_slot(1, "a", true));
        assert!(!c.restore_slot(1, "b", false), "duplicate key");
        assert!(c.restore_slot(2, "b", false));
        assert!(!c.restore_slot(3, "c", true), "beyond capacity");
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&1), Some(&"a"));
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut c = ClockCache::new(2);
        c.insert(1, vec![1.0]);
        c.get_mut(&1).unwrap().push(2.0);
        assert_eq!(c.get(&1), Some(&vec![1.0, 2.0]));
    }
}
