//! The search-space abstraction shared by the MODis algorithms.
//!
//! The paper formalises data generation as a finite-state transducer whose
//! states are artefacts (tables in T1–T4, bipartite graphs in T5) encoded by
//! a bitmap `L` over "reducible units" (attributes and active-domain
//! clusters). A [`Substrate`] exposes exactly what the algorithms need:
//!
//! * the bitmap universe and its start states (universal `s_U`, backward
//!   `s_b` from `BackSt`);
//! * the oracle evaluation of a state (materialise the artefact, train the
//!   model, compute raw metrics);
//! * a feature encoding of a state for the surrogate estimator `E`;
//! * reporting helpers (artefact size, unit labels).
//!
//! Two implementations are provided: [`crate::table_substrate::TableSubstrate`]
//! (tabular tasks) and [`crate::graph_substrate::GraphSubstrate`] (task T5).

use std::hash::{Hash, Hasher};

use modis_data::StateBitmap;

use crate::codec::StableHasher;
use crate::measure::MeasureSet;

/// Counters of a substrate-level evaluation memo (raw metrics / features
/// remembered per visited state). Returned by [`Substrate::memo_stats`] and
/// aggregated with the engine's shared-cache counters by
/// `modis-engine`'s `Engine::cache_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubstrateCacheStats {
    /// Entries currently memoised.
    pub entries: usize,
    /// Entries evicted by the clock policy so far.
    pub evictions: usize,
}

impl SubstrateCacheStats {
    /// Accumulates another memo's counters into this one.
    pub fn merge(&mut self, other: SubstrateCacheStats) {
        self.entries += other.entries;
        self.evictions += other.evictions;
    }
}

/// A search space over artefacts encoded by state bitmaps.
///
/// Substrates are required to be `Send + Sync`: the execution engine
/// (`modis-engine`) evaluates `op_gen` children and whole scenarios across
/// threads, sharing one substrate reference. Implementations that memoise
/// internally must use thread-safe interior mutability (both bundled
/// substrates guard their caches with a `Mutex`).
pub trait Substrate: Send + Sync {
    /// Number of reducible units (bitmap length).
    fn num_units(&self) -> usize;

    /// Human-readable label of a unit (attribute name / cluster literal).
    fn unit_label(&self, unit: usize) -> String;

    /// The universal start state `s_U` (everything present).
    fn forward_start(&self) -> StateBitmap {
        StateBitmap::full(self.num_units())
    }

    /// The backward start state `s_b` produced by `BackSt` (§5.3): a minimal
    /// artefact from which augmentation proceeds.
    fn backward_start(&self) -> StateBitmap;

    /// The measure set `P` of the underlying task.
    fn measures(&self) -> &MeasureSet;

    /// Oracle evaluation: materialises the artefact of `bitmap`, trains the
    /// downstream model and returns the *raw* metric values aligned with
    /// [`Self::measures`].
    fn evaluate_raw(&self, bitmap: &StateBitmap) -> Vec<f64>;

    /// Numeric feature encoding of a state, used to train/query the
    /// surrogate estimator. Implementations should return cheap,
    /// artefact-level summary statistics (never model-inference results).
    fn state_features(&self, bitmap: &StateBitmap) -> Vec<f64>;

    /// Reported artefact size `(rows, columns)` / `(edges, feature dims)`.
    fn artifact_size(&self, bitmap: &StateBitmap) -> (usize, usize);

    /// Units that may not be flipped by reduction (e.g. the unit backing the
    /// target attribute). Default: none.
    fn protected_units(&self) -> Vec<usize> {
        Vec::new()
    }

    /// A structural fingerprint of the search space: two substrates whose
    /// fingerprints differ must never share an evaluation-cache namespace —
    /// a `StateBitmap` only identifies a dataset *relative to* the substrate
    /// that produced it, so cross-substrate sharing silently poisons
    /// valuations. The default folds everything that determines what a
    /// bitmap means (unit count and labels, start states, protected units)
    /// and what an evaluation means (the measure set) into one hash; see
    /// [`structural_fingerprint`]. Implementations whose valuations depend
    /// on more than the structure (e.g. a downstream model spec) should
    /// override this and mix the extra identity in.
    fn fingerprint(&self) -> u64 {
        structural_fingerprint(self)
    }

    /// Counters of the substrate's internal evaluation memo, if it keeps
    /// one. Default: an empty memo (for substrates that recompute every
    /// valuation).
    fn memo_stats(&self) -> SubstrateCacheStats {
        SubstrateCacheStats::default()
    }
}

/// The structural part of a substrate's identity: unit count and labels,
/// start states, protected units and the measure set, folded into one hash.
/// This is the default [`Substrate::fingerprint`]; overrides reuse it and
/// mix in whatever extra state their valuations depend on.
///
/// Hashed with [`StableHasher`], not std's `DefaultHasher`: fingerprints
/// are persisted inside evaluation-cache snapshots and compared across
/// processes (and toolchains) to keep a warm-started namespace from
/// serving another substrate's evaluations.
pub fn structural_fingerprint<S: Substrate + ?Sized>(substrate: &S) -> u64 {
    let mut h = StableHasher::new();
    substrate.num_units().hash(&mut h);
    for unit in 0..substrate.num_units() {
        substrate.unit_label(unit).hash(&mut h);
    }
    substrate.forward_start().hash(&mut h);
    substrate.backward_start().hash(&mut h);
    substrate.protected_units().hash(&mut h);
    for spec in substrate.measures().specs() {
        spec.name.hash(&mut h);
        (spec.direction == crate::measure::Direction::HigherIsBetter).hash(&mut h);
        spec.scale.to_bits().hash(&mut h);
        spec.lower.to_bits().hash(&mut h);
        spec.upper.to_bits().hash(&mut h);
    }
    h.finish()
}

pub mod mock {
    //! A tiny synthetic substrate used by algorithm tests (here and in
    //! `modis-engine`): the "model quality" improves when specific bits are
    //! cleared and the "cost" decreases with the number of set bits, so the
    //! Pareto front is known in closed form. Evaluation is pure and
    //! instantaneous — ideal for equivalence and determinism tests.

    use super::*;
    use crate::measure::MeasureSpec;

    /// Deterministic two-measure mock substrate over `n` units.
    pub struct MockSubstrate {
        /// Number of units.
        pub n: usize,
        measures: MeasureSet,
    }

    impl MockSubstrate {
        /// Creates a mock substrate over `n` units.
        pub fn new(n: usize) -> Self {
            MockSubstrate {
                n,
                measures: MeasureSet::new(vec![
                    MeasureSpec::maximise("p_quality"),
                    MeasureSpec::minimise("p_cost", 1.0),
                ]),
            }
        }
    }

    impl Substrate for MockSubstrate {
        fn num_units(&self) -> usize {
            self.n
        }

        fn unit_label(&self, unit: usize) -> String {
            format!("u{unit}")
        }

        fn backward_start(&self) -> StateBitmap {
            StateBitmap::empty(self.n)
        }

        fn measures(&self) -> &MeasureSet {
            &self.measures
        }

        fn evaluate_raw(&self, bitmap: &StateBitmap) -> Vec<f64> {
            // Quality: fraction of even-indexed bits that are set (those are
            // the "informative" units); odd bits are noise.
            let informative: Vec<usize> = (0..self.n).step_by(2).collect();
            let kept = informative.iter().filter(|&&i| bitmap.get(i)).count();
            let quality = if informative.is_empty() {
                0.0
            } else {
                kept as f64 / informative.len() as f64
            };
            // Cost: grows with the total number of set bits.
            let cost = 0.05 + 0.9 * bitmap.count_ones() as f64 / self.n.max(1) as f64;
            vec![quality, cost.min(1.0)]
        }

        fn state_features(&self, bitmap: &StateBitmap) -> Vec<f64> {
            vec![bitmap.count_ones() as f64, bitmap.count_zeros() as f64]
        }

        fn artifact_size(&self, bitmap: &StateBitmap) -> (usize, usize) {
            (bitmap.count_ones() * 10, bitmap.count_ones())
        }
    }

    #[test]
    fn fingerprint_separates_incompatible_spaces() {
        let a = MockSubstrate::new(6);
        let b = MockSubstrate::new(6);
        let c = MockSubstrate::new(7);
        // Same structure ⇒ same fingerprint (instances may share a cache
        // namespace); different unit universe ⇒ different fingerprint.
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.memo_stats(), SubstrateCacheStats::default());
    }

    #[test]
    fn mock_substrate_quality_and_cost_move_as_designed() {
        let s = MockSubstrate::new(6);
        let full = s.evaluate_raw(&s.forward_start());
        let empty = s.evaluate_raw(&s.backward_start());
        assert!(full[0] > empty[0]);
        assert!(full[1] > empty[1]);
        // Dropping a noise (odd) bit keeps quality but lowers cost.
        let dropped = s.evaluate_raw(&s.forward_start().flipped(1));
        assert_eq!(dropped[0], full[0]);
        assert!(dropped[1] < full[1]);
        assert_eq!(s.unit_label(2), "u2");
        assert_eq!(s.artifact_size(&s.forward_start()), (60, 6));
    }
}
