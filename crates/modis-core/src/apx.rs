//! ApxMODis: the "reduce-from-universal" `(N, ε)`-approximation (Alg. 1).
//!
//! The search starts from the universal state `s_U` (all bitmap entries set)
//! and explores one-flip reductions level by level. Every spawned state is
//! valuated (estimator or oracle, §5.2) and offered to the ε-skyline grid
//! (`UPareto`); the search stops when `N` states have been valuated, the
//! maximum path length is reached, or no new state can be generated.

use std::collections::VecDeque;
use std::time::Instant;

use crate::config::{ModisConfig, SkylineResult};
use crate::estimator::ValuationContext;
use crate::pareto::EpsilonSkyline;
use crate::search_common::{finalize_result, op_gen, Direction, ProtectedSet, VisitedSet};
use crate::substrate::Substrate;

/// Runs ApxMODis over a substrate.
pub fn apx_modis<S: Substrate + ?Sized>(substrate: &S, config: &ModisConfig) -> SkylineResult {
    let ctx = ValuationContext::new(substrate, config.estimator);
    apx_modis_with_context(&ctx, config)
}

/// Runs ApxMODis with an externally managed valuation context (lets callers
/// share test records across runs, as the experiments do).
pub fn apx_modis_with_context<S: Substrate + ?Sized>(
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
) -> SkylineResult {
    let start = Instant::now();
    let substrate = ctx.substrate();
    let measures = substrate.measures().clone();
    let protected = ProtectedSet::of(substrate);
    let mut skyline = EpsilonSkyline::new(measures, config.epsilon, config.decisive);
    let mut visited = VisitedSet::new();
    let mut queue: VecDeque<(modis_data::StateBitmap, usize)> = VecDeque::new();

    let s_u = substrate.forward_start();
    let perf_u = ctx.valuate(&s_u);
    skyline.offer(&s_u, &perf_u, 0);
    visited.insert(&s_u);
    queue.push_back((s_u, 0));

    while let Some((state, level)) = queue.pop_front() {
        if ctx.num_valuated() >= config.max_states {
            break;
        }
        if level >= config.max_level {
            continue;
        }
        for child in op_gen(&state, Direction::Forward, &protected) {
            if ctx.num_valuated() >= config.max_states {
                break;
            }
            if !visited.insert(&child) {
                continue;
            }
            let perf = ctx.valuate(&child);
            skyline.offer(&child, &perf, level + 1);
            queue.push_back((child, level + 1));
        }
    }

    finalize_result(&skyline, ctx, config, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::epsilon_dominates;
    use crate::estimator::EstimatorMode;
    use crate::substrate::mock::MockSubstrate;

    fn oracle_config() -> ModisConfig {
        ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_epsilon(0.1)
            .with_max_states(200)
            .with_max_level(6)
    }

    #[test]
    fn apx_finds_nondominated_states_on_mock() {
        let sub = MockSubstrate::new(6);
        let res = apx_modis(&sub, &oracle_config());
        assert!(!res.is_empty());
        // The ideal state keeps the informative (even) units and drops the
        // odd ones: quality 1.0 with reduced cost. The skyline must contain a
        // state that ε-dominates the universal state.
        let full_perf = sub
            .measures()
            .normalise(&sub.evaluate_raw(&sub.forward_start()));
        assert!(res
            .entries
            .iter()
            .any(|e| epsilon_dominates(&e.perf, &full_perf, 0.1)));
        // No member dominates another (mutual non-dominance).
        for a in &res.entries {
            for b in &res.entries {
                assert!(!crate::dominance::dominates(&a.perf, &b.perf) || a.bitmap == b.bitmap);
            }
        }
        assert!(res.states_valuated <= 200);
        assert!(res.elapsed_seconds >= 0.0);
    }

    #[test]
    fn apx_respects_state_budget() {
        let sub = MockSubstrate::new(10);
        let cfg = oracle_config().with_max_states(15);
        let res = apx_modis(&sub, &cfg);
        assert!(
            res.states_valuated <= 16,
            "valuated {}",
            res.states_valuated
        );
    }

    #[test]
    fn apx_respects_max_level() {
        let sub = MockSubstrate::new(8);
        let cfg = oracle_config().with_max_level(1).with_max_states(1000);
        let res = apx_modis(&sub, &cfg);
        // Level ≤ 1 means at most 1 + 8 states valuated.
        assert!(res.states_valuated <= 9);
        assert!(res.entries.iter().all(|e| e.level <= 1));
    }

    #[test]
    fn smaller_epsilon_gives_no_worse_best_quality() {
        let sub = MockSubstrate::new(8);
        let coarse = apx_modis(&sub, &oracle_config().with_epsilon(0.5));
        let fine = apx_modis(&sub, &oracle_config().with_epsilon(0.05));
        let best = |r: &SkylineResult| {
            r.entries
                .iter()
                .map(|e| e.perf[0])
                .fold(f64::INFINITY, f64::min)
        };
        assert!(best(&fine) <= best(&coarse) + 1e-9);
    }
}
