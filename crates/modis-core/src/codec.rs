//! Minimal binary codec primitives for cache persistence.
//!
//! The workspace vendors no serde, so the evaluation-cache snapshots written
//! by `modis-service` use a hand-rolled little-endian format built from
//! these primitives: a [`ByteWriter`] that appends fixed-width integers and
//! floats to a buffer, a [`ByteReader`] that consumes them with explicit
//! truncation errors, and the FNV-1a [`checksum`] every snapshot is sealed
//! with. Keeping the primitives here (rather than in the service crate)
//! lets the cache types they serialise live next to their codecs.

use std::fmt;

/// Error raised when a [`ByteReader`] runs out of input or a decoded value
/// fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the requested value was complete.
    Truncated {
        /// Bytes requested by the failed read.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// A decoded value violated a structural invariant.
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, remaining } => {
                write!(
                    f,
                    "truncated input: needed {needed} bytes, {remaining} left"
                )
            }
            CodecError::Invalid(what) => write!(f, "invalid value: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends little-endian fixed-width values to a growable byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (round-trips NaN
    /// payloads and signed zeros exactly).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string (`u64` byte length, then the
    /// bytes). Used by formats that carry names — e.g. the namespace
    /// manifest of a cluster snapshot shipment.
    pub fn put_str(&mut self, s: &str) {
        self.put_u64(s.len() as u64);
        self.put_bytes(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// The buffer written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }
}

/// Consumes little-endian fixed-width values from a byte slice, reporting
/// truncation instead of panicking.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Reads `n` raw bytes.
    pub fn get_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a `u64` and checks it fits a `usize` no larger than `limit` —
    /// the guard that keeps a corrupted length field from driving a huge
    /// allocation.
    pub fn get_len(&mut self, limit: usize) -> Result<usize, CodecError> {
        let v = self.get_u64()?;
        if v > limit as u64 {
            return Err(CodecError::Invalid("length field exceeds limit"));
        }
        Ok(v as usize)
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a string written by [`ByteWriter::put_str`]: the length field
    /// is bounds-checked against both `limit` and the remaining input, and
    /// the bytes must be valid UTF-8.
    pub fn get_str(&mut self, limit: usize) -> Result<String, CodecError> {
        let len = self.get_len(limit.min(self.remaining()))?;
        let bytes = self.get_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("string is not UTF-8"))
    }
}

/// FNV-1a offset basis — the seed for [`fnv1a`].
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

/// FNV-1a continuation over `bytes` from state `h`. This is the single
/// source of truth for every hash that outlives the process (snapshot
/// checksums, persisted namespace keys, shard placement, substrate
/// fingerprints): std's `DefaultHasher` is explicitly unspecified across
/// toolchains, so anything written to disk must avoid it.
pub fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over `bytes`: the cheap, dependency-free integrity seal appended
/// to every snapshot. Not cryptographic — it detects truncation and random
/// corruption, which is all a local cache file needs.
pub fn checksum(bytes: &[u8]) -> u64 {
    fnv1a(FNV_OFFSET_BASIS, bytes)
}

/// A [`std::hash::Hasher`] over [`fnv1a`], for identity hashes that must be
/// stable across processes and toolchains (e.g. substrate fingerprints,
/// which snapshots compare across restarts). Note the *stream* is stable;
/// callers should keep the `Hash` impls they feed it simple (integers,
/// strings, bit patterns) so the byte stream itself stays under this
/// crate's control.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl StableHasher {
    /// Creates a hasher seeded with the FNV offset basis.
    pub fn new() -> Self {
        StableHasher {
            state: FNV_OFFSET_BASIS,
        }
    }
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl std::hash::Hasher for StableHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        self.state = fnv1a(self.state, bytes);
    }

    // Route every fixed-width write through little-endian bytes so the
    // stream does not depend on platform endianness.
    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u16(&mut self, i: u16) {
        self.write(&i.to_le_bytes());
    }
    fn write_u32(&mut self, i: u32) {
        self.write(&i.to_le_bytes());
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_u128(&mut self, i: u128) {
        self.write(&i.to_le_bytes());
    }
    fn write_usize(&mut self, i: usize) {
        self.write(&(i as u64).to_le_bytes());
    }
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }
    fn write_i128(&mut self, i: i128) {
        self.write_u128(i as u128);
    }
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut w = ByteWriter::new();
        w.put_u8(0xAB);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f64(-0.0);
        w.put_f64(f64::NAN);
        w.put_bytes(b"tail");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 0xAB);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert!(r.get_f64().unwrap().is_sign_negative());
        assert!(r.get_f64().unwrap().is_nan());
        assert_eq!(r.get_bytes(4).unwrap(), b"tail");
        assert!(r.is_exhausted());
    }

    #[test]
    fn strings_round_trip_and_reject_bad_input() {
        let mut w = ByteWriter::new();
        w.put_str("t3-pool");
        w.put_str("");
        w.put_str("naïve ✓");
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_str(64).unwrap(), "t3-pool");
        assert_eq!(r.get_str(64).unwrap(), "");
        assert_eq!(r.get_str(64).unwrap(), "naïve ✓");
        assert!(r.is_exhausted());

        // Length beyond the limit is rejected before any allocation.
        let mut w = ByteWriter::new();
        w.put_str("abcdefgh");
        let bytes = w.into_bytes();
        assert_eq!(
            ByteReader::new(&bytes).get_str(4).unwrap_err(),
            CodecError::Invalid("length field exceeds limit")
        );
        // A length field pointing past the input is truncation, not a huge
        // allocation: the limit is clamped to the remaining bytes first.
        let mut w = ByteWriter::new();
        w.put_u64(1 << 40);
        assert!(ByteReader::new(w.bytes()).get_str(usize::MAX).is_err());
        // Invalid UTF-8 is a codec error, not a panic.
        let mut w = ByteWriter::new();
        w.put_u64(2);
        w.put_bytes(&[0xFF, 0xFE]);
        assert_eq!(
            ByteReader::new(w.bytes()).get_str(64).unwrap_err(),
            CodecError::Invalid("string is not UTF-8")
        );
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2, 3]);
        let err = r.get_u64().unwrap_err();
        assert_eq!(
            err,
            CodecError::Truncated {
                needed: 8,
                remaining: 3
            }
        );
        // The failed read consumed nothing.
        assert_eq!(r.remaining(), 3);
    }

    #[test]
    fn length_guard_rejects_absurd_fields() {
        let mut w = ByteWriter::new();
        w.put_u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.get_len(1 << 20).unwrap_err(),
            CodecError::Invalid("length field exceeds limit")
        );
    }

    #[test]
    fn stable_hasher_is_pinned_across_widths() {
        use std::hash::{Hash, Hasher};
        // Fingerprints are compared across processes, so the hasher's
        // stream must never drift — these literals pin it.
        let mut h = StableHasher::new();
        "pool".hash(&mut h);
        7usize.hash(&mut h);
        let first = h.finish();
        let mut again = StableHasher::new();
        "pool".hash(&mut again);
        7usize.hash(&mut again);
        assert_eq!(first, again.finish());
        let mut other = StableHasher::new();
        "pool".hash(&mut other);
        8usize.hash(&mut other);
        assert_ne!(first, other.finish());
        // Raw byte stream matches the fnv1a free function.
        let mut raw = StableHasher::new();
        raw.write(b"abc");
        assert_eq!(raw.finish(), fnv1a(FNV_OFFSET_BASIS, b"abc"));
    }

    #[test]
    fn checksum_changes_on_any_flip() {
        let base = b"snapshot payload".to_vec();
        let reference = checksum(&base);
        for i in 0..base.len() {
            let mut corrupted = base.clone();
            corrupted[i] ^= 1;
            assert_ne!(checksum(&corrupted), reference, "flip at byte {i}");
        }
        assert_eq!(checksum(&base), reference);
    }
}
