//! # modis-core
//!
//! The MODis framework: skyline dataset generation for data science models
//! ("Generating Skyline Datasets for Data Science Models", EDBT 2025),
//! implemented over the tabular substrate of [`modis_data`] and the ML
//! substrate of [`modis_ml`].
//!
//! ## Layout
//!
//! * [`measure`] — user-defined performance measures `P`, normalisation and
//!   the position grid of Eq. (1);
//! * [`dominance`] — Pareto and ε-dominance, exact skyline computation;
//! * [`task`] — downstream models `M` and oracle evaluation of datasets;
//! * [`substrate`] / [`table_substrate`] / [`graph_substrate`] — the
//!   finite-state-transducer search space over tables (T1–T4) and bipartite
//!   graphs (T5);
//! * [`estimator`] — the MO-GBM surrogate estimator `E` and the shared
//!   valuation context (test set `T`);
//! * [`pareto`] — the `UPareto` ε-skyline maintenance structure;
//! * [`correlation`] — the correlation graph `G_C` and parameterised
//!   dominance bounds;
//! * [`apx`] / [`bimodis`] / [`divmodis`] / [`exact`] — the paper's
//!   algorithms (ApxMODis, BiMODis, NOBiMODis, DivMODis, exact);
//! * [`baselines`] — METAM, METAM-MO, Starmie, SkSFM, H2O, HydraGAN-style
//!   comparators;
//! * [`config`] — run configuration and skyline results.
//!
//! ## Quick example
//!
//! ```
//! use modis_core::prelude::*;
//! use modis_data::{Attribute, Dataset, Schema, Value};
//!
//! // A tiny pool: one base table with an informative feature.
//! let base = Dataset::from_rows(
//!     "base",
//!     Schema::from_attributes(vec![
//!         Attribute::key("id"),
//!         Attribute::feature("x"),
//!         Attribute::target("y"),
//!     ]),
//!     (0..40)
//!         .map(|i| vec![Value::Int(i), Value::Float((i % 7) as f64), Value::Float(2.0 * (i % 7) as f64)])
//!         .collect(),
//! )
//! .unwrap();
//!
//! let task = TaskSpec {
//!     name: "demo".into(),
//!     model: ModelKind::LinearRegressor,
//!     target: "y".into(),
//!     key: Some("id".into()),
//!     measures: MeasureSet::new(vec![
//!         MeasureSpec::maximise("p_R2"),
//!         MeasureSpec::minimise("p_Train", 2.0),
//!     ]),
//!     metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
//!     train_ratio: 0.7,
//!     seed: 7,
//! };
//!
//! let substrate = TableSubstrate::from_pool(&[base], task, &TableSpaceConfig::default());
//! let config = ModisConfig::default().with_max_states(30).with_estimator(EstimatorMode::Oracle);
//! let skyline = apx_modis(&substrate, &config);
//! assert!(!skyline.is_empty());
//! ```

#![deny(missing_docs)]

pub mod apx;
pub mod baselines;
pub mod bimodis;
pub mod clock_cache;
pub mod codec;
pub mod config;
pub mod correlation;
pub mod divmodis;
pub mod dominance;
pub mod dominance_index;
pub mod estimator;
pub mod exact;
pub mod graph_substrate;
pub mod measure;
pub mod pareto;
pub mod search_common;
pub mod substrate;
pub mod table_substrate;
pub mod task;
pub mod telemetry;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::apx::{apx_modis, apx_modis_with_context};
    pub use crate::baselines::{
        h2o, hydragan_like, metam, metam_mo, original, sksfm, starmie, BaselineOutput,
    };
    pub use crate::bimodis::{bi_modis, bi_modis_with_context, bi_modis_with_stats, nobi_modis};
    pub use crate::clock_cache::ClockCache;
    pub use crate::config::{ModisConfig, SkylineEntry, SkylineResult};
    pub use crate::divmodis::{div_modis, div_modis_with_context, diversification_score};
    pub use crate::dominance::{
        dominated_flags, dominates, epsilon_dominates, skyline, skyline_pairwise_baseline,
        skyline_with_stats,
    };
    pub use crate::dominance_index::{
        skyline_blocks, skyline_indexed, skyline_scan_2d, skyline_sorted, DominanceIndex,
        DominanceStats,
    };
    pub use crate::estimator::{
        EstimatorMode, EvaluationHook, SharedEvaluation, ValuationContext, ValuationStats,
    };
    pub use crate::exact::{exact_modis, exact_modis_with_context};
    pub use crate::graph_substrate::{GraphSpaceConfig, GraphSubstrate};
    pub use crate::measure::{Direction as MeasureDirection, MeasureSet, MeasureSpec};
    pub use crate::search_common::ProtectedSet;
    pub use crate::substrate::{Substrate, SubstrateCacheStats};
    pub use crate::table_substrate::{TableSpaceConfig, TableSubstrate};
    pub use crate::task::{
        evaluate_dataset, evaluate_dataset_view, MetricKind, ModelKind, TaskEvaluation, TaskSpec,
    };
    pub use crate::telemetry::{
        Counter, Gauge, Histogram, MetricsRegistry, Span, SpanRecord, Telemetry, Tracer,
    };
}

pub use prelude::*;
