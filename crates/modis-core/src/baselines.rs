//! Baseline data-discovery and feature-selection methods compared against
//! MODis in §6: METAM, METAM-MO, Starmie, SkSFM, H2O and a HydraGAN-style
//! generative augmenter. Each baseline takes the same inputs as MODis (a base
//! table, a pool of candidate tables and a downstream task) and returns a
//! single output dataset plus its oracle evaluation, exactly as the paper's
//! tables report them.

use modis_data::{hash_join, union_all, Dataset, JoinKind, Value};
use modis_ml::encoding::encode;
use modis_ml::feature::top_k_features;
use modis_ml::forest::{ForestParams, RandomForest};
use modis_ml::linear::RidgeRegression;

use crate::task::{evaluate_dataset, TaskEvaluation, TaskSpec};

/// A baseline's output: the discovered dataset and its evaluation.
#[derive(Debug, Clone)]
pub struct BaselineOutput {
    /// Name of the method.
    pub method: String,
    /// The output dataset.
    pub dataset: Dataset,
    /// Oracle evaluation of the output dataset under the task.
    pub evaluation: TaskEvaluation,
}

fn finish(method: &str, dataset: Dataset, task: &TaskSpec) -> BaselineOutput {
    let evaluation = evaluate_dataset(task, &dataset);
    BaselineOutput {
        method: method.to_string(),
        dataset,
        evaluation,
    }
}

/// "Original": the input/base table evaluated as-is (the yardstick row of
/// Tables 4–6).
pub fn original(base: &Dataset, task: &TaskSpec) -> BaselineOutput {
    finish("Original", base.clone(), task)
}

/// METAM-style goal-oriented discovery: greedily joins candidate tables,
/// keeping a join only when the single utility measure (index
/// `utility_index` into the task's measures, compared on the *normalised*
/// minimise scale) improves.
pub fn metam(
    base: &Dataset,
    pool: &[Dataset],
    task: &TaskSpec,
    join_key: &str,
    utility_index: usize,
) -> BaselineOutput {
    let mut current = base.clone();
    let mut best = evaluate_dataset(task, &current);
    for candidate in pool {
        if candidate.name == base.name || !candidate.schema().contains(join_key) {
            continue;
        }
        let Ok(joined) = hash_join(&current, candidate, join_key, JoinKind::LeftOuter) else {
            continue;
        };
        let eval = evaluate_dataset(task, &joined);
        let better = eval.normalised.get(utility_index).copied().unwrap_or(1.0)
            < best.normalised.get(utility_index).copied().unwrap_or(1.0) - 1e-12;
        if better {
            current = joined;
            best = eval;
        }
    }
    BaselineOutput {
        method: "METAM".into(),
        dataset: current,
        evaluation: best,
    }
}

/// METAM-MO: the multi-objective extension that folds every measure into one
/// linear weighted utility (equal weights), as described in §6.
pub fn metam_mo(
    base: &Dataset,
    pool: &[Dataset],
    task: &TaskSpec,
    join_key: &str,
) -> BaselineOutput {
    let score = |eval: &TaskEvaluation| -> f64 { eval.normalised.iter().sum::<f64>() };
    let mut current = base.clone();
    let mut best = evaluate_dataset(task, &current);
    for candidate in pool {
        if candidate.name == base.name || !candidate.schema().contains(join_key) {
            continue;
        }
        let Ok(joined) = hash_join(&current, candidate, join_key, JoinKind::LeftOuter) else {
            continue;
        };
        let eval = evaluate_dataset(task, &joined);
        if score(&eval) < score(&best) - 1e-12 {
            current = joined;
            best = eval;
        }
    }
    BaselineOutput {
        method: "METAM-MO".into(),
        dataset: current,
        evaluation: best,
    }
}

/// Column-signature similarity between two tables (Jaccard over attribute
/// names), the stand-in for Starmie's contextual column embeddings.
fn column_similarity(a: &Dataset, b: &Dataset) -> f64 {
    let an: std::collections::BTreeSet<&str> = a.schema().names().into_iter().collect();
    let bn: std::collections::BTreeSet<&str> = b.schema().names().into_iter().collect();
    let inter = an.intersection(&bn).count() as f64;
    let union = an.union(&bn).count() as f64;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Starmie-style table-union search: ranks pool tables by column-signature
/// similarity to the base, joins the most similar ones (up to `max_tables`)
/// and unions the rest of their rows when union-compatible.
pub fn starmie(
    base: &Dataset,
    pool: &[Dataset],
    task: &TaskSpec,
    join_key: &str,
    max_tables: usize,
) -> BaselineOutput {
    let mut ranked: Vec<&Dataset> = pool.iter().filter(|d| d.name != base.name).collect();
    ranked.sort_by(|a, b| {
        column_similarity(base, b)
            .partial_cmp(&column_similarity(base, a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut current = base.clone();
    for candidate in ranked.into_iter().take(max_tables) {
        if candidate.schema().contains(join_key) && current.schema().contains(join_key) {
            if let Ok(joined) = hash_join(&current, candidate, join_key, JoinKind::LeftOuter) {
                current = joined;
                continue;
            }
        }
        if column_similarity(&current, candidate) > 0.5 {
            current = union_all(&current, candidate);
        }
    }
    finish("Starmie", current, task)
}

/// SkSFM: scikit-learn `SelectFromModel`-style feature selection. A tree
/// ensemble is fitted on the encoded base data and features whose importance
/// exceeds the mean importance are retained.
pub fn sksfm(base: &Dataset, task: &TaskSpec) -> BaselineOutput {
    let encoded = encode(base, &task.encode_options());
    if encoded.is_empty() || encoded.num_features() == 0 {
        return finish("SkSFM", base.clone(), task);
    }
    let n_classes = if task.model.is_classification() {
        encoded.n_classes.max(2)
    } else {
        0
    };
    let forest = RandomForest::fit(
        &encoded.features,
        &encoded.targets,
        n_classes,
        if n_classes > 0 {
            ForestParams::classification(15)
        } else {
            ForestParams::regression(15)
        },
    );
    let importance = forest.feature_importance();
    let mean = importance.iter().sum::<f64>() / importance.len().max(1) as f64;
    let keep: Vec<&str> = encoded
        .feature_names
        .iter()
        .zip(importance.iter())
        .filter(|(_, &imp)| imp >= mean)
        .map(|(n, _)| n.as_str())
        .collect();
    let selected = project_with_context(base, task, &keep);
    finish("SkSFM", selected, task)
}

/// H2O-style feature selection: a linear model is fitted and the top half of
/// the features by absolute standardised coefficient is retained.
pub fn h2o(base: &Dataset, task: &TaskSpec) -> BaselineOutput {
    let encoded = encode(base, &task.encode_options());
    if encoded.is_empty() || encoded.num_features() == 0 {
        return finish("H2O", base.clone(), task);
    }
    let ridge = RidgeRegression::fit(&encoded.features, &encoded.targets, 1.0);
    let importance = ridge.importance();
    let k = (encoded.num_features() / 2).max(1);
    let top = top_k_features(&importance, k);
    let keep: Vec<&str> = top
        .iter()
        .map(|&i| encoded.feature_names[i].as_str())
        .collect();
    let selected = project_with_context(base, task, &keep);
    finish("H2O", selected, task)
}

/// HydraGAN-style generative augmentation: synthesises `n_rows` new tuples by
/// jittering numeric attributes of randomly chosen existing tuples, then
/// appends them to the base table. Mirrors the paper's observation that
/// synthetic rows cannot exploit verified external sources.
pub fn hydragan_like(base: &Dataset, task: &TaskSpec, n_rows: usize, seed: u64) -> BaselineOutput {
    let mut augmented = base.clone();
    if base.num_rows() == 0 {
        return finish("HydraGAN", augmented, task);
    }
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(101);
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64) - 0.5
    };
    for r in 0..n_rows {
        let src = r % base.num_rows();
        let mut row = base.row(src).unwrap().to_vec();
        for cell in &mut row {
            if let Some(x) = cell.as_f64() {
                if cell.is_numeric() {
                    *cell = Value::Float(x * (1.0 + 0.1 * next()));
                }
            }
        }
        augmented.push_row(row);
    }
    finish(
        "HydraGAN",
        augmented.with_name(format!("{}+synthetic", base.name)),
        task,
    )
}

/// Projects a dataset onto the selected feature names plus the task's target
/// and key attributes.
fn project_with_context(base: &Dataset, task: &TaskSpec, features: &[&str]) -> Dataset {
    let mut names: Vec<&str> = Vec::new();
    if let Some(k) = &task.key {
        if base.schema().contains(k) {
            names.push(k.as_str());
        }
    }
    names.extend(
        features
            .iter()
            .copied()
            .filter(|n| base.schema().contains(n)),
    );
    if base.schema().contains(&task.target) {
        names.push(task.target.as_str());
    }
    base.project_by_names(&names)
        .with_name(format!("{}#selected", base.name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{MeasureSet, MeasureSpec};
    use crate::task::{MetricKind, ModelKind};
    use modis_data::{Attribute, Schema};

    fn task() -> TaskSpec {
        TaskSpec {
            name: "baseline-test".into(),
            model: ModelKind::LinearRegressor,
            target: "y".into(),
            key: Some("id".into()),
            measures: MeasureSet::new(vec![
                MeasureSpec::maximise("p_R2"),
                MeasureSpec::minimise("p_Train", 2.0),
            ]),
            metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
            train_ratio: 0.7,
            seed: 11,
        }
    }

    /// Base table has only a weak feature; the pool has the informative one.
    fn base_and_pool() -> (Dataset, Vec<Dataset>) {
        let base = Dataset::from_rows(
            "base",
            Schema::from_attributes(vec![
                Attribute::key("id"),
                Attribute::feature("weak"),
                Attribute::target("y"),
            ]),
            (0..80)
                .map(|i| {
                    let strong = (i % 9) as f64;
                    vec![
                        Value::Int(i),
                        Value::Float(((i * 13) % 7) as f64 * 0.01),
                        Value::Float(3.0 * strong + 1.0),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let informative = Dataset::from_rows(
            "informative",
            Schema::from_attributes(vec![Attribute::key("id"), Attribute::feature("strong")]),
            (0..80)
                .map(|i| vec![Value::Int(i), Value::Float((i % 9) as f64)])
                .collect(),
        )
        .unwrap();
        let junk = Dataset::from_rows(
            "junk",
            Schema::from_attributes(vec![Attribute::key("id"), Attribute::feature("noise")]),
            (0..80)
                .map(|i| vec![Value::Int(i), Value::Float(((i * 31) % 11) as f64)])
                .collect(),
        )
        .unwrap();
        (base, vec![informative, junk])
    }

    #[test]
    fn original_reports_base_performance() {
        let (base, _) = base_and_pool();
        let out = original(&base, &task());
        assert_eq!(out.method, "Original");
        assert!(
            out.evaluation.raw[0] < 0.5,
            "weak feature should give low R²"
        );
    }

    #[test]
    fn metam_joins_informative_table_and_improves_utility() {
        let (base, pool) = base_and_pool();
        let out = metam(&base, &pool, &task(), "id", 0);
        assert!(out.dataset.schema().contains("strong"));
        let orig = original(&base, &task());
        assert!(out.evaluation.raw[0] > orig.evaluation.raw[0]);
    }

    #[test]
    fn metam_mo_uses_weighted_sum() {
        let (base, pool) = base_and_pool();
        let out = metam_mo(&base, &pool, &task(), "id");
        let orig = original(&base, &task());
        let sum = |e: &TaskEvaluation| e.normalised.iter().sum::<f64>();
        assert!(sum(&out.evaluation) <= sum(&orig.evaluation) + 1e-9);
    }

    #[test]
    fn starmie_adds_similar_tables() {
        let (base, pool) = base_and_pool();
        let out = starmie(&base, &pool, &task(), "id", 2);
        assert!(out.dataset.num_columns() >= base.num_columns());
    }

    #[test]
    fn sksfm_selects_a_feature_subset() {
        let (base, pool) = base_and_pool();
        // Run on the joined table so there is something to select from.
        let joined = hash_join(&base, &pool[0], "id", JoinKind::LeftOuter).unwrap();
        let joined = hash_join(&joined, &pool[1], "id", JoinKind::LeftOuter).unwrap();
        let out = sksfm(&joined, &task());
        assert!(out.dataset.num_columns() <= joined.num_columns());
        assert!(out.dataset.schema().contains("y"));
    }

    #[test]
    fn h2o_keeps_top_half_features() {
        let (base, pool) = base_and_pool();
        let joined = hash_join(&base, &pool[0], "id", JoinKind::LeftOuter).unwrap();
        let out = h2o(&joined, &task());
        assert!(out.dataset.num_columns() < joined.num_columns());
        assert!(out.dataset.schema().contains("y"));
    }

    #[test]
    fn hydragan_appends_synthetic_rows() {
        let (base, _) = base_and_pool();
        let out = hydragan_like(&base, &task(), 40, 3);
        assert_eq!(out.dataset.num_rows(), base.num_rows() + 40);
    }

    #[test]
    fn column_similarity_is_jaccard() {
        let (base, pool) = base_and_pool();
        let sim = column_similarity(&base, &pool[0]);
        // Shared: id. Union: id, weak, y, strong.
        assert!((sim - 0.25).abs() < 1e-9);
        assert!((column_similarity(&base, &base) - 1.0).abs() < 1e-9);
    }
}
