//! Graph search space for task T5 (link regression / recommendation).
//!
//! The paper extends MODis to graph data by replacing augment/reduct with
//! edge insertions/deletions: "the 'augment' (resp. 'reduct') operators are
//! defined as edge insertions (resp. edge deletions)" (§6). Edges of the
//! universal bipartite graph are grouped by k-means over their feature
//! vectors (the same clustering used to control `|adom|` in Fig. 14); each
//! cluster is one reducible unit.

use parking_lot::Mutex;
use std::time::Instant;

use modis_data::StateBitmap;
use modis_ml::graph::{evaluate_ranking, BipartiteGraph, LightGcn, LightGcnParams};
use modis_ml::kmeans::kmeans;

use crate::clock_cache::ClockCache;
use crate::measure::MeasureSet;
use crate::substrate::{Substrate, SubstrateCacheStats};

/// Configuration of the graph search space.
#[derive(Debug, Clone)]
pub struct GraphSpaceConfig {
    /// Number of edge clusters (reducible units).
    pub n_edge_clusters: usize,
    /// Ranking cut-offs evaluated (e.g. `[5, 10]`).
    pub k_values: Vec<usize>,
    /// LightGCN hyper-parameters.
    pub model: LightGcnParams,
    /// Train/test edge split ratio.
    pub train_ratio: f64,
    /// Seed for clustering and splits.
    pub seed: u64,
    /// Capacity of the per-substrate raw-metrics memo (states; 0 =
    /// unbounded). As with the tabular substrate, tasks measuring wall-clock
    /// training time only keep byte-identical raw vectors across runs
    /// sharing one substrate instance while the distinct-state count stays
    /// within capacity; set 0 for the unbounded pre-eviction behaviour.
    pub eval_cache_capacity: usize,
}

impl Default for GraphSpaceConfig {
    fn default() -> Self {
        GraphSpaceConfig {
            n_edge_clusters: 8,
            k_values: vec![5, 10],
            model: LightGcnParams {
                epochs: 40,
                ..LightGcnParams::default()
            },
            train_ratio: 0.8,
            seed: 17,
            eval_cache_capacity: 16_384,
        }
    }
}

/// The graph [`Substrate`]: a universal bipartite graph whose edge clusters
/// are the reducible units; measures are P@k, R@k, NDCG@k for each `k` plus
/// training time, all provided by the caller as a [`MeasureSet`].
pub struct GraphSubstrate {
    universal: BipartiteGraph,
    edge_cluster: Vec<usize>,
    n_clusters: usize,
    measures: MeasureSet,
    config: GraphSpaceConfig,
    cache: Mutex<ClockCache<StateBitmap, Vec<f64>>>,
    /// Lazily computed full-content fingerprint (the universal graph is
    /// immutable after construction).
    fingerprint_memo: std::sync::OnceLock<u64>,
}

impl GraphSubstrate {
    /// Builds the graph search space. The caller supplies the measure set in
    /// the order: `P@k…, R@k…, NDCG@k…` for each `k` in
    /// `config.k_values`, followed by training time.
    pub fn new(universal: BipartiteGraph, measures: MeasureSet, config: GraphSpaceConfig) -> Self {
        let points: Vec<Vec<f64>> = universal
            .edges
            .iter()
            .zip(universal.edge_features.iter())
            .map(|(&(u, i), f)| {
                let mut p = vec![u as f64, i as f64];
                p.extend_from_slice(f);
                p
            })
            .collect();
        let n_clusters = config.n_edge_clusters.max(1).min(points.len().max(1));
        let assignment = if points.is_empty() {
            Vec::new()
        } else {
            kmeans(&points, n_clusters, 25, config.seed).assignment
        };
        let cache = Mutex::new(ClockCache::new(config.eval_cache_capacity));
        GraphSubstrate {
            universal,
            edge_cluster: assignment,
            n_clusters,
            measures,
            config,
            cache,
            fingerprint_memo: std::sync::OnceLock::new(),
        }
    }

    /// The universal interaction graph.
    pub fn universal(&self) -> &BipartiteGraph {
        &self.universal
    }

    /// Materialises the graph denoted by a state bitmap: keeps the edges
    /// whose cluster bit is set.
    pub fn materialize(&self, bitmap: &StateBitmap) -> BipartiteGraph {
        let mut g = BipartiteGraph::new(self.universal.n_users, self.universal.n_items);
        for (idx, &(u, i)) in self.universal.edges.iter().enumerate() {
            let c = self.edge_cluster.get(idx).copied().unwrap_or(0);
            if bitmap.get(c) {
                g.add_edge(u, i, self.universal.edge_features[idx].clone());
            }
        }
        g
    }

    /// Number of ranking cut-offs.
    pub fn k_values(&self) -> &[usize] {
        &self.config.k_values
    }

    /// Counters of the bounded raw-metrics memo.
    pub fn cache_stats(&self) -> SubstrateCacheStats {
        let cache = self.cache.lock();
        SubstrateCacheStats {
            entries: cache.len(),
            evictions: cache.evictions(),
        }
    }
}

impl Substrate for GraphSubstrate {
    fn num_units(&self) -> usize {
        self.n_clusters
    }

    fn unit_label(&self, unit: usize) -> String {
        let count = self.edge_cluster.iter().filter(|&&c| c == unit).count();
        format!("edge-cluster:{unit} ({count} edges)")
    }

    fn backward_start(&self) -> StateBitmap {
        // Keep only the densest cluster so every user/item community has a
        // seed of interactions to augment from.
        let mut counts = vec![0usize; self.n_clusters];
        for &c in &self.edge_cluster {
            counts[c] += 1;
        }
        let best = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let mut b = StateBitmap::empty(self.n_clusters);
        b.set(best, true);
        b
    }

    fn measures(&self) -> &MeasureSet {
        &self.measures
    }

    fn evaluate_raw(&self, bitmap: &StateBitmap) -> Vec<f64> {
        if let Some(hit) = self.cache.lock().get(bitmap).cloned() {
            return hit;
        }
        let graph = self.materialize(bitmap);
        let raw = if graph.num_edges() < 10 {
            // Degenerate graph: worst-case ranking metrics, negligible time.
            let mut v = vec![0.0; self.config.k_values.len() * 3];
            v.push(0.0);
            v
        } else {
            let (train, test) = graph.split_edges(self.config.train_ratio, self.config.seed);
            let start = Instant::now();
            let model = LightGcn::fit(&train, self.config.model);
            let train_seconds = start.elapsed().as_secs_f64()
                + 1e-5 * train.num_edges() as f64 * self.config.model.dim as f64;
            let mut v = Vec::with_capacity(self.config.k_values.len() * 3 + 1);
            let mut recalls = Vec::new();
            let mut ndcgs = Vec::new();
            for &k in &self.config.k_values {
                let (p, r, n) = evaluate_ranking(&model, &train, &test, k);
                v.push(p);
                recalls.push(r);
                ndcgs.push(n);
            }
            v.extend(recalls);
            v.extend(ndcgs);
            v.push(train_seconds);
            v
        };
        // Align with the measure set length (truncate or pad defensively).
        let mut raw = raw;
        raw.resize(self.measures.len(), 0.0);
        self.cache.lock().insert(bitmap.clone(), raw.clone());
        raw
    }

    fn state_features(&self, bitmap: &StateBitmap) -> Vec<f64> {
        let kept: usize = self.edge_cluster.iter().filter(|&&c| bitmap.get(c)).count();
        let mut feats = vec![bitmap.count_ones() as f64, kept as f64];
        feats.extend(bitmap.iter().map(|b| if b { 1.0 } else { 0.0 }));
        feats
    }

    fn artifact_size(&self, bitmap: &StateBitmap) -> (usize, usize) {
        self.materialize(bitmap).reported_size()
    }

    fn fingerprint(&self) -> u64 {
        // Mix the model/split configuration and a digest of EVERY edge in
        // on top of the structural default — the same edge clustering under
        // a different LightGCN parameterisation, or a refreshed edge set
        // with the same cluster count, valuates the same bitmap
        // differently, and a sampled digest would miss changes that land
        // between sample points. The graph is immutable after construction,
        // so the digest is computed once; fingerprints persist in
        // snapshots, so everything hashes through the stable FNV hasher.
        use crate::codec::StableHasher;
        use std::hash::{Hash, Hasher};
        *self.fingerprint_memo.get_or_init(|| {
            let mut h = StableHasher::new();
            crate::substrate::structural_fingerprint(self).hash(&mut h);
            // Valuation-relevant config fields, hashed individually through
            // the stable primitives. Deliberately NOT a Debug-format of the
            // whole config: float Debug rendering is toolchain-dependent,
            // and `eval_cache_capacity` is a performance knob — retuning
            // the memo bound must not re-identify the substrate and lock a
            // restarted service out of its own warm namespace.
            self.config.n_edge_clusters.hash(&mut h);
            self.config.k_values.hash(&mut h);
            self.config.train_ratio.to_bits().hash(&mut h);
            self.config.seed.hash(&mut h);
            self.config.model.dim.hash(&mut h);
            self.config.model.layers.hash(&mut h);
            self.config.model.epochs.hash(&mut h);
            self.config.model.learning_rate.to_bits().hash(&mut h);
            self.config.model.reg.to_bits().hash(&mut h);
            self.config.model.seed.hash(&mut h);
            let edges = &self.universal.edges;
            (self.universal.n_users, self.universal.n_items, edges.len()).hash(&mut h);
            for (idx, edge) in edges.iter().enumerate() {
                edge.hash(&mut h);
                self.edge_cluster.get(idx).hash(&mut h);
                for &f in &self.universal.edge_features[idx] {
                    f.to_bits().hash(&mut h);
                }
            }
            h.finish()
        })
    }

    fn memo_stats(&self) -> SubstrateCacheStats {
        self.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureSpec;

    fn t5_measures() -> MeasureSet {
        MeasureSet::new(vec![
            MeasureSpec::maximise("p_Pc5"),
            MeasureSpec::maximise("p_Pc10"),
            MeasureSpec::maximise("p_Rc5"),
            MeasureSpec::maximise("p_Rc10"),
            MeasureSpec::maximise("p_Nc5"),
            MeasureSpec::maximise("p_Nc10"),
            MeasureSpec::minimise("p_Train", 5.0),
        ])
    }

    fn block_graph() -> BipartiteGraph {
        let mut g = BipartiteGraph::new(12, 12);
        for u in 0..12 {
            let base = if u < 6 { 0 } else { 6 };
            for j in 0..4 {
                g.add_edge(u, base + (u + j) % 6, vec![(u / 6) as f64 * 10.0, j as f64]);
            }
        }
        g
    }

    #[test]
    fn graph_space_clusters_edges() {
        let sub = GraphSubstrate::new(
            block_graph(),
            t5_measures(),
            GraphSpaceConfig {
                n_edge_clusters: 4,
                ..Default::default()
            },
        );
        assert_eq!(sub.num_units(), 4);
        assert!(sub.unit_label(0).starts_with("edge-cluster"));
        let full = sub.materialize(&sub.forward_start());
        assert_eq!(full.num_edges(), sub.universal().num_edges());
    }

    #[test]
    fn reducing_a_cluster_removes_edges() {
        let sub = GraphSubstrate::new(
            block_graph(),
            t5_measures(),
            GraphSpaceConfig {
                n_edge_clusters: 3,
                ..Default::default()
            },
        );
        let reduced = sub.materialize(&sub.forward_start().flipped(0));
        assert!(reduced.num_edges() < sub.universal().num_edges());
    }

    #[test]
    fn backward_start_keeps_densest_cluster() {
        let sub = GraphSubstrate::new(
            block_graph(),
            t5_measures(),
            GraphSpaceConfig {
                n_edge_clusters: 3,
                ..Default::default()
            },
        );
        let b = sub.backward_start();
        assert_eq!(b.count_ones(), 1);
        assert!(sub.materialize(&b).num_edges() > 0);
    }

    #[test]
    fn evaluate_raw_returns_full_measure_vector() {
        let cfg = GraphSpaceConfig {
            n_edge_clusters: 3,
            model: LightGcnParams {
                epochs: 15,
                ..Default::default()
            },
            ..Default::default()
        };
        let sub = GraphSubstrate::new(block_graph(), t5_measures(), cfg);
        let raw = sub.evaluate_raw(&sub.forward_start());
        assert_eq!(raw.len(), 7);
        // Ranking metrics in [0,1]; training time positive.
        assert!(raw[..6].iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(raw[6] > 0.0);
        // Cached second call identical.
        assert_eq!(raw, sub.evaluate_raw(&sub.forward_start()));
    }

    #[test]
    fn degenerate_graph_gets_worst_case() {
        let cfg = GraphSpaceConfig {
            n_edge_clusters: 3,
            ..Default::default()
        };
        let sub = GraphSubstrate::new(block_graph(), t5_measures(), cfg);
        let raw = sub.evaluate_raw(&StateBitmap::empty(3));
        assert!(raw[..6].iter().all(|&v| v == 0.0));
    }
}
