//! Downstream tasks: the fixed deterministic models `M` and the raw metric
//! computation behind each performance measure.
//!
//! A [`TaskSpec`] bundles the model kind, the target attribute, the measure
//! set `P` and, for each measure, the raw [`MetricKind`] used to valuate it
//! by actual training + inference (the paper's "actual model inference test"
//! protocol used for final reporting).

use std::time::Instant;

use modis_data::{Dataset, DatasetView};
use modis_ml::encoding::{encode, encode_view, EncodeOptions, Encoded, TaskKind};
use modis_ml::feature::{fisher_score, mutual_information};
use modis_ml::forest::{ForestParams, RandomForest};
use modis_ml::gbm::{GbmParams, GradientBoostingClassifier, GradientBoostingRegressor};
use modis_ml::linear::{LogisticRegression, RidgeRegression};
use modis_ml::metrics;

use crate::measure::MeasureSet;

/// The model architectures used across the paper's tasks T1–T4 and the case
/// studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Gradient-boosting regressor (GBmovie, T1).
    GradientBoostingRegressor,
    /// Random-forest classifier (RFhouse, T2; X-ray case study).
    RandomForestClassifier,
    /// Random-forest regressor (HAB CI-index example).
    RandomForestRegressor,
    /// Ridge / linear regressor (LRavocado, T3 regression variant).
    LinearRegressor,
    /// Logistic-regression classifier.
    LogisticClassifier,
    /// Gradient-boosting classifier (LightGBM-style LGCmental, T4).
    GradientBoostingClassifier,
}

impl ModelKind {
    /// Whether the model solves a classification task.
    pub fn is_classification(&self) -> bool {
        matches!(
            self,
            ModelKind::RandomForestClassifier
                | ModelKind::LogisticClassifier
                | ModelKind::GradientBoostingClassifier
        )
    }
}

/// Raw metric attached to each measure of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Classification accuracy.
    Accuracy,
    /// Macro precision.
    Precision,
    /// Macro recall.
    Recall,
    /// Macro F1.
    F1,
    /// One-vs-rest AUC.
    Auc,
    /// Mean squared error.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Root mean squared error.
    Rmse,
    /// R² score.
    R2,
    /// Wall-clock training time in seconds.
    TrainTime,
    /// Mean Fisher score of the features against the (train) labels.
    FisherScore,
    /// Mean mutual information of the features against the (train) labels.
    MutualInfo,
}

impl MetricKind {
    /// Whether a larger raw value is better (used to pick a "best" table
    /// from a skyline set for single-number comparisons).
    pub fn higher_is_better(&self) -> bool {
        matches!(
            self,
            MetricKind::Accuracy
                | MetricKind::Precision
                | MetricKind::Recall
                | MetricKind::F1
                | MetricKind::Auc
                | MetricKind::R2
                | MetricKind::FisherScore
                | MetricKind::MutualInfo
        )
    }
}

/// A fully specified downstream task.
#[derive(Debug, Clone)]
pub struct TaskSpec {
    /// Task name (e.g. `"T1-movie"`).
    pub name: String,
    /// Model architecture.
    pub model: ModelKind,
    /// Target attribute name.
    pub target: String,
    /// Optional join-key attribute excluded from the feature matrix.
    pub key: Option<String>,
    /// The measure set `P` (normalised minimise form).
    pub measures: MeasureSet,
    /// Raw metric backing each measure (aligned with `measures`).
    pub metric_kinds: Vec<MetricKind>,
    /// Train/test split ratio.
    pub train_ratio: f64,
    /// Seed controlling splits and model randomness.
    pub seed: u64,
}

impl TaskSpec {
    /// Encoding options implied by the task.
    pub fn encode_options(&self) -> EncodeOptions {
        let base = if self.model.is_classification() {
            EncodeOptions::classification()
        } else {
            EncodeOptions::regression()
        };
        let base = base.with_target(self.target.clone());
        match &self.key {
            Some(k) => base.with_exclude([k.clone()]),
            None => base,
        }
    }

    /// Task kind (classification vs regression).
    pub fn task_kind(&self) -> TaskKind {
        if self.model.is_classification() {
            TaskKind::Classification
        } else {
            TaskKind::Regression
        }
    }
}

/// Output of one oracle evaluation of a dataset under a task.
#[derive(Debug, Clone)]
pub struct TaskEvaluation {
    /// Raw metric values aligned with the task's measures.
    pub raw: Vec<f64>,
    /// Normalised (minimise-form) performance vector.
    pub normalised: Vec<f64>,
    /// Wall-clock training time in seconds.
    pub train_seconds: f64,
    /// Reported dataset size `(rows, non-null columns)`.
    pub size: (usize, usize),
}

/// Fitted model wrapper used to compute predictions and scores uniformly.
enum FittedModel {
    GbReg(GradientBoostingRegressor),
    RfCls(RandomForest),
    RfReg(RandomForest),
    Ridge(RidgeRegression),
    Logistic(LogisticRegression),
    GbCls(GradientBoostingClassifier),
}

impl FittedModel {
    fn predict(&self, x: &[Vec<f64>]) -> Vec<f64> {
        match self {
            FittedModel::GbReg(m) => m.predict(x),
            FittedModel::RfCls(m) | FittedModel::RfReg(m) => m.predict(x),
            FittedModel::Ridge(m) => m.predict(x),
            FittedModel::Logistic(m) => m.predict(x),
            FittedModel::GbCls(m) => m.predict(x),
        }
    }

    fn predict_scores(&self, x: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
        match self {
            FittedModel::RfCls(m) => Some(m.predict_scores(x)),
            FittedModel::Logistic(m) => Some(m.predict_scores(x)),
            FittedModel::GbCls(m) => Some(m.predict_scores(x)),
            _ => None,
        }
    }
}

fn fit_model(kind: ModelKind, train: &Encoded, seed: u64) -> FittedModel {
    let n_classes = train.n_classes.max(2);
    match kind {
        ModelKind::GradientBoostingRegressor => FittedModel::GbReg(GradientBoostingRegressor::fit(
            &train.features,
            &train.targets,
            GbmParams {
                n_estimators: 40,
                ..GbmParams::default()
            },
        )),
        ModelKind::RandomForestClassifier => FittedModel::RfCls(RandomForest::fit(
            &train.features,
            &train.targets,
            n_classes,
            ForestParams {
                seed,
                ..ForestParams::classification(20)
            },
        )),
        ModelKind::RandomForestRegressor => FittedModel::RfReg(RandomForest::fit(
            &train.features,
            &train.targets,
            0,
            ForestParams {
                seed,
                ..ForestParams::regression(20)
            },
        )),
        ModelKind::LinearRegressor => {
            FittedModel::Ridge(RidgeRegression::fit(&train.features, &train.targets, 1.0))
        }
        ModelKind::LogisticClassifier => FittedModel::Logistic(LogisticRegression::fit(
            &train.features,
            &train.targets,
            n_classes,
            0.3,
            150,
        )),
        ModelKind::GradientBoostingClassifier => {
            FittedModel::GbCls(GradientBoostingClassifier::fit(
                &train.features,
                &train.targets,
                n_classes,
                GbmParams {
                    n_estimators: 30,
                    ..GbmParams::default()
                },
            ))
        }
    }
}

/// Trains the task's model on `data` and valuates every raw metric and the
/// normalised performance vector.
///
/// Degenerate datasets (no usable rows or features after encoding) receive
/// worst-case metrics so the search can simply discard them.
pub fn evaluate_dataset(task: &TaskSpec, data: &Dataset) -> TaskEvaluation {
    evaluate_encoded(
        task,
        encode(data, &task.encode_options()),
        data.reported_size(),
    )
}

/// Trains the task's model on a zero-copy [`DatasetView`] — the columnar
/// counterpart of [`evaluate_dataset`], reading features straight through
/// the view's selection vector without materialising the table.
///
/// Byte-identical to `evaluate_dataset(task, &view.to_dataset())`.
pub fn evaluate_dataset_view(task: &TaskSpec, view: &DatasetView<'_>) -> TaskEvaluation {
    evaluate_encoded(
        task,
        encode_view(view, &task.encode_options()),
        view.reported_size(),
    )
}

/// Shared oracle-evaluation tail: trains the model on an already-encoded
/// design matrix and computes the raw + normalised metric vectors.
fn evaluate_encoded(task: &TaskSpec, encoded: Encoded, size: (usize, usize)) -> TaskEvaluation {
    if encoded.len() < 8 || encoded.num_features() == 0 {
        let raw = worst_case_raw(task);
        let normalised = task.measures.normalise(&raw);
        return TaskEvaluation {
            raw,
            normalised,
            train_seconds: 0.0,
            size,
        };
    }
    let (train, test) = encoded.split(task.train_ratio, task.seed);
    let (train, test) = if test.is_empty() {
        (encoded.clone(), encoded.clone())
    } else {
        (train, test)
    };

    let start = Instant::now();
    let model = fit_model(task.model, &train, task.seed);
    // Fold an explicit size-dependent cost into the measured time so that the
    // training-cost measure scales with the data volume even for very fast
    // fits (mirrors the second-scale costs reported in the paper).
    let train_seconds = start.elapsed().as_secs_f64()
        + 1e-6 * (train.len() as f64) * (train.num_features() as f64 + 1.0);

    let y_true = &test.targets;
    let y_pred = model.predict(&test.features);
    let scores = model.predict_scores(&test.features);

    let raw: Vec<f64> = task
        .metric_kinds
        .iter()
        .map(|mk| match mk {
            MetricKind::Accuracy => metrics::accuracy(y_true, &y_pred),
            MetricKind::Precision => metrics::precision(y_true, &y_pred),
            MetricKind::Recall => metrics::recall(y_true, &y_pred),
            MetricKind::F1 => metrics::f1_score(y_true, &y_pred),
            MetricKind::Auc => match &scores {
                Some(s) => metrics::auc_ovr(y_true, s),
                None => 0.5,
            },
            MetricKind::Mse => metrics::mse(y_true, &y_pred),
            MetricKind::Mae => metrics::mae(y_true, &y_pred),
            MetricKind::Rmse => metrics::rmse(y_true, &y_pred),
            MetricKind::R2 => metrics::r2(y_true, &y_pred).max(0.0),
            MetricKind::TrainTime => train_seconds,
            MetricKind::FisherScore => fisher_normalised(&train),
            MetricKind::MutualInfo => mi_normalised(&train),
        })
        .collect();
    let normalised = task.measures.normalise(&raw);
    TaskEvaluation {
        raw,
        normalised,
        train_seconds,
        size,
    }
}

/// Normalised (squashed to `[0,1)`) mean Fisher score of the training data.
fn fisher_normalised(train: &Encoded) -> f64 {
    let f = fisher_score(&train.features, &train.targets);
    f / (1.0 + f)
}

/// Mean mutual information of the training data, squashed to `[0,1)`.
fn mi_normalised(train: &Encoded) -> f64 {
    let m = mutual_information(&train.features, &train.targets, 8);
    m / (1.0 + m)
}

/// Worst-case raw metric vector for degenerate datasets.
fn worst_case_raw(task: &TaskSpec) -> Vec<f64> {
    task.metric_kinds
        .iter()
        .zip(task.measures.specs().iter())
        .map(|(mk, spec)| {
            if mk.higher_is_better() {
                0.0
            } else {
                spec.scale
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::MeasureSpec;
    use modis_data::{Attribute, Schema, Value};

    fn regression_task() -> TaskSpec {
        TaskSpec {
            name: "toy-reg".into(),
            model: ModelKind::GradientBoostingRegressor,
            target: "y".into(),
            key: Some("id".into()),
            measures: MeasureSet::new(vec![
                MeasureSpec::maximise("p_R2"),
                MeasureSpec::minimise("p_Train", 5.0),
            ]),
            metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
            train_ratio: 0.7,
            seed: 3,
        }
    }

    fn regression_data(n: usize) -> Dataset {
        let schema = Schema::from_attributes(vec![
            Attribute::key("id"),
            Attribute::feature("x1"),
            Attribute::feature("x2"),
            Attribute::target("y"),
        ]);
        let rows = (0..n)
            .map(|i| {
                let x1 = (i % 17) as f64;
                let x2 = ((i * 3) % 11) as f64;
                vec![
                    Value::Int(i as i64),
                    Value::Float(x1),
                    Value::Float(x2),
                    Value::Float(2.0 * x1 - x2 + 1.0),
                ]
            })
            .collect();
        Dataset::from_rows("reg", schema, rows).unwrap()
    }

    #[test]
    fn evaluate_regression_dataset_produces_good_r2() {
        let task = regression_task();
        let eval = evaluate_dataset(&task, &regression_data(120));
        assert!(eval.raw[0] > 0.8, "R2 = {}", eval.raw[0]);
        assert!(eval.raw[1] > 0.0);
        assert_eq!(eval.normalised.len(), 2);
        assert!(eval.normalised[0] < 0.2);
        assert_eq!(eval.size.0, 120);
    }

    #[test]
    fn degenerate_dataset_gets_worst_case() {
        let task = regression_task();
        let tiny = regression_data(3);
        let eval = evaluate_dataset(&task, &tiny);
        assert_eq!(eval.raw[0], 0.0);
        assert!((eval.normalised[0] - 0.99).abs() < 0.02);
    }

    #[test]
    fn evaluate_view_matches_evaluate_on_materialised_copy() {
        use modis_data::RowMask;
        let task = regression_task();
        let data = regression_data(120);
        // Select two thirds of the rows, mask the x2 feature.
        let mask = RowMask::from_pred(data.num_rows(), |r| r % 3 != 0);
        let view = DatasetView::new(&data, mask, vec![false, false, true, false]);
        let via_view = evaluate_dataset_view(&task, &view);
        let via_copy = evaluate_dataset(&task, &view.to_dataset());
        // Every metric except wall-clock training time is deterministic.
        assert_eq!(via_view.raw[0], via_copy.raw[0]);
        assert_eq!(via_view.size, via_copy.size);
        assert_eq!(via_view.normalised[0], via_copy.normalised[0]);
    }

    #[test]
    fn classification_task_metrics() {
        let schema =
            Schema::from_attributes(vec![Attribute::feature("x"), Attribute::target("label")]);
        let rows = (0..100)
            .map(|i| {
                let x = (i % 20) as f64;
                let label = if x >= 10.0 { "hi" } else { "lo" };
                vec![Value::Float(x), Value::Str(label.into())]
            })
            .collect();
        let data = Dataset::from_rows("cls", schema, rows).unwrap();
        let task = TaskSpec {
            name: "toy-cls".into(),
            model: ModelKind::RandomForestClassifier,
            target: "label".into(),
            key: None,
            measures: MeasureSet::new(vec![
                MeasureSpec::maximise("p_Acc"),
                MeasureSpec::maximise("p_F1"),
                MeasureSpec::maximise("p_AUC"),
                MeasureSpec::minimise("p_Train", 5.0),
            ]),
            metric_kinds: vec![
                MetricKind::Accuracy,
                MetricKind::F1,
                MetricKind::Auc,
                MetricKind::TrainTime,
            ],
            train_ratio: 0.7,
            seed: 5,
        };
        let eval = evaluate_dataset(&task, &data);
        assert!(eval.raw[0] > 0.9, "acc = {}", eval.raw[0]);
        assert!(eval.raw[1] > 0.9);
        assert!(eval.raw[2] > 0.9);
        assert!(task.measures.within_bounds(&eval.normalised) || eval.normalised[3] <= 1.0);
    }

    #[test]
    fn metric_kind_direction() {
        assert!(MetricKind::Accuracy.higher_is_better());
        assert!(!MetricKind::Mse.higher_is_better());
        assert!(!MetricKind::TrainTime.higher_is_better());
    }

    #[test]
    fn model_kind_classification_flag() {
        assert!(ModelKind::LogisticClassifier.is_classification());
        assert!(!ModelKind::LinearRegressor.is_classification());
    }
}
