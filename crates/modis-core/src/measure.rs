//! Performance measures and their normalisation (§2).
//!
//! The paper unifies every measure into a *minimise* form with range
//! `(0, 1]`: measures to be maximised (accuracy, F1, R², NDCG, …) are
//! inverted (`1 − x`), cost measures (training time, MSE, …) are divided by a
//! user-supplied scale (e.g. a time budget). Each measure optionally carries
//! a desired range `[p_l, p_u]` used both for skyline membership filtering
//! and for the position grid of Eq. (1).

use std::fmt;

/// Whether the raw metric is better when larger or when smaller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Raw metric in `[0, 1]`, larger is better (accuracy, F1, AUC, R², …).
    HigherIsBetter,
    /// Raw metric ≥ 0, smaller is better (MSE, MAE, training time, …).
    LowerIsBetter,
}

/// Specification of one user-defined performance measure `p ∈ P`.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasureSpec {
    /// Measure name (e.g. `"p_Acc"`, `"p_Train"`).
    pub name: String,
    /// Direction of the raw metric.
    pub direction: Direction,
    /// Scale used to normalise lower-is-better metrics (the value that maps
    /// to 1.0, e.g. a training-time budget in seconds). Ignored for
    /// higher-is-better metrics.
    pub scale: f64,
    /// Desired lower bound `p_l` of the normalised measure, in `(0, 1]`.
    pub lower: f64,
    /// Desired upper bound `p_u` of the normalised measure, in `(0, 1]`.
    pub upper: f64,
}

impl MeasureSpec {
    /// A maximised metric (accuracy-like) with default bounds `(0.01, 1]`.
    pub fn maximise(name: impl Into<String>) -> Self {
        MeasureSpec {
            name: name.into(),
            direction: Direction::HigherIsBetter,
            scale: 1.0,
            lower: 0.01,
            upper: 1.0,
        }
    }

    /// A minimised cost metric with the given normalisation scale and
    /// default bounds `(0.01, 1]`.
    pub fn minimise(name: impl Into<String>, scale: f64) -> Self {
        MeasureSpec {
            name: name.into(),
            direction: Direction::LowerIsBetter,
            scale: scale.max(1e-12),
            lower: 0.01,
            upper: 1.0,
        }
    }

    /// Sets the desired normalised range `[p_l, p_u]`.
    pub fn with_bounds(mut self, lower: f64, upper: f64) -> Self {
        self.lower = lower.clamp(1e-6, 1.0);
        self.upper = upper.clamp(self.lower, 1.0);
        self
    }

    /// Normalises a raw metric value into the unified `(0, 1]` minimise form.
    pub fn normalise(&self, raw: f64) -> f64 {
        let v = match self.direction {
            Direction::HigherIsBetter => 1.0 - raw.clamp(0.0, 1.0),
            Direction::LowerIsBetter => raw.max(0.0) / self.scale,
        };
        v.clamp(1e-6, 1.0)
    }

    /// Inverse of [`normalise`](Self::normalise) for reporting purposes:
    /// converts a normalised value back to the raw metric scale.
    pub fn denormalise(&self, normalised: f64) -> f64 {
        match self.direction {
            Direction::HigherIsBetter => 1.0 - normalised,
            Direction::LowerIsBetter => normalised * self.scale,
        }
    }

    /// Whether a normalised value satisfies the measure's range.
    pub fn within_bounds(&self, normalised: f64) -> bool {
        normalised >= self.lower - 1e-12 && normalised <= self.upper + 1e-12
    }

    /// Ratio `p_u / p_l` used by the complexity bound (`p_m` in Theorem 1).
    pub fn bound_ratio(&self) -> f64 {
        self.upper / self.lower
    }
}

impl fmt::Display for MeasureSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{:.3}, {:.3}]", self.name, self.lower, self.upper)
    }
}

/// An ordered set of measures `P`; the last one is the decisive measure by
/// default (§5.2).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MeasureSet {
    specs: Vec<MeasureSpec>,
}

impl MeasureSet {
    /// Creates a measure set from specs.
    pub fn new(specs: Vec<MeasureSpec>) -> Self {
        MeasureSet { specs }
    }

    /// Number of measures `|P|`.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Measure specs in order.
    pub fn specs(&self) -> &[MeasureSpec] {
        &self.specs
    }

    /// Spec at index `i`.
    pub fn spec(&self, i: usize) -> &MeasureSpec {
        &self.specs[i]
    }

    /// Index of a measure by name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.specs.iter().position(|s| s.name == name)
    }

    /// Index of the decisive measure (the last one by default).
    pub fn decisive_index(&self) -> usize {
        self.specs.len().saturating_sub(1)
    }

    /// Normalises a raw metric vector into a performance vector.
    pub fn normalise(&self, raw: &[f64]) -> Vec<f64> {
        self.specs
            .iter()
            .zip(raw.iter())
            .map(|(s, &v)| s.normalise(v))
            .collect()
    }

    /// Whether the whole normalised vector satisfies every measure's bounds.
    pub fn within_bounds(&self, normalised: &[f64]) -> bool {
        self.specs
            .iter()
            .zip(normalised.iter())
            .all(|(s, &v)| s.within_bounds(v))
    }

    /// Whether any component violates its upper bound (early-skip rule of
    /// `UPareto`).
    pub fn violates_upper(&self, normalised: &[f64]) -> bool {
        self.specs
            .iter()
            .zip(normalised.iter())
            .any(|(s, &v)| v > s.upper + 1e-12)
    }

    /// Maximum bound ratio `p_m = max p_u / p_l` over all measures.
    pub fn max_bound_ratio(&self) -> f64 {
        self.specs
            .iter()
            .map(|s| s.bound_ratio())
            .fold(1.0, f64::max)
    }

    /// Measure names in order.
    pub fn names(&self) -> Vec<&str> {
        self.specs.iter().map(|s| s.name.as_str()).collect()
    }
}

/// Computes the discretised position of a performance vector in the
/// `(|P|−1)`-dimensional grid of Eq. (1).
///
/// The decisive measure (index `decisive`) is excluded from the grid;
/// remaining coordinates are `⌊log_{1+ε}(p_i / p_l_i)⌋`.
pub fn position(perf: &[f64], measures: &MeasureSet, epsilon: f64, decisive: usize) -> Vec<i64> {
    let base = (1.0 + epsilon.max(1e-9)).ln();
    perf.iter()
        .enumerate()
        .filter(|(i, _)| *i != decisive)
        .map(|(i, &p)| {
            let spec = measures.spec(i);
            let ratio = (p.max(1e-9) / spec.lower.max(1e-9)).max(1e-12);
            (ratio.ln() / base).floor() as i64
        })
        .collect()
}

/// Ascending, strictly de-duplicated quantile thresholds over `sorted`
/// (an ascending, NaN-free sample): one cut per level at the upper
/// `k/levels` quantile, always ending at the sample maximum.
///
/// [`crate::dominance_index::DominanceIndex`] uses these thresholds to
/// quantise each measure into the per-level u64 masks of the word-parallel
/// dominance pre-filter; a query point's constraint "candidate must be
/// ≤ p_m + tolerance" is widened to the first cut at or above that bound,
/// so the mask test is complete (never refutes a true dominator).
pub fn quantile_cuts(sorted: &[f64], levels: usize) -> Vec<f64> {
    let n = sorted.len();
    if n == 0 || levels == 0 {
        return Vec::new();
    }
    let mut cuts: Vec<f64> = Vec::with_capacity(levels);
    for k in 1..=levels {
        let idx = (k * n).div_ceil(levels).clamp(1, n) - 1;
        let v = sorted[idx];
        if cuts.last().is_none_or(|&last| v > last) {
            cuts.push(v);
        }
    }
    cuts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn example_set() -> MeasureSet {
        MeasureSet::new(vec![
            MeasureSpec::maximise("p_Acc").with_bounds(0.05, 0.9),
            MeasureSpec::minimise("p_Train", 10.0).with_bounds(0.01, 0.8),
        ])
    }

    #[test]
    fn maximise_measures_are_inverted() {
        let m = MeasureSpec::maximise("acc");
        assert!((m.normalise(0.9) - 0.1).abs() < 1e-9);
        assert!((m.denormalise(0.1) - 0.9).abs() < 1e-9);
        // Clamped away from zero to stay in (0,1].
        assert!(m.normalise(1.0) > 0.0);
    }

    #[test]
    fn minimise_measures_are_scaled() {
        let m = MeasureSpec::minimise("time", 10.0);
        assert!((m.normalise(5.0) - 0.5).abs() < 1e-9);
        assert_eq!(m.normalise(20.0), 1.0);
        assert!((m.denormalise(0.5) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn bounds_checks() {
        let m = MeasureSpec::maximise("acc").with_bounds(0.1, 0.6);
        assert!(m.within_bounds(0.3));
        assert!(!m.within_bounds(0.7));
        assert!(!m.within_bounds(0.05));
        assert!((m.bound_ratio() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn measure_set_normalise_and_bounds() {
        let set = example_set();
        let perf = set.normalise(&[0.8, 4.0]);
        assert!((perf[0] - 0.2).abs() < 1e-9);
        assert!((perf[1] - 0.4).abs() < 1e-9);
        assert!(set.within_bounds(&perf));
        assert!(!set.violates_upper(&perf));
        assert!(set.violates_upper(&[0.95, 0.4]));
        assert_eq!(set.decisive_index(), 1);
        assert_eq!(set.position("p_Train"), Some(1));
    }

    #[test]
    fn position_grid_matches_log_formula() {
        let set = example_set();
        let eps = 0.3;
        // Decisive = last measure ⇒ grid over p_Acc only.
        let pos = position(&[0.05, 0.4], &set, eps, set.decisive_index());
        assert_eq!(pos.len(), 1);
        assert_eq!(pos[0], 0); // log_{1.3}(0.05/0.05) = 0
        let pos2 = position(&[0.2, 0.4], &set, eps, set.decisive_index());
        let expected = ((0.2f64 / 0.05).ln() / 1.3f64.ln()).floor() as i64;
        assert_eq!(pos2[0], expected);
        assert!(pos2[0] > pos[0]);
    }

    #[test]
    fn equal_cells_for_close_values() {
        let set = example_set();
        let a = position(&[0.100, 0.4], &set, 0.5, 1);
        let b = position(&[0.105, 0.4], &set, 0.5, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn max_bound_ratio() {
        let set = example_set();
        assert!((set.max_bound_ratio() - 80.0).abs() < 1e-9);
    }
}
