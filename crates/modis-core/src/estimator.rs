//! Performance estimators `E` and the shared valuation context.
//!
//! The paper valuates tests `t = (M, D, P)` either by actual training /
//! inference (the oracle) or, by default, with a multi-output gradient
//! boosting surrogate trained on historically observed performance `T`
//! (MO-GBM, §2/§6). [`ValuationContext`] wraps a [`Substrate`] with
//!
//! * the test-record store `T` (bitmap → normalised performance vector),
//! * an optional MO-GBM surrogate that takes over after a warm-up of oracle
//!   valuations and is refreshed periodically,
//! * counters used by the efficiency experiments.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use modis_data::StateBitmap;
use modis_ml::gbm::{GbmParams, MultiOutputGbm};

use crate::substrate::Substrate;

/// An oracle evaluation exchanged through an [`EvaluationHook`].
#[derive(Debug, Clone, PartialEq)]
pub struct SharedEvaluation {
    /// Raw metric values from the oracle.
    pub raw: Vec<f64>,
    /// Normalised performance vector.
    pub perf: Vec<f64>,
}

/// External evaluation interceptor, consulted before the oracle trains a
/// model and notified after every fresh oracle valuation.
///
/// This is the seam the execution engine (`modis-engine`) plugs its shared,
/// cross-scenario evaluation cache into: repeated states — common across
/// bi-directional passes and across scenarios over the same pool — are
/// scored once, and subsequent runs load the recorded result. Implementors
/// must be thread-safe; lookups and records may arrive concurrently.
pub trait EvaluationHook: Send + Sync {
    /// Returns a previously recorded oracle evaluation of `bitmap`, if any.
    fn lookup(&self, bitmap: &StateBitmap) -> Option<SharedEvaluation>;

    /// Records a fresh oracle evaluation of `bitmap`.
    fn record(&self, bitmap: &StateBitmap, evaluation: &SharedEvaluation);
}

/// How the search valuates states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorMode {
    /// Always train the real model (exact but slow).
    Oracle,
    /// Valuate the first `warmup` states with the oracle, then switch to the
    /// MO-GBM surrogate (refitted every `refresh` oracle valuations).
    Surrogate {
        /// Number of oracle valuations before the surrogate takes over.
        warmup: usize,
        /// Surrogate refresh period (in recorded tests).
        refresh: usize,
    },
}

impl Default for EstimatorMode {
    fn default() -> Self {
        EstimatorMode::Surrogate {
            warmup: 12,
            refresh: 8,
        }
    }
}

/// One valuated test `t ∈ T`.
#[derive(Debug, Clone)]
pub struct TestRecord {
    /// State bitmap of the valuated dataset.
    pub bitmap: StateBitmap,
    /// Normalised performance vector `t.P`.
    pub perf: Vec<f64>,
    /// Raw metric values.
    pub raw: Vec<f64>,
    /// Whether the record came from the oracle (vs. the surrogate).
    pub oracle: bool,
}

/// Counters exposed for the efficiency experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValuationStats {
    /// Number of oracle (real training) valuations.
    pub oracle_calls: usize,
    /// Number of surrogate valuations.
    pub surrogate_calls: usize,
    /// Number of cache hits.
    pub cache_hits: usize,
    /// Number of oracle valuations answered by the [`EvaluationHook`]
    /// (shared cross-run cache) instead of actual training.
    pub shared_hits: usize,
}

struct Inner {
    records: Vec<TestRecord>,
    by_bitmap: HashMap<StateBitmap, usize>,
    surrogate: Option<MultiOutputGbm>,
    records_at_last_fit: usize,
    oracle_records: usize,
    stats: ValuationStats,
}

impl Inner {
    /// Inserts or upgrades an oracle-backed record for `bitmap`.
    fn commit_oracle(&mut self, bitmap: &StateBitmap, perf: &[f64], raw: Vec<f64>) {
        let record = TestRecord {
            bitmap: bitmap.clone(),
            perf: perf.to_vec(),
            raw,
            oracle: true,
        };
        match self.by_bitmap.get(bitmap).copied() {
            Some(existing) => {
                if !self.records[existing].oracle {
                    self.oracle_records += 1;
                }
                self.records[existing] = record;
            }
            None => {
                let idx = self.records.len();
                self.records.push(record);
                self.by_bitmap.insert(bitmap.clone(), idx);
                self.oracle_records += 1;
            }
        }
    }
}

/// Shared valuation context: the test set `T`, the estimator and counters.
pub struct ValuationContext<'a, S: Substrate + ?Sized> {
    substrate: &'a S,
    mode: EstimatorMode,
    hook: Option<Arc<dyn EvaluationHook>>,
    inner: Mutex<Inner>,
}

impl<'a, S: Substrate + ?Sized> ValuationContext<'a, S> {
    /// Creates a context over a substrate.
    pub fn new(substrate: &'a S, mode: EstimatorMode) -> Self {
        ValuationContext {
            substrate,
            mode,
            hook: None,
            inner: Mutex::new(Inner {
                records: Vec::new(),
                by_bitmap: HashMap::new(),
                surrogate: None,
                records_at_last_fit: 0,
                oracle_records: 0,
                stats: ValuationStats::default(),
            }),
        }
    }

    /// Installs an [`EvaluationHook`] (e.g. the engine's shared cache);
    /// builder-style.
    pub fn with_hook(mut self, hook: Arc<dyn EvaluationHook>) -> Self {
        self.hook = Some(hook);
        self
    }

    /// The wrapped substrate.
    pub fn substrate(&self) -> &S {
        self.substrate
    }

    /// Valuates a state, returning the normalised performance vector.
    ///
    /// Cached records are returned directly ("if t is already in T, it
    /// directly loads t.P", §3).
    pub fn valuate(&self, bitmap: &StateBitmap) -> Vec<f64> {
        {
            let mut inner = self.inner.lock();
            if let Some(&idx) = inner.by_bitmap.get(bitmap) {
                inner.stats.cache_hits += 1;
                return inner.records[idx].perf.clone();
            }
        }
        let use_surrogate = match self.mode {
            EstimatorMode::Oracle => false,
            EstimatorMode::Surrogate { warmup, .. } => {
                // Count oracle-backed *records*, not oracle calls: shared-
                // cache hits then advance the warm-up exactly like fresh
                // trainings, so warm and cold runs switch to the surrogate at
                // the same point and stay comparable.
                let inner = self.inner.lock();
                inner.oracle_records >= warmup && inner.surrogate.is_some()
            }
        };
        if use_surrogate {
            let feats = self.substrate.state_features(bitmap);
            let mut inner = self.inner.lock();
            if let Some(model) = &inner.surrogate {
                let mut perf = model.predict_one(&feats);
                for p in &mut perf {
                    *p = p.clamp(1e-6, 1.0);
                }
                inner.stats.surrogate_calls += 1;
                let idx = inner.records.len();
                inner.records.push(TestRecord {
                    bitmap: bitmap.clone(),
                    perf: perf.clone(),
                    raw: Vec::new(),
                    oracle: false,
                });
                inner.by_bitmap.insert(bitmap.clone(), idx);
                return perf;
            }
        }
        self.valuate_oracle(bitmap)
    }

    /// Forces an oracle valuation (used for final reporting of skyline
    /// members, mirroring the paper's "actual model inference test").
    ///
    /// When an [`EvaluationHook`] is installed, a recorded evaluation of the
    /// same state is loaded instead of retraining; fresh valuations are
    /// published back through the hook.
    pub fn valuate_oracle(&self, bitmap: &StateBitmap) -> Vec<f64> {
        if let Some(hit) = self.hook.as_ref().and_then(|h| h.lookup(bitmap)) {
            let mut inner = self.inner.lock();
            inner.stats.shared_hits += 1;
            inner.commit_oracle(bitmap, &hit.perf, hit.raw);
            drop(inner);
            self.maybe_refit();
            return hit.perf;
        }
        let raw = self.substrate.evaluate_raw(bitmap);
        let perf = self.substrate.measures().normalise(&raw);
        if let Some(hook) = &self.hook {
            hook.record(
                bitmap,
                &SharedEvaluation {
                    raw: raw.clone(),
                    perf: perf.clone(),
                },
            );
        }
        let mut inner = self.inner.lock();
        inner.stats.oracle_calls += 1;
        inner.commit_oracle(bitmap, &perf, raw);
        drop(inner);
        self.maybe_refit();
        perf
    }

    /// The installed [`EvaluationHook`], if any. Parallel expanders use this
    /// to probe the shared cache from worker threads before training.
    pub fn hook(&self) -> Option<&Arc<dyn EvaluationHook>> {
        self.hook.as_ref()
    }

    /// The estimator mode the context was created with.
    pub fn mode(&self) -> EstimatorMode {
        self.mode
    }

    /// Whether the surrogate has taken over from the oracle (always `false`
    /// in [`EstimatorMode::Oracle`]).
    pub fn surrogate_active(&self) -> bool {
        match self.mode {
            EstimatorMode::Oracle => false,
            EstimatorMode::Surrogate { warmup, .. } => {
                let inner = self.inner.lock();
                inner.oracle_records >= warmup && inner.surrogate.is_some()
            }
        }
    }

    /// Number of oracle-backed records in `T` (drives the surrogate warm-up).
    pub fn oracle_record_count(&self) -> usize {
        self.inner.lock().oracle_records
    }

    /// Whether `bitmap` already has a record in `T`. [`Self::valuate`] on
    /// such a state is a memo hit: it returns the stored performance without
    /// consuming valuation budget. Parallel expanders use this to replay the
    /// sequential budget accounting on re-used (pre-warmed) contexts.
    pub fn contains(&self, bitmap: &StateBitmap) -> bool {
        self.inner.lock().by_bitmap.contains_key(bitmap)
    }

    /// Commits an oracle evaluation whose raw metrics were computed
    /// externally (by a parallel worker), exactly as [`Self::valuate_oracle`]
    /// would have: the record enters `T` oracle-backed, counters advance, and
    /// the surrogate refit schedule is consulted. `from_shared` marks results
    /// loaded from the shared cache (counted as hits, not published back).
    ///
    /// Returns the normalised performance vector.
    pub fn record_oracle(
        &self,
        bitmap: &StateBitmap,
        raw: Vec<f64>,
        from_shared: bool,
    ) -> Vec<f64> {
        let perf = self.substrate.measures().normalise(&raw);
        if from_shared {
            let mut inner = self.inner.lock();
            inner.stats.shared_hits += 1;
            inner.commit_oracle(bitmap, &perf, raw);
        } else {
            if let Some(hook) = &self.hook {
                hook.record(
                    bitmap,
                    &SharedEvaluation {
                        raw: raw.clone(),
                        perf: perf.clone(),
                    },
                );
            }
            let mut inner = self.inner.lock();
            inner.stats.oracle_calls += 1;
            inner.commit_oracle(bitmap, &perf, raw);
        }
        self.maybe_refit();
        perf
    }

    /// Raw metric values for a state, valuating with the oracle if needed.
    pub fn raw_for(&self, bitmap: &StateBitmap) -> Vec<f64> {
        {
            let inner = self.inner.lock();
            if let Some(&idx) = inner.by_bitmap.get(bitmap) {
                let rec = &inner.records[idx];
                if rec.oracle {
                    return rec.raw.clone();
                }
            }
        }
        self.valuate_oracle(bitmap);
        let inner = self.inner.lock();
        inner
            .by_bitmap
            .get(bitmap)
            .map(|&idx| inner.records[idx].raw.clone())
            .unwrap_or_default()
    }

    /// Number of valuated states (tests in `T`).
    pub fn num_valuated(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Snapshot of the valuation counters.
    pub fn stats(&self) -> ValuationStats {
        self.inner.lock().stats
    }

    /// Snapshot of all test records.
    pub fn records(&self) -> Vec<TestRecord> {
        self.inner.lock().records.clone()
    }

    /// Per-measure series of the oracle-valuated performance values, used to
    /// maintain the correlation graph `G_C`.
    pub fn measure_series(&self) -> Vec<Vec<f64>> {
        let inner = self.inner.lock();
        let m = self.substrate.measures().len();
        let mut series = vec![Vec::new(); m];
        for rec in inner.records.iter().filter(|r| r.oracle) {
            for (i, &v) in rec.perf.iter().enumerate().take(m) {
                series[i].push(v);
            }
        }
        series
    }

    fn maybe_refit(&self) {
        let (warmup, refresh) = match self.mode {
            EstimatorMode::Oracle => return,
            EstimatorMode::Surrogate { warmup, refresh } => (warmup, refresh),
        };
        let mut inner = self.inner.lock();
        // Early-outs use the maintained counter — this runs after *every*
        // oracle commit, so scanning the record store here would make the
        // commit path quadratic.
        let n = inner.oracle_records;
        if n < warmup {
            return;
        }
        if inner.surrogate.is_some() && n < inner.records_at_last_fit + refresh {
            return;
        }
        let oracle_records: Vec<&TestRecord> = inner.records.iter().filter(|r| r.oracle).collect();
        let x: Vec<Vec<f64>> = oracle_records
            .iter()
            .map(|r| self.substrate.state_features(&r.bitmap))
            .collect();
        let y: Vec<Vec<f64>> = oracle_records.iter().map(|r| r.perf.clone()).collect();
        let params = GbmParams {
            n_estimators: 30,
            ..GbmParams::default()
        };
        let model = MultiOutputGbm::fit(&x, &y, params);
        inner.surrogate = Some(model);
        inner.records_at_last_fit = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::mock::MockSubstrate;

    #[test]
    fn oracle_mode_always_calls_substrate() {
        let sub = MockSubstrate::new(6);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let full = StateBitmap::full(6);
        let p1 = ctx.valuate(&full);
        let p2 = ctx.valuate(&full);
        assert_eq!(p1, p2);
        let stats = ctx.stats();
        assert_eq!(stats.oracle_calls, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(ctx.num_valuated(), 1);
    }

    #[test]
    fn surrogate_takes_over_after_warmup() {
        let sub = MockSubstrate::new(8);
        let ctx = ValuationContext::new(
            &sub,
            EstimatorMode::Surrogate {
                warmup: 5,
                refresh: 100,
            },
        );
        // Warm up with distinct states.
        for i in 0..5 {
            ctx.valuate(&StateBitmap::full(8).flipped(i));
        }
        assert_eq!(ctx.stats().oracle_calls, 5);
        // New state should now be estimated, not trained.
        let est = ctx.valuate(&StateBitmap::full(8).flipped(6).flipped(7));
        assert_eq!(est.len(), 2);
        assert!(est.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(ctx.stats().surrogate_calls, 1);
        assert_eq!(ctx.stats().oracle_calls, 5);
    }

    #[test]
    fn raw_for_upgrades_surrogate_records() {
        let sub = MockSubstrate::new(6);
        let ctx = ValuationContext::new(
            &sub,
            EstimatorMode::Surrogate {
                warmup: 2,
                refresh: 100,
            },
        );
        for i in 0..3 {
            ctx.valuate(&StateBitmap::full(6).flipped(i));
        }
        let target = StateBitmap::full(6).flipped(4).flipped(5);
        let _est = ctx.valuate(&target);
        let raw = ctx.raw_for(&target);
        assert_eq!(raw.len(), 2);
        // The record is now oracle-backed.
        let rec = ctx
            .records()
            .into_iter()
            .find(|r| r.bitmap == target)
            .unwrap();
        assert!(rec.oracle);
    }

    #[derive(Default)]
    struct MapHook {
        map: Mutex<HashMap<StateBitmap, SharedEvaluation>>,
        lookups: Mutex<usize>,
    }

    impl EvaluationHook for MapHook {
        fn lookup(&self, bitmap: &StateBitmap) -> Option<SharedEvaluation> {
            *self.lookups.lock() += 1;
            self.map.lock().get(bitmap).cloned()
        }

        fn record(&self, bitmap: &StateBitmap, evaluation: &SharedEvaluation) {
            self.map.lock().insert(bitmap.clone(), evaluation.clone());
        }
    }

    #[test]
    fn hook_short_circuits_repeat_oracle_valuations() {
        let sub = MockSubstrate::new(6);
        let hook = Arc::new(MapHook::default());
        let full = StateBitmap::full(6);

        let first = ValuationContext::new(&sub, EstimatorMode::Oracle).with_hook(hook.clone());
        let p1 = first.valuate(&full);
        assert_eq!(first.stats().oracle_calls, 1);
        assert_eq!(first.stats().shared_hits, 0);

        // A second context over the same hook loads the recorded evaluation
        // instead of re-training.
        let second = ValuationContext::new(&sub, EstimatorMode::Oracle).with_hook(hook.clone());
        let p2 = second.valuate(&full);
        assert_eq!(p1, p2);
        assert_eq!(second.stats().oracle_calls, 0);
        assert_eq!(second.stats().shared_hits, 1);
        assert_eq!(second.raw_for(&full).len(), 2);
        assert!(*hook.lookups.lock() >= 2);
    }

    #[test]
    fn measure_series_tracks_oracle_records() {
        let sub = MockSubstrate::new(4);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        ctx.valuate(&StateBitmap::full(4));
        ctx.valuate(&StateBitmap::full(4).flipped(0));
        let series = ctx.measure_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].len(), 2);
    }
}
