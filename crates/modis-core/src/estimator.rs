//! Performance estimators `E` and the shared valuation context.
//!
//! The paper valuates tests `t = (M, D, P)` either by actual training /
//! inference (the oracle) or, by default, with a multi-output gradient
//! boosting surrogate trained on historically observed performance `T`
//! (MO-GBM, §2/§6). [`ValuationContext`] wraps a [`Substrate`] with
//!
//! * the test-record store `T` (bitmap → normalised performance vector),
//! * an optional MO-GBM surrogate that takes over after a warm-up of oracle
//!   valuations and is refreshed periodically,
//! * counters used by the efficiency experiments.

use std::collections::HashMap;

use parking_lot::Mutex;

use modis_data::StateBitmap;
use modis_ml::gbm::{GbmParams, MultiOutputGbm};

use crate::substrate::Substrate;

/// How the search valuates states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorMode {
    /// Always train the real model (exact but slow).
    Oracle,
    /// Valuate the first `warmup` states with the oracle, then switch to the
    /// MO-GBM surrogate (refitted every `refresh` oracle valuations).
    Surrogate {
        /// Number of oracle valuations before the surrogate takes over.
        warmup: usize,
        /// Surrogate refresh period (in recorded tests).
        refresh: usize,
    },
}

impl Default for EstimatorMode {
    fn default() -> Self {
        EstimatorMode::Surrogate { warmup: 12, refresh: 8 }
    }
}

/// One valuated test `t ∈ T`.
#[derive(Debug, Clone)]
pub struct TestRecord {
    /// State bitmap of the valuated dataset.
    pub bitmap: StateBitmap,
    /// Normalised performance vector `t.P`.
    pub perf: Vec<f64>,
    /// Raw metric values.
    pub raw: Vec<f64>,
    /// Whether the record came from the oracle (vs. the surrogate).
    pub oracle: bool,
}

/// Counters exposed for the efficiency experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct ValuationStats {
    /// Number of oracle (real training) valuations.
    pub oracle_calls: usize,
    /// Number of surrogate valuations.
    pub surrogate_calls: usize,
    /// Number of cache hits.
    pub cache_hits: usize,
}

struct Inner {
    records: Vec<TestRecord>,
    by_bitmap: HashMap<StateBitmap, usize>,
    surrogate: Option<MultiOutputGbm>,
    records_at_last_fit: usize,
    stats: ValuationStats,
}

/// Shared valuation context: the test set `T`, the estimator and counters.
pub struct ValuationContext<'a, S: Substrate + ?Sized> {
    substrate: &'a S,
    mode: EstimatorMode,
    inner: Mutex<Inner>,
}

impl<'a, S: Substrate + ?Sized> ValuationContext<'a, S> {
    /// Creates a context over a substrate.
    pub fn new(substrate: &'a S, mode: EstimatorMode) -> Self {
        ValuationContext {
            substrate,
            mode,
            inner: Mutex::new(Inner {
                records: Vec::new(),
                by_bitmap: HashMap::new(),
                surrogate: None,
                records_at_last_fit: 0,
                stats: ValuationStats::default(),
            }),
        }
    }

    /// The wrapped substrate.
    pub fn substrate(&self) -> &S {
        self.substrate
    }

    /// Valuates a state, returning the normalised performance vector.
    ///
    /// Cached records are returned directly ("if t is already in T, it
    /// directly loads t.P", §3).
    pub fn valuate(&self, bitmap: &StateBitmap) -> Vec<f64> {
        {
            let mut inner = self.inner.lock();
            if let Some(&idx) = inner.by_bitmap.get(bitmap) {
                inner.stats.cache_hits += 1;
                return inner.records[idx].perf.clone();
            }
        }
        let use_surrogate = match self.mode {
            EstimatorMode::Oracle => false,
            EstimatorMode::Surrogate { warmup, .. } => {
                let inner = self.inner.lock();
                inner.stats.oracle_calls >= warmup && inner.surrogate.is_some()
            }
        };
        if use_surrogate {
            let feats = self.substrate.state_features(bitmap);
            let mut inner = self.inner.lock();
            if let Some(model) = &inner.surrogate {
                let mut perf = model.predict_one(&feats);
                for p in &mut perf {
                    *p = p.clamp(1e-6, 1.0);
                }
                inner.stats.surrogate_calls += 1;
                let idx = inner.records.len();
                inner.records.push(TestRecord {
                    bitmap: bitmap.clone(),
                    perf: perf.clone(),
                    raw: Vec::new(),
                    oracle: false,
                });
                inner.by_bitmap.insert(bitmap.clone(), idx);
                return perf;
            }
        }
        self.valuate_oracle(bitmap)
    }

    /// Forces an oracle valuation (used for final reporting of skyline
    /// members, mirroring the paper's "actual model inference test").
    pub fn valuate_oracle(&self, bitmap: &StateBitmap) -> Vec<f64> {
        let raw = self.substrate.evaluate_raw(bitmap);
        let perf = self.substrate.measures().normalise(&raw);
        let mut inner = self.inner.lock();
        inner.stats.oracle_calls += 1;
        let idx = inner.records.len();
        match inner.by_bitmap.get(bitmap).copied() {
            Some(existing) => {
                inner.records[existing] = TestRecord {
                    bitmap: bitmap.clone(),
                    perf: perf.clone(),
                    raw,
                    oracle: true,
                };
            }
            None => {
                inner.records.push(TestRecord {
                    bitmap: bitmap.clone(),
                    perf: perf.clone(),
                    raw,
                    oracle: true,
                });
                inner.by_bitmap.insert(bitmap.clone(), idx);
            }
        }
        drop(inner);
        self.maybe_refit();
        perf
    }

    /// Raw metric values for a state, valuating with the oracle if needed.
    pub fn raw_for(&self, bitmap: &StateBitmap) -> Vec<f64> {
        {
            let inner = self.inner.lock();
            if let Some(&idx) = inner.by_bitmap.get(bitmap) {
                let rec = &inner.records[idx];
                if rec.oracle {
                    return rec.raw.clone();
                }
            }
        }
        let raw = self.substrate.evaluate_raw(bitmap);
        self.valuate_oracle(bitmap);
        raw
    }

    /// Number of valuated states (tests in `T`).
    pub fn num_valuated(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// Snapshot of the valuation counters.
    pub fn stats(&self) -> ValuationStats {
        self.inner.lock().stats
    }

    /// Snapshot of all test records.
    pub fn records(&self) -> Vec<TestRecord> {
        self.inner.lock().records.clone()
    }

    /// Per-measure series of the oracle-valuated performance values, used to
    /// maintain the correlation graph `G_C`.
    pub fn measure_series(&self) -> Vec<Vec<f64>> {
        let inner = self.inner.lock();
        let m = self.substrate.measures().len();
        let mut series = vec![Vec::new(); m];
        for rec in inner.records.iter().filter(|r| r.oracle) {
            for (i, &v) in rec.perf.iter().enumerate().take(m) {
                series[i].push(v);
            }
        }
        series
    }

    fn maybe_refit(&self) {
        let (warmup, refresh) = match self.mode {
            EstimatorMode::Oracle => return,
            EstimatorMode::Surrogate { warmup, refresh } => (warmup, refresh),
        };
        let mut inner = self.inner.lock();
        let oracle_records: Vec<&TestRecord> = inner.records.iter().filter(|r| r.oracle).collect();
        let n = oracle_records.len();
        if n < warmup {
            return;
        }
        if inner.surrogate.is_some() && n < inner.records_at_last_fit + refresh {
            return;
        }
        let x: Vec<Vec<f64>> = oracle_records
            .iter()
            .map(|r| self.substrate.state_features(&r.bitmap))
            .collect();
        let y: Vec<Vec<f64>> = oracle_records.iter().map(|r| r.perf.clone()).collect();
        let params = GbmParams { n_estimators: 30, ..GbmParams::default() };
        let model = MultiOutputGbm::fit(&x, &y, params);
        inner.surrogate = Some(model);
        inner.records_at_last_fit = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substrate::mock::MockSubstrate;

    #[test]
    fn oracle_mode_always_calls_substrate() {
        let sub = MockSubstrate::new(6);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        let full = StateBitmap::full(6);
        let p1 = ctx.valuate(&full);
        let p2 = ctx.valuate(&full);
        assert_eq!(p1, p2);
        let stats = ctx.stats();
        assert_eq!(stats.oracle_calls, 1);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(ctx.num_valuated(), 1);
    }

    #[test]
    fn surrogate_takes_over_after_warmup() {
        let sub = MockSubstrate::new(8);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Surrogate { warmup: 5, refresh: 100 });
        // Warm up with distinct states.
        for i in 0..5 {
            ctx.valuate(&StateBitmap::full(8).flipped(i));
        }
        assert_eq!(ctx.stats().oracle_calls, 5);
        // New state should now be estimated, not trained.
        let est = ctx.valuate(&StateBitmap::full(8).flipped(6).flipped(7));
        assert_eq!(est.len(), 2);
        assert!(est.iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert_eq!(ctx.stats().surrogate_calls, 1);
        assert_eq!(ctx.stats().oracle_calls, 5);
    }

    #[test]
    fn raw_for_upgrades_surrogate_records() {
        let sub = MockSubstrate::new(6);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Surrogate { warmup: 2, refresh: 100 });
        for i in 0..3 {
            ctx.valuate(&StateBitmap::full(6).flipped(i));
        }
        let target = StateBitmap::full(6).flipped(4).flipped(5);
        let _est = ctx.valuate(&target);
        let raw = ctx.raw_for(&target);
        assert_eq!(raw.len(), 2);
        // The record is now oracle-backed.
        let rec = ctx
            .records()
            .into_iter()
            .find(|r| r.bitmap == target)
            .unwrap();
        assert!(rec.oracle);
    }

    #[test]
    fn measure_series_tracks_oracle_records() {
        let sub = MockSubstrate::new(4);
        let ctx = ValuationContext::new(&sub, EstimatorMode::Oracle);
        ctx.valuate(&StateBitmap::full(4));
        ctx.valuate(&StateBitmap::full(4).flipped(0));
        let series = ctx.measure_series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].len(), 2);
    }
}
