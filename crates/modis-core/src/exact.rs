//! The exact (fixed-parameter tractable) algorithm of Theorem 1: exhaust the
//! runnings of the generator, valuate every reachable state, and apply a
//! multi-objective optimiser (Kung's algorithm) to the valuated set.
//!
//! Intended for small search spaces (unit counts up to ~14) and as a ground
//! truth for testing the approximation quality of ApxMODis/BiMODis.

use std::collections::VecDeque;
use std::time::Instant;

use modis_data::StateBitmap;

use crate::config::{ModisConfig, SkylineEntry, SkylineResult};
use crate::dominance::skyline;
use crate::estimator::{EstimatorMode, ValuationContext};
use crate::search_common::{op_gen, Direction, ProtectedSet, VisitedSet};
use crate::substrate::Substrate;

/// Runs the exact algorithm: every state reachable from `s_U` within
/// `config.max_level` reductions is valuated with the oracle and the exact
/// Pareto front is returned.
pub fn exact_modis<S: Substrate + ?Sized>(substrate: &S, config: &ModisConfig) -> SkylineResult {
    let ctx = ValuationContext::new(substrate, EstimatorMode::Oracle);
    exact_modis_with_context(&ctx, config)
}

/// Runs the exact algorithm with an externally managed valuation context
/// (lets callers install an [`crate::estimator::EvaluationHook`] and share
/// test records across runs).
pub fn exact_modis_with_context<S: Substrate + ?Sized>(
    ctx: &ValuationContext<'_, S>,
    config: &ModisConfig,
) -> SkylineResult {
    let start = Instant::now();
    let substrate = ctx.substrate();
    let protected = ProtectedSet::of(substrate);

    let mut visited = VisitedSet::new();
    let mut states: Vec<(StateBitmap, usize)> = Vec::new();
    let mut queue: VecDeque<(StateBitmap, usize)> = VecDeque::new();
    let s_u = substrate.forward_start();
    visited.insert(&s_u);
    queue.push_back((s_u.clone(), 0));
    states.push((s_u, 0));

    while let Some((state, level)) = queue.pop_front() {
        if states.len() >= config.max_states {
            break;
        }
        if level >= config.max_level {
            continue;
        }
        for child in op_gen(&state, Direction::Forward, &protected) {
            if states.len() >= config.max_states {
                break;
            }
            if visited.insert(&child) {
                states.push((child.clone(), level + 1));
                queue.push_back((child, level + 1));
            }
        }
    }

    // Valuate every enumerated state and keep those within bounds.
    let measures = substrate.measures().clone();
    let mut perfs: Vec<Vec<f64>> = Vec::with_capacity(states.len());
    for (bitmap, _) in &states {
        perfs.push(ctx.valuate(bitmap));
    }
    let candidate_idx: Vec<usize> = (0..states.len())
        .filter(|&i| !measures.violates_upper(&perfs[i]))
        .collect();
    let candidate_perfs: Vec<Vec<f64>> = candidate_idx.iter().map(|&i| perfs[i].clone()).collect();
    let front_local = skyline(&candidate_perfs);

    let entries: Vec<SkylineEntry> = front_local
        .into_iter()
        .map(|li| {
            let i = candidate_idx[li];
            let (bitmap, level) = &states[i];
            let raw = ctx.raw_for(bitmap);
            SkylineEntry {
                bitmap: bitmap.clone(),
                perf: perfs[i].clone(),
                raw,
                size: substrate.artifact_size(bitmap),
                level: *level,
            }
        })
        .collect();

    SkylineResult {
        entries,
        states_valuated: ctx.num_valuated(),
        elapsed_seconds: start.elapsed().as_secs_f64(),
        stats: ctx.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apx::apx_modis;
    use crate::dominance::epsilon_dominates;
    use crate::substrate::mock::MockSubstrate;

    #[test]
    fn exact_front_is_mutually_nondominated() {
        let sub = MockSubstrate::new(6);
        let cfg = ModisConfig::default()
            .with_max_states(10_000)
            .with_max_level(6);
        let res = exact_modis(&sub, &cfg);
        assert!(!res.is_empty());
        for a in &res.entries {
            for b in &res.entries {
                if a.bitmap != b.bitmap {
                    assert!(!crate::dominance::dominates(&a.perf, &b.perf));
                }
            }
        }
    }

    #[test]
    fn apx_epsilon_covers_exact_front() {
        // Lemma 2: ApxMODis outputs an ε-skyline of the states it valuates.
        // With a budget that covers the whole space, every exact-front member
        // must be ε-dominated by (or present in) the approximate output.
        let sub = MockSubstrate::new(6);
        let cfg = ModisConfig::default()
            .with_estimator(EstimatorMode::Oracle)
            .with_max_states(10_000)
            .with_max_level(6)
            .with_epsilon(0.25);
        let exact = exact_modis(&sub, &cfg);
        let approx = apx_modis(&sub, &cfg);
        for member in &exact.entries {
            let covered = approx
                .entries
                .iter()
                .any(|a| epsilon_dominates(&a.perf, &member.perf, cfg.epsilon + 1e-9));
            assert!(covered, "exact member {:?} not ε-covered", member.perf);
        }
    }

    #[test]
    fn exact_respects_budget() {
        let sub = MockSubstrate::new(10);
        let cfg = ModisConfig::default()
            .with_max_states(30)
            .with_max_level(10);
        let res = exact_modis(&sub, &cfg);
        assert!(res.states_valuated <= 31);
    }
}
