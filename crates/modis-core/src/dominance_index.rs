//! Indexed, word-parallel skyline kernels.
//!
//! The seed implementation of [`crate::dominance::skyline`] compared every
//! pair of points (`O(n²·|P|)` f64 comparisons). This module provides the
//! fast kernels behind the same public contract — **byte-identical index
//! sets** to the retained pairwise baseline
//! ([`crate::dominance::skyline_pairwise_baseline`]) on any input, including
//! NaN-laced, duplicate-heavy and near-tolerance adversarial frontiers:
//!
//! * [`skyline_sorted`] — SFS/SaLSa-style kernel: candidates sorted by
//!   ascending coordinate sum so that (a) likely dominators are met first and
//!   dominated points exit after a handful of comparisons, and (b) a sorted
//!   prefix bound terminates the scan early for surviving points;
//! * [`skyline_indexed`] — the sorted kernel plus the u64 level-mask
//!   pre-filter: each measure is quantised into [`LEVELS`] quantile cuts and
//!   a per-level bitmask over the sorted point order, so a single `AND` over
//!   packed words refutes dominance for 64 candidates at a time before any
//!   f64 is touched;
//! * [`skyline_scan_2d`] — exact two-measure sort-and-scan (prefix-minimum
//!   formulation) that reproduces the tolerance semantics of
//!   [`crate::dominance::dominates`] bit for bit;
//! * [`skyline_blocks`] — block-partitioned merge: each contiguous block of
//!   the sorted order rejects locally (a same-block dominator is a global
//!   dominator, so local rejections are final), then the few survivors are
//!   verified against the full index. The engine wave-parallelises the same
//!   two phases across its thread pool.
//!
//! ## Why the kernels cannot take shortcuts
//!
//! [`crate::dominance::dominates`] is tolerance-based (`1e-12` margins),
//! which makes it **non-transitive**: `q` may dominate `p` while a dominator
//! of `q` does not dominate `p` (margins add up). Classic SFS — comparing
//! candidates only against already-accepted skyline members — is therefore
//! *not* equivalent to the pairwise baseline. Every kernel here evaluates the
//! baseline's per-point predicate exactly ("no other point dominates `p`, and
//! no earlier point equals `p`"); sorting, masks and blocks only *narrow the
//! candidate set* with provably complete filters, never replace the final
//! f64 verdict.

use std::cell::Cell;
use std::collections::HashSet;

use crate::dominance::{dominates, pairwise_flags_with_stats, skyline_pairwise_with_stats};
use crate::measure::quantile_cuts;
use crate::telemetry;

/// Absolute comparison tolerance of [`crate::dominance::dominates`].
pub const TOLERANCE: f64 = 1e-12;

/// Quantisation levels per measure in the word-parallel pre-filter.
pub const LEVELS: usize = 8;

/// Minimum point count before the level-mask pre-filter pays for itself;
/// below it the plain sorted kernel is used.
pub const MASK_MIN_POINTS: usize = 256;

/// Metric name for total f64 dominance comparisons performed by kernels.
pub const COMPARISONS_TOTAL: &str = "dominance_comparisons_total";
/// Help text for [`COMPARISONS_TOTAL`].
pub const COMPARISONS_HELP: &str = "Full f64 dominance comparisons performed by skyline kernels.";
/// Metric name for comparisons avoided relative to the pairwise bound.
pub const PRUNED_TOTAL: &str = "dominance_pruned_total";
/// Help text for [`PRUNED_TOTAL`].
pub const PRUNED_HELP: &str =
    "Dominance comparisons avoided relative to the full n*(n-1) pairwise bound.";
/// Metric name for per-kernel selection counts.
pub const KERNEL_SELECTIONS_TOTAL: &str = "dominance_kernel_selections_total";
/// Help text for [`KERNEL_SELECTIONS_TOTAL`].
pub const KERNEL_SELECTIONS_HELP: &str = "Skyline kernel selections by kernel name.";

/// Work statistics of one skyline kernel run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DominanceStats {
    /// Kernel that produced the result (`pairwise`, `scan2d`, `sorted`,
    /// `indexed`, `blocks` or `parallel`).
    pub kernel: &'static str,
    /// Full f64 [`dominates`] evaluations performed.
    pub comparisons: u64,
    /// Comparisons avoided relative to the full `n·(n−1)` pairwise bound.
    pub pruned: u64,
}

impl DominanceStats {
    /// Fresh zeroed statistics for `kernel`.
    pub fn new(kernel: &'static str) -> Self {
        DominanceStats {
            kernel,
            comparisons: 0,
            pruned: 0,
        }
    }

    /// Adds another run's comparison count (used when merging per-worker
    /// statistics of a parallel kernel).
    pub fn absorb(&mut self, other: &DominanceStats) {
        self.comparisons += other.comparisons;
    }

    /// Derives `pruned` from the full `n·(n−1)` pairwise bound once the
    /// kernel has finished its comparisons over `n` points.
    pub fn finish(&mut self, n: usize) {
        let n = n as u64;
        self.pruned = (n * n.saturating_sub(1)).saturating_sub(self.comparisons);
    }
}

thread_local! {
    static TALLY: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// Takes (and resets) this thread's accumulated `(comparisons, pruned)`
/// tally. The engine brackets an algorithm run with this to attribute
/// dominance work to a namespace without threading stats through every
/// signature.
pub fn take_tally() -> (u64, u64) {
    TALLY.with(|t| t.replace((0, 0)))
}

/// Flushes one kernel run's statistics into the thread-local tally and —
/// when an ambient [`telemetry`] scope is open — the ambient metrics
/// registry (`dominance_comparisons_total`, `dominance_pruned_total`,
/// `dominance_kernel_selections_total{kernel}`).
pub fn record_stats(stats: &DominanceStats) {
    TALLY.with(|t| {
        let (c, p) = t.get();
        t.set((c + stats.comparisons, p + stats.pruned));
    });
    if let Some(t) = telemetry::ambient() {
        t.metrics
            .counter(COMPARISONS_TOTAL, COMPARISONS_HELP)
            .add(stats.comparisons);
        t.metrics
            .counter(PRUNED_TOTAL, PRUNED_HELP)
            .add(stats.pruned);
        t.metrics
            .counter_with(
                KERNEL_SELECTIONS_TOTAL,
                KERNEL_SELECTIONS_HELP,
                &[("kernel", stats.kernel)],
            )
            .inc();
    }
}

/// `Some(dims)` when `points` is a non-empty rectangular matrix with at
/// least one measure; `None` sends the input to the pairwise baseline.
pub(crate) fn uniform_dims<P: AsRef<[f64]>>(points: &[P]) -> Option<usize> {
    let dims = points.first()?.as_ref().len();
    if dims == 0 || points.iter().any(|p| p.as_ref().len() != dims) {
        return None;
    }
    Some(dims)
}

/// Flags rows that are exact duplicates (`==` on every coordinate) of an
/// earlier row. Matches slice `PartialEq`: `-0.0 == 0.0`, and any row with a
/// NaN coordinate equals nothing (including itself).
pub(crate) fn dup_earlier_flags<P: AsRef<[f64]>>(points: &[P]) -> Vec<bool> {
    let mut flags = vec![false; points.len()];
    let mut seen: HashSet<Vec<u64>> = HashSet::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        let row = p.as_ref();
        if row.iter().any(|v| v.is_nan()) {
            continue;
        }
        let key: Vec<u64> = row
            .iter()
            .map(|&v| (if v == 0.0 { 0.0f64 } else { v }).to_bits())
            .collect();
        if !seen.insert(key) {
            flags[i] = true;
        }
    }
    flags
}

/// A reusable dominance acceleration structure over one point set.
///
/// Layout: **clean** points (no NaN coordinate, non-NaN coordinate sum) are
/// sorted by ascending coordinate sum; **dirty** points follow in input
/// order. A clean dominator `q` of a clean point `p` satisfies
/// `sum(q) ≤ sum(p) + margin(p)` (the tolerance plus a rigorous floating
/// point slack), so candidate dominators of a clean point form a *prefix* of
/// the sorted order plus the dirty tail — dirty points can dominate anything
/// because NaN coordinates pass both dominance checks vacuously.
///
/// On top of the order sit the u64 level masks: per measure `m` and level
/// `ℓ`, bit `k` of `mask[m][ℓ]` is set iff sorted point `k` has
/// `value ≤ cuts[m][ℓ]` or a NaN value there. A query widens each
/// constraint `q_m ≤ p_m + tolerance` up to the next cut, so `AND`-ing the
/// constrained masks can only *keep* true dominators — zero words refute 64
/// candidates at once without touching an f64.
#[derive(Debug, Clone)]
pub struct DominanceIndex {
    dims: usize,
    n: usize,
    /// Row-major values by original index.
    values: Vec<f64>,
    /// Position → original index.
    order: Vec<u32>,
    /// Original index → position.
    pos_of: Vec<u32>,
    /// Coordinate sum by position (clean prefix is ascending).
    sums: Vec<f64>,
    /// Per-original-index sum slack covering tolerance and fp rounding.
    margins: Vec<f64>,
    clean_len: usize,
    words: usize,
    /// Per-measure ascending quantile cuts.
    cuts: Vec<Vec<f64>>,
    /// `[(m*LEVELS + ℓ)*words + w]`, bits indexed by position.
    masks: Vec<u64>,
    dup_earlier: Vec<bool>,
}

impl DominanceIndex {
    /// Builds the index; `None` when `points` is empty, has zero measures or
    /// is ragged (those inputs go to the pairwise baseline).
    pub fn build<P: AsRef<[f64]>>(points: &[P]) -> Option<DominanceIndex> {
        let n = points.len();
        let dims = uniform_dims(points)?;
        let mut values = Vec::with_capacity(n * dims);
        for p in points {
            values.extend_from_slice(p.as_ref());
        }

        let mut sums_by_orig = vec![0.0f64; n];
        let mut margins = vec![0.0f64; n];
        let mut clean = vec![false; n];
        for i in 0..n {
            let row = &values[i * dims..(i + 1) * dims];
            let mut sum = 0.0f64;
            let mut abs = 0.0f64;
            let mut has_nan = false;
            for &v in row {
                sum += v;
                abs += v.abs();
                has_nan |= v.is_nan();
            }
            clean[i] = !has_nan && !sum.is_nan();
            sums_by_orig[i] = sum;
            // Sum slack: d·tolerance for the dominance margins themselves,
            // plus a generous bound on the rounding error of both prefix
            // sums (recursive summation error ≤ (d−1)·ε·Σ|v|).
            margins[i] = dims as f64 * TOLERANCE + 4.0 * dims as f64 * f64::EPSILON * (abs + 1.0);
        }

        let mut order: Vec<u32> = (0..n as u32).filter(|&i| clean[i as usize]).collect();
        order.sort_unstable_by(|&a, &b| {
            sums_by_orig[a as usize]
                .total_cmp(&sums_by_orig[b as usize])
                .then(a.cmp(&b))
        });
        let clean_len = order.len();
        order.extend((0..n as u32).filter(|&i| !clean[i as usize]));
        let mut pos_of = vec![0u32; n];
        for (pos, &orig) in order.iter().enumerate() {
            pos_of[orig as usize] = pos as u32;
        }
        let sums: Vec<f64> = order.iter().map(|&o| sums_by_orig[o as usize]).collect();

        let dup_earlier = dup_earlier_flags(points);

        let mut cuts = Vec::with_capacity(dims);
        for m in 0..dims {
            let mut vals: Vec<f64> = (0..n)
                .filter_map(|i| {
                    let v = values[i * dims + m];
                    (!v.is_nan()).then_some(v)
                })
                .collect();
            vals.sort_unstable_by(f64::total_cmp);
            cuts.push(quantile_cuts(&vals, LEVELS));
        }

        let words = n.div_ceil(64);
        let mut masks = vec![0u64; dims * LEVELS * words];
        for (pos, &orig) in order.iter().enumerate() {
            let row = &values[orig as usize * dims..orig as usize * dims + dims];
            let (w, b) = (pos / 64, pos % 64);
            for (m, row_v) in row.iter().enumerate() {
                for (l, &cut) in cuts[m].iter().enumerate() {
                    if row_v.is_nan() || *row_v <= cut {
                        masks[(m * LEVELS + l) * words + w] |= 1u64 << b;
                    }
                }
            }
        }

        Some(DominanceIndex {
            dims,
            n,
            values,
            order,
            pos_of,
            sums,
            margins,
            clean_len,
            words,
            cuts,
            masks,
            dup_earlier,
        })
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the index holds no points (never true — `build` returns
    /// `None` for empty inputs — but part of the `len` idiom).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether point `i` is an exact duplicate of an earlier point.
    pub fn is_dup_of_earlier(&self, i: usize) -> bool {
        self.dup_earlier[i]
    }

    fn row(&self, i: usize) -> &[f64] {
        &self.values[i * self.dims..(i + 1) * self.dims]
    }

    /// End (exclusive, in sorted positions) of the clean candidate prefix
    /// that can contain a dominator of point `i`.
    fn candidate_limit(&self, i: usize) -> usize {
        let pos = self.pos_of[i] as usize;
        if pos >= self.clean_len {
            return self.clean_len;
        }
        let bound = self.sums[pos] + self.margins[i];
        if bound.is_nan() {
            return self.clean_len;
        }
        self.sums[..self.clean_len].partition_point(|&s| s <= bound)
    }

    /// Mask slices constraining candidates for query point `p`: one per
    /// measure whose bound `p_m + tolerance` falls below the top cut. A NaN
    /// coordinate constrains nothing (any value passes its dominance check).
    fn constrained_masks(&self, p: &[f64]) -> Vec<&[u64]> {
        let mut constrained = Vec::with_capacity(self.dims);
        for (m, &pm) in p.iter().enumerate() {
            if pm.is_nan() {
                continue;
            }
            let bound = pm + TOLERANCE;
            let cm = &self.cuts[m];
            let l = cm.partition_point(|&c| c < bound);
            if l < cm.len() {
                let base = (m * LEVELS + l) * self.words;
                constrained.push(&self.masks[base..base + self.words]);
            }
        }
        constrained
    }

    fn scan_plain(
        &self,
        i: usize,
        p: &[f64],
        ranges: [(usize, usize); 2],
        stats: &mut DominanceStats,
    ) -> bool {
        for (start, end) in ranges {
            for pos in start..end {
                let orig = self.order[pos] as usize;
                if orig == i {
                    continue;
                }
                stats.comparisons += 1;
                if dominates(self.row(orig), p) {
                    return true;
                }
            }
        }
        false
    }

    fn scan_masked(
        &self,
        i: usize,
        p: &[f64],
        ranges: [(usize, usize); 2],
        stats: &mut DominanceStats,
    ) -> bool {
        let constrained = self.constrained_masks(p);
        if constrained.is_empty() {
            return self.scan_plain(i, p, ranges, stats);
        }
        for (start, end) in ranges {
            if start >= end {
                continue;
            }
            let (w0, w1) = (start / 64, (end - 1) / 64);
            for w in w0..=w1 {
                let mut bits = !0u64;
                if w == w0 {
                    bits &= !0u64 << (start % 64);
                }
                if w == w1 {
                    let top = end - w * 64;
                    if top < 64 {
                        bits &= (1u64 << top) - 1;
                    }
                }
                for mask in &constrained {
                    bits &= mask[w];
                }
                while bits != 0 {
                    let pos = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let orig = self.order[pos] as usize;
                    if orig == i {
                        continue;
                    }
                    stats.comparisons += 1;
                    if dominates(self.row(orig), p) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Whether some other point dominates point `i` (exact: same verdict as
    /// scanning every other point with [`dominates`]).
    pub fn dominated(&self, i: usize, use_masks: bool, stats: &mut DominanceStats) -> bool {
        if self.n <= 1 {
            return false;
        }
        let p = self.row(i);
        let limit = self.candidate_limit(i);
        let ranges = [(0, limit), (self.clean_len, self.n)];
        if use_masks {
            self.scan_masked(i, p, ranges, stats)
        } else {
            self.scan_plain(i, p, ranges, stats)
        }
    }

    /// Phase 1 of the block kernel: evaluates sorted positions
    /// `[start, end)` against candidates *within the block only* (clipped to
    /// each query's global candidate window) and returns the original
    /// indices that survive. A same-block dominator is a global dominator
    /// and global duplicate flags are precomputed, so every rejection here
    /// is final; survivors still need [`DominanceIndex::dominated`] against
    /// the full index.
    pub fn local_pass(
        &self,
        start: usize,
        end: usize,
        use_masks: bool,
        stats: &mut DominanceStats,
    ) -> Vec<u32> {
        let mut out = Vec::new();
        for pos in start..end {
            let orig = self.order[pos] as usize;
            if self.dup_earlier[orig] {
                continue;
            }
            let p = self.row(orig);
            let limit = self.candidate_limit(orig);
            let clean_hi = limit.min(end).min(self.clean_len);
            let ranges = [
                (start.min(clean_hi), clean_hi),
                (start.max(self.clean_len), end),
            ];
            let hit = if use_masks {
                self.scan_masked(orig, p, ranges, stats)
            } else {
                self.scan_plain(orig, p, ranges, stats)
            };
            if !hit {
                out.push(orig as u32);
            }
        }
        out
    }
}

fn index_flags_with_stats<P: AsRef<[f64]>>(
    points: &[P],
    use_masks: bool,
) -> (Vec<bool>, DominanceStats) {
    let kernel = if use_masks { "indexed" } else { "sorted" };
    let Some(index) = DominanceIndex::build(points) else {
        return pairwise_flags_with_stats(points);
    };
    let mut stats = DominanceStats::new(kernel);
    let flags: Vec<bool> = (0..index.n)
        .map(|i| index.dominated(i, use_masks, &mut stats))
        .collect();
    stats.finish(index.n);
    (flags, stats)
}

fn index_skyline_with_stats<P: AsRef<[f64]>>(
    points: &[P],
    use_masks: bool,
) -> (Vec<usize>, DominanceStats) {
    let kernel = if use_masks { "indexed" } else { "sorted" };
    let Some(index) = DominanceIndex::build(points) else {
        return skyline_pairwise_with_stats(points);
    };
    let mut stats = DominanceStats::new(kernel);
    let mut keep = Vec::new();
    for i in 0..index.n {
        if !index.is_dup_of_earlier(i) && !index.dominated(i, use_masks, &mut stats) {
            keep.push(i);
        }
    }
    stats.finish(index.n);
    (keep, stats)
}

/// SFS/SaLSa-style sorted kernel: sum-sorted candidate order with early
/// termination, no masks. Byte-identical to the pairwise baseline.
pub fn skyline_sorted<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    let (keep, stats) = skyline_sorted_with_stats(points);
    record_stats(&stats);
    keep
}

/// [`skyline_sorted`] returning work statistics without flushing them.
pub fn skyline_sorted_with_stats<P: AsRef<[f64]>>(points: &[P]) -> (Vec<usize>, DominanceStats) {
    index_skyline_with_stats(points, false)
}

/// Sorted kernel plus u64 level-mask pre-filter. Byte-identical to the
/// pairwise baseline.
pub fn skyline_indexed<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    let (keep, stats) = skyline_indexed_with_stats(points);
    record_stats(&stats);
    keep
}

/// [`skyline_indexed`] returning work statistics without flushing them.
pub fn skyline_indexed_with_stats<P: AsRef<[f64]>>(points: &[P]) -> (Vec<usize>, DominanceStats) {
    index_skyline_with_stats(points, true)
}

/// Dominance-only flags via the index (no duplicate rule): `flags[i]` is
/// true iff some other point dominates point `i`.
pub fn indexed_flags_with_stats<P: AsRef<[f64]>>(
    points: &[P],
    use_masks: bool,
) -> (Vec<bool>, DominanceStats) {
    index_flags_with_stats(points, use_masks)
}

fn flags_scan_2d_core<P: AsRef<[f64]>>(points: &[P]) -> Option<(Vec<bool>, DominanceStats)> {
    if uniform_dims(points)? != 2 {
        return None;
    }
    let n = points.len();
    let mut stats = DominanceStats::new("scan2d");
    let mut clean: Vec<(f64, f64)> = Vec::with_capacity(n);
    let mut dirty: Vec<usize> = Vec::new();
    for (i, p) in points.iter().enumerate() {
        let row = p.as_ref();
        if row[0].is_nan() || row[1].is_nan() {
            dirty.push(i);
        } else {
            clean.push((row[0], row[1]));
        }
    }
    clean.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
    let xs: Vec<f64> = clean.iter().map(|c| c.0).collect();
    let mut prefmin = Vec::with_capacity(clean.len() + 1);
    prefmin.push(f64::INFINITY);
    let mut cur = f64::INFINITY;
    for &(_, y) in &clean {
        if y < cur {
            cur = y;
        }
        prefmin.push(cur);
    }
    let flags: Vec<bool> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let row = p.as_ref();
            if row[0].is_nan() || row[1].is_nan() {
                // A dirty point imposes almost no constraints, but can
                // still be dominated; check it pairwise.
                return points.iter().enumerate().any(|(j, q)| {
                    if j == i {
                        return false;
                    }
                    stats.comparisons += 1;
                    dominates(q.as_ref(), row)
                });
            }
            let (px, py) = (row[0], row[1]);
            // A1: some clean q with q_x < p_x − t and q_y ≤ p_y + t
            // (strictly better on x, no worse on y).
            let a = xs.partition_point(|&x| x < px - TOLERANCE);
            if a > 0 && prefmin[a] <= py + TOLERANCE {
                return true;
            }
            // A2: some clean q with q_x ≤ p_x + t and q_y < p_y − t
            // (no worse on x, strictly better on y).
            let b = xs.partition_point(|&x| x <= px + TOLERANCE);
            if b > 0 && prefmin[b] < py - TOLERANCE {
                return true;
            }
            // Dirty points dominate through vacuous NaN checks; scan them.
            dirty.iter().any(|&j| {
                stats.comparisons += 1;
                dominates(points[j].as_ref(), row)
            })
        })
        .collect();
    stats.finish(n);
    Some((flags, stats))
}

/// Dominance-only flags for two-measure inputs via the exact prefix-minimum
/// scan; `None` when the input is not a rectangular two-measure matrix.
pub(crate) fn flags_scan_2d<P: AsRef<[f64]>>(points: &[P]) -> Option<(Vec<bool>, DominanceStats)> {
    flags_scan_2d_core(points)
}

/// Exact two-measure sort-and-scan skyline (`O(n log n)`), byte-identical
/// to the pairwise baseline including its `1e-12` tolerance and NaN
/// semantics. Falls back to the sorted kernel for non-two-measure inputs.
pub fn skyline_scan_2d<P: AsRef<[f64]>>(points: &[P]) -> Vec<usize> {
    let (keep, stats) = skyline_scan_2d_with_stats(points);
    record_stats(&stats);
    keep
}

/// [`skyline_scan_2d`] returning work statistics without flushing them.
pub fn skyline_scan_2d_with_stats<P: AsRef<[f64]>>(points: &[P]) -> (Vec<usize>, DominanceStats) {
    let Some((flags, stats)) = flags_scan_2d_core(points) else {
        return skyline_sorted_with_stats(points);
    };
    let dup = dup_earlier_flags(points);
    let keep = flags
        .iter()
        .zip(dup.iter())
        .enumerate()
        .filter(|(_, (&d, &e))| !d && !e)
        .map(|(i, _)| i)
        .collect();
    (keep, stats)
}

/// Block-partitioned skyline merge: partial (locally filtered) skylines per
/// contiguous block of the sorted order, then survivors verified against
/// the full index. Byte-identical to the pairwise baseline for any block
/// count; `modis-engine`'s `parallel_skyline` runs the same phases on its
/// thread pool.
pub fn skyline_blocks<P: AsRef<[f64]>>(points: &[P], blocks: usize) -> Vec<usize> {
    let (keep, stats) = skyline_blocks_with_stats(points, blocks);
    record_stats(&stats);
    keep
}

/// [`skyline_blocks`] returning work statistics without flushing them.
pub fn skyline_blocks_with_stats<P: AsRef<[f64]>>(
    points: &[P],
    blocks: usize,
) -> (Vec<usize>, DominanceStats) {
    let Some(index) = DominanceIndex::build(points) else {
        return skyline_pairwise_with_stats(points);
    };
    let n = index.len();
    let use_masks = n >= MASK_MIN_POINTS;
    let blocks = blocks.clamp(1, n);
    let mut stats = DominanceStats::new("blocks");
    let mut survivors: Vec<u32> = Vec::new();
    let per = n.div_ceil(blocks);
    let mut start = 0;
    while start < n {
        let end = (start + per).min(n);
        survivors.extend(index.local_pass(start, end, use_masks, &mut stats));
        start = end;
    }
    let mut keep: Vec<usize> = survivors
        .into_iter()
        .map(|orig| orig as usize)
        .filter(|&orig| !index.dominated(orig, use_masks, &mut stats))
        .collect();
    keep.sort_unstable();
    stats.finish(n);
    (keep, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dominance::skyline_pairwise_baseline;

    fn lcg_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        (0..n)
            .map(|_| (0..dims).map(|_| next()).collect())
            .collect()
    }

    #[test]
    fn kernels_match_baseline_on_random_inputs() {
        for &(n, dims, seed) in &[
            (0usize, 3usize, 1u64),
            (1, 4, 2),
            (7, 1, 3),
            (64, 3, 4),
            (300, 4, 5),
            (129, 6, 6),
        ] {
            let pts = lcg_points(n, dims, seed);
            let base = skyline_pairwise_baseline(&pts);
            assert_eq!(skyline_sorted(&pts), base, "sorted n={n} d={dims}");
            assert_eq!(skyline_indexed(&pts), base, "indexed n={n} d={dims}");
            for blocks in [1, 2, 3, 7] {
                assert_eq!(skyline_blocks(&pts, blocks), base, "blocks={blocks}");
            }
        }
    }

    #[test]
    fn scan_2d_matches_baseline_including_sub_tolerance_pairs() {
        // Within-tolerance pair: neither dominates, both survive.
        let pts = vec![vec![0.1, 0.5], vec![0.1, 0.5 - 5e-13], vec![0.3, 0.1]];
        let base = skyline_pairwise_baseline(&pts);
        assert_eq!(base, vec![0, 1, 2]);
        assert_eq!(skyline_scan_2d(&pts), base);
        let rnd = lcg_points(400, 2, 9);
        assert_eq!(skyline_scan_2d(&rnd), skyline_pairwise_baseline(&rnd));
    }

    #[test]
    fn masked_scan_prunes_but_agrees() {
        let pts = lcg_points(1000, 4, 11);
        let (a, sa) = skyline_indexed_with_stats(&pts);
        let (b, sb) = skyline_sorted_with_stats(&pts);
        assert_eq!(a, b);
        assert!(sa.comparisons <= sb.comparisons);
        assert!(sa.pruned >= sb.pruned);
        assert!(sa.pruned > 0);
    }

    #[test]
    fn quantile_cut_levels_cover_dominator_bounds() {
        let pts = lcg_points(500, 3, 13);
        let index = DominanceIndex::build(&pts).unwrap();
        for cuts in &index.cuts {
            assert!(!cuts.is_empty());
            assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
