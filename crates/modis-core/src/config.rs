//! MODis algorithm configuration and result types.

use modis_data::StateBitmap;

use crate::estimator::{EstimatorMode, ValuationStats};

/// Configuration shared by ApxMODis, BiMODis, NOBiMODis and DivMODis.
#[derive(Debug, Clone)]
pub struct ModisConfig {
    /// ε of the ε-skyline approximation.
    pub epsilon: f64,
    /// Maximum number of valuated states `N`.
    pub max_states: usize,
    /// Maximum path length (search depth `maxl`).
    pub max_level: usize,
    /// Spearman threshold θ for the correlation graph (BiMODis pruning).
    pub theta: f64,
    /// Diversified skyline size `k` (DivMODis).
    pub k: usize,
    /// Content-vs-performance diversity trade-off α (DivMODis, Eq. 2).
    pub alpha: f64,
    /// Estimator mode (oracle or MO-GBM surrogate).
    pub estimator: EstimatorMode,
    /// Index of the decisive measure; `None` uses the last measure.
    pub decisive: Option<usize>,
}

impl Default for ModisConfig {
    fn default() -> Self {
        ModisConfig {
            epsilon: 0.1,
            max_states: 200,
            max_level: 6,
            theta: 0.8,
            k: 5,
            alpha: 0.5,
            estimator: EstimatorMode::default(),
            decisive: None,
        }
    }
}

impl ModisConfig {
    /// Builder-style ε setter.
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon.max(1e-6);
        self
    }

    /// Builder-style state-budget setter.
    pub fn with_max_states(mut self, n: usize) -> Self {
        self.max_states = n.max(1);
        self
    }

    /// Builder-style depth setter.
    pub fn with_max_level(mut self, maxl: usize) -> Self {
        self.max_level = maxl;
        self
    }

    /// Builder-style estimator setter.
    pub fn with_estimator(mut self, mode: EstimatorMode) -> Self {
        self.estimator = mode;
        self
    }

    /// Builder-style diversification setter.
    pub fn with_diversification(mut self, k: usize, alpha: f64) -> Self {
        self.k = k.max(1);
        self.alpha = alpha.clamp(0.0, 1.0);
        self
    }
}

/// One member of a (diversified) ε-skyline set.
#[derive(Debug, Clone)]
pub struct SkylineEntry {
    /// State bitmap of the generated dataset.
    pub bitmap: StateBitmap,
    /// Normalised performance vector used during the search.
    pub perf: Vec<f64>,
    /// Raw metric values from the final oracle valuation.
    pub raw: Vec<f64>,
    /// Reported artefact size.
    pub size: (usize, usize),
    /// Search level at which the state was produced.
    pub level: usize,
}

/// Result of one MODis run.
#[derive(Debug, Clone, Default)]
pub struct SkylineResult {
    /// The ε-skyline entries.
    pub entries: Vec<SkylineEntry>,
    /// Number of states valuated during the search.
    pub states_valuated: usize,
    /// Wall-clock search time in seconds.
    pub elapsed_seconds: f64,
    /// Valuation counters (oracle vs surrogate vs cache).
    pub stats: ValuationStats,
}

impl SkylineResult {
    /// Entry whose *raw* value of measure `index` is best, where "best"
    /// follows `higher_is_better`. This mirrors the paper's protocol of
    /// picking the skyline table with the best estimated primary measure
    /// for single-number comparisons against baselines.
    pub fn best_by_raw(&self, index: usize, higher_is_better: bool) -> Option<&SkylineEntry> {
        self.entries.iter().min_by(|a, b| {
            let (x, y) = (
                a.raw.get(index).copied().unwrap_or(f64::NAN),
                b.raw.get(index).copied().unwrap_or(f64::NAN),
            );
            let (x, y) = if higher_is_better { (-x, -y) } else { (x, y) };
            x.partial_cmp(&y).unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Entry with the smallest normalised value of measure `index`.
    pub fn best_by_normalised(&self, index: usize) -> Option<&SkylineEntry> {
        self.entries.iter().min_by(|a, b| {
            a.perf[index]
                .partial_cmp(&b.perf[index])
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// The run's *paid* valuation cost: oracle trainings plus surrogate
    /// predictions, excluding valuations answered free of charge by the
    /// record store or the shared cross-run cache. This is the counter
    /// cost-aware scheduling feeds on — it measures how expensive the run
    /// was on this cache state, not how many states it touched.
    pub fn valuation_cost(&self) -> usize {
        self.stats.oracle_calls + self.stats.surrogate_calls
    }

    /// Every valuation the run requested, paid or answered from a cache
    /// (record-store hits and shared-cache hits included).
    pub fn total_valuations(&self) -> usize {
        self.stats.oracle_calls
            + self.stats.surrogate_calls
            + self.stats.cache_hits
            + self.stats.shared_hits
    }

    /// Number of skyline entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the skyline is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(perf: Vec<f64>, raw: Vec<f64>) -> SkylineEntry {
        SkylineEntry {
            bitmap: StateBitmap::full(3),
            perf,
            raw,
            size: (10, 3),
            level: 1,
        }
    }

    #[test]
    fn config_builders_clamp_values() {
        let cfg = ModisConfig::default()
            .with_epsilon(0.0)
            .with_max_states(0)
            .with_diversification(0, 2.0);
        assert!(cfg.epsilon > 0.0);
        assert_eq!(cfg.max_states, 1);
        assert_eq!(cfg.k, 1);
        assert_eq!(cfg.alpha, 1.0);
    }

    #[test]
    fn best_by_raw_respects_direction() {
        let res = SkylineResult {
            entries: vec![
                entry(vec![0.2, 0.3], vec![0.8, 5.0]),
                entry(vec![0.4, 0.1], vec![0.6, 2.0]),
            ],
            ..Default::default()
        };
        assert_eq!(res.best_by_raw(0, true).unwrap().raw[0], 0.8);
        assert_eq!(res.best_by_raw(1, false).unwrap().raw[1], 2.0);
        assert_eq!(res.best_by_normalised(1).unwrap().perf[1], 0.1);
        assert_eq!(res.len(), 2);
        assert!(!res.is_empty());
    }
}
