//! Zero-dependency metrics and tracing primitives.
//!
//! The serving stack's whole premise is that oracle valuations dominate
//! cost — so the stack must be able to *show* where requests spend their
//! time without asking anything of the environment: no exporter crate, no
//! background thread, no clock syscall on the per-sample fast path beyond
//! what the caller already pays. This module provides the two primitives
//! everything above builds on:
//!
//! * a [`MetricsRegistry`] of lock-free instruments — [`Counter`]s,
//!   [`Gauge`]s and log2-bucketed latency [`Histogram`]s with p50/p90/p99
//!   estimation and lossless [`Histogram::merge`] — rendered on demand as
//!   Prometheus-style text exposition ([`MetricsRegistry::render`]);
//! * a fixed-capacity ring-buffer span [`Tracer`] with scoped [`Span`]
//!   guards (start, duration, parent, thread, trace), cheap enough to
//!   leave on in production and dumped over the wire by the `TRACE DUMP`
//!   verb.
//!
//! Spans stitch across threads and processes through an explicit
//! [`TraceContext`]: a `(trace_id, span_id, parent_id)` triple minted
//! once per request, carried through job queues onto executor threads
//! ([`Tracer::span_with`]) and across the wire as a fixed-width hex
//! token ([`TraceContext::encode`] / [`TraceContext::decode`]). Every
//! span recorded under a context lands in a bounded per-trace index
//! ([`Tracer::trace_spans`]) so the `EXPLAIN` verb can answer one
//! request's complete, time-ordered timeline; the slowest stitched
//! traces over a caller-chosen threshold are additionally kept in a
//! slow-request ring ([`Tracer::note_slow`] / [`Tracer::slowest`]).
//!
//! Instruments are registered once (idempotently) and the returned
//! `Arc` handles are updated with single relaxed atomic operations — the
//! registry's mutex is only taken at registration and exposition time,
//! never on the record path. Layers that cannot reach a registry by
//! reference (the wave expander deep inside a search) read the ambient
//! telemetry installed by [`with_ambient`] for the current call tree.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Number of log2 buckets a [`Histogram`] keeps: one per possible bit
/// width of a `u64` sample (0 has width 0), so every sample maps to
/// exactly one bucket with two instructions and no branches.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter (relaxed atomic increments).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (relaxed atomic stores).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A lock-free log2-bucketed histogram for latency-like `u64` samples
/// (microseconds by convention across this workspace).
///
/// A sample `v` lands in the bucket indexed by its bit width (`v = 0` →
/// bucket 0, `1` → 1, `2..=3` → 2, `4..=7` → 3, …), so recording is two
/// relaxed `fetch_add`s and a `leading_zeros` — cheap enough for a
/// 4M req/s reactor hot path. Quantiles are estimated as the upper bound
/// (`2^i − 1`) of the bucket containing the requested rank, which makes
/// them monotone in the rank by construction and at most one octave above
/// the true value. [`Histogram::merge`] adds bucket vectors element-wise,
/// which is lossless (the merged histogram is exactly the histogram of
/// the concatenated sample streams) and therefore order-insensitive —
/// the property the cluster fan-in relies on.
///
/// ```
/// use modis_core::telemetry::Histogram;
/// let h = Histogram::new();
/// for v in [1u64, 2, 3, 100, 5_000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.value_sum(), 5_106);
/// assert!(h.quantile(0.5) <= h.quantile(0.99));
/// ```
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The bucket index of a sample: its bit width.
#[inline]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of bucket `i` (`2^i − 1`, saturating).
fn bucket_bound(index: usize) -> u64 {
    if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as whole microseconds (saturating).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Total recorded samples — by definition the sum over all buckets,
    /// so no recorded sample can ever be unaccounted for.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded sample values (wrapping on overflow).
    pub fn value_sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Estimated value at quantile `q ∈ [0, 1]`: the upper bound of the
    /// bucket containing rank `⌈q·count⌉`. Returns 0 for an empty
    /// histogram. Monotone in `q`.
    pub fn quantile(&self, q: f64) -> u64 {
        let snapshot = self.snapshot();
        let count: u64 = snapshot.iter().sum();
        if count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in snapshot.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(HISTOGRAM_BUCKETS - 1)
    }

    /// Estimated median (`quantile(0.5)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.5)
    }

    /// Estimated 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.9)
    }

    /// Estimated 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Folds `other` into `self` bucket-wise. Lossless: the result is
    /// exactly the histogram of both sample streams concatenated, so
    /// merging in any order (and any grouping) yields the same state.
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// The kind of instrument a family holds (one kind per metric name).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn exposition_name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// One registered instrument.
#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// All series of one metric name: shared help text, kind, and one
/// instrument per distinct label set (in registration order).
struct Family {
    help: &'static str,
    kind: Kind,
    /// `(rendered label block, instrument)` — the block is `""` for the
    /// unlabeled series, else `{key="value",…}` with registration-order
    /// keys.
    series: Vec<(String, Instrument)>,
}

/// A registry of named instruments with Prometheus-style exposition.
///
/// Registration is idempotent: asking for the same `(name, labels)` pair
/// again returns the existing handle, so call sites may re-register
/// freely instead of threading handles around. The registry lock is only
/// held during registration and [`MetricsRegistry::render`] — recording
/// through the returned handles is lock-free.
///
/// ```
/// use modis_core::telemetry::MetricsRegistry;
/// let registry = MetricsRegistry::new();
/// let hits = registry.counter_with(
///     "cache_hits_total",
///     "Cache hits.",
///     &[("namespace", "pool")],
/// );
/// hits.add(3);
/// let text = registry.render().join("\n");
/// assert!(text.contains("cache_hits_total{namespace=\"pool\"} 3"));
/// ```
#[derive(Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("MetricsRegistry")
    }
}

/// Renders a label slice as an exposition label block.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={:?}", v)).collect();
    format!("{{{}}}", body.join(","))
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<&'static str, Family>> {
        self.families.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: Kind,
        labels: &[(&str, &str)],
        fresh: impl FnOnce() -> Instrument,
    ) -> Instrument {
        let block = label_block(labels);
        let mut families = self.lock();
        let family = families.entry(name).or_insert_with(|| Family {
            help,
            kind,
            series: Vec::new(),
        });
        assert_eq!(
            family.kind, kind,
            "metric {name:?} registered as both {:?} and {kind:?}",
            family.kind
        );
        if let Some((_, instrument)) = family.series.iter().find(|(b, _)| *b == block) {
            return instrument.clone();
        }
        let instrument = fresh();
        family.series.push((block, instrument.clone()));
        instrument
    }

    /// Registers (or finds) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a labeled counter.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Counter> {
        match self.register(name, help, Kind::Counter, labels, || {
            Instrument::Counter(Arc::new(Counter::new()))
        }) {
            Instrument::Counter(c) => c,
            _ => unreachable!("register enforces the kind"),
        }
    }

    /// Registers (or finds) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a labeled gauge.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Gauge> {
        match self.register(name, help, Kind::Gauge, labels, || {
            Instrument::Gauge(Arc::new(Gauge::new()))
        }) {
            Instrument::Gauge(g) => g,
            _ => unreachable!("register enforces the kind"),
        }
    }

    /// Registers (or finds) an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or finds) a labeled histogram.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, Kind::Histogram, labels, || {
            Instrument::Histogram(Arc::new(Histogram::new()))
        }) {
            Instrument::Histogram(h) => h,
            _ => unreachable!("register enforces the kind"),
        }
    }

    /// Renders every registered series as Prometheus-style text
    /// exposition lines (`# HELP` / `# TYPE` comments per family, then
    /// one sample line per series — histograms expand to cumulative
    /// `_bucket{le=…}` lines up to their highest non-empty bucket, plus
    /// `le="+Inf"`, `_sum` and `_count`). Families are rendered in name
    /// order, series in registration order, so the output is stable.
    pub fn render(&self) -> Vec<String> {
        let mut lines = Vec::new();
        for (name, family) in self.lock().iter() {
            lines.push(format!("# HELP {name} {}", family.help));
            lines.push(format!("# TYPE {name} {}", family.kind.exposition_name()));
            for (block, instrument) in &family.series {
                match instrument {
                    Instrument::Counter(c) => lines.push(format!("{name}{block} {}", c.get())),
                    Instrument::Gauge(g) => lines.push(format!("{name}{block} {}", g.get())),
                    Instrument::Histogram(h) => {
                        let snapshot = h.snapshot();
                        let highest = snapshot.iter().rposition(|&n| n > 0).unwrap_or(0);
                        let mut cumulative = 0u64;
                        for (i, n) in snapshot.iter().enumerate().take(highest + 1) {
                            cumulative += n;
                            lines.push(format!(
                                "{name}_bucket{} {cumulative}",
                                merge_le(block, bucket_bound(i))
                            ));
                        }
                        lines.push(format!("{name}_bucket{} {cumulative}", merge_inf(block)));
                        lines.push(format!("{name}_sum{block} {}", h.value_sum()));
                        lines.push(format!("{name}_count{block} {cumulative}"));
                    }
                }
            }
        }
        lines
    }
}

/// Splices an `le` label into an existing label block.
fn merge_le(block: &str, bound: u64) -> String {
    if block.is_empty() {
        format!("{{le=\"{bound}\"}}")
    } else {
        format!("{},le=\"{bound}\"}}", &block[..block.len() - 1])
    }
}

/// Splices the terminal `le="+Inf"` label into an existing label block.
fn merge_inf(block: &str) -> String {
    if block.is_empty() {
        "{le=\"+Inf\"}".to_string()
    } else {
        format!("{},le=\"+Inf\"}}", &block[..block.len() - 1])
    }
}

/// An explicit trace context: the identity a request carries across
/// thread hops (reactor → executor) and process hops (router → shard) so
/// spans recorded anywhere stitch into one timeline.
///
/// `trace_id` names the whole request tree (`0` = untraced); `span_id`
/// names the span the carrier is currently *inside*, which becomes the
/// parent of any span opened under this context ([`Tracer::span_with`]);
/// `parent_id` is that span's own parent. On the wire a context is 48
/// fixed-width lowercase hex digits — the argument of the optional
/// `CTX <hex>` request prefix.
///
/// ```
/// use modis_core::telemetry::TraceContext;
/// let ctx = TraceContext { trace_id: 0xabc, span_id: 7, parent_id: 0 };
/// let hex = ctx.encode();
/// assert_eq!(hex.len(), TraceContext::WIRE_LEN);
/// assert_eq!(TraceContext::decode(&hex), Some(ctx));
/// assert_eq!(TraceContext::decode("not hex"), None);
/// assert_eq!(TraceContext::decode(&hex[..40]), None, "truncated");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the whole request tree (0 = untraced).
    pub trace_id: u64,
    /// The span this context is currently inside: spans opened under the
    /// context record it as their parent.
    pub span_id: u64,
    /// The parent of `span_id` (0 = root).
    pub parent_id: u64,
}

impl TraceContext {
    /// Length of the wire encoding, in hex digits.
    pub const WIRE_LEN: usize = 48;

    /// The untraced context (all zeros): spans opened under it are kept
    /// in the retention rings but never indexed into a trace timeline.
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        parent_id: 0,
    };

    /// Whether this is the untraced context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// The fixed-width wire form: `trace_id`, `span_id` and `parent_id`
    /// as three concatenated 16-digit lowercase hex fields.
    pub fn encode(&self) -> String {
        format!(
            "{:016x}{:016x}{:016x}",
            self.trace_id, self.span_id, self.parent_id
        )
    }

    /// Strict inverse of [`TraceContext::encode`]: exactly
    /// [`TraceContext::WIRE_LEN`] hex digits (case-insensitive), anything
    /// else — wrong length, stray characters, truncation — answers
    /// `None`. Decoding never panics on any input.
    pub fn decode(hex: &str) -> Option<TraceContext> {
        if hex.len() != Self::WIRE_LEN || !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        let field = |i: usize| u64::from_str_radix(&hex[i * 16..(i + 1) * 16], 16).ok();
        Some(TraceContext {
            trace_id: field(0)?,
            span_id: field(1)?,
            parent_id: field(2)?,
        })
    }
}

/// One completed span captured by a [`Tracer`].
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Unique id within the tracer's lifetime (never 0).
    pub id: u64,
    /// Id of the span that was open on the same thread when this one
    /// started (or the explicit [`TraceContext::span_id`] for spans
    /// opened with [`Tracer::span_with`]), or 0 for a root span.
    pub parent: u64,
    /// The trace this span belongs to, or 0 for an untraced span.
    pub trace: u64,
    /// A stable per-thread discriminator (hash of the thread id).
    pub thread: u64,
    /// Static name given at [`Tracer::span`] time.
    pub name: &'static str,
    /// Microseconds since the tracer was created when the span started.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
}

/// One entry of the slow-request log: a stitched trace whose end-to-end
/// duration crossed the caller's threshold (see [`Tracer::note_slow`]).
#[derive(Debug, Clone)]
pub struct SlowTrace {
    /// The trace id of the slow request.
    pub trace: u64,
    /// End-to-end duration the caller observed, microseconds.
    pub dur_us: u64,
    /// Spans indexed for the trace when it was noted.
    pub spans: usize,
    /// Caller-supplied label (e.g. the scenario name).
    pub label: String,
}

/// How many ring shards a [`Tracer`] spreads completed spans over: spans
/// completing on different threads usually land in different shards, so
/// the (tiny) critical section is rarely contended.
const TRACER_SHARDS: usize = 8;

/// Most traces the per-trace span index retains, FIFO-evicted: the
/// newest `TRACE_INDEX_TRACES` distinct trace ids stay explainable.
const TRACE_INDEX_TRACES: usize = 256;

/// Most spans indexed per trace. Later spans of an over-long trace stay
/// in the retention rings (and in `TRACE DUMP`) but leave the stitched
/// `EXPLAIN` timeline — the bound keeps a runaway trace from pinning
/// unbounded memory.
const TRACE_INDEX_SPANS: usize = 128;

/// How many traces the slow-request ring retains (the N slowest).
const SLOW_TRACES: usize = 32;

/// A fixed-capacity ring buffer of completed [`SpanRecord`]s.
///
/// Scoped [`Span`] guards record start/end/parent on drop; the newest
/// `capacity` completed spans are retained, oldest evicted first (each
/// eviction counted by [`Tracer::dropped_spans`]). Parent linkage is
/// implicit within a thread (a span's parent is whatever span was open
/// on the same thread when it started) and *explicit* across hops:
/// [`Tracer::span_with`] parents a span under a [`TraceContext`] carried
/// over from another thread or process, and spans opened implicitly
/// inside it inherit its trace id. Recording costs one `Instant::now()`,
/// one sharded mutex lock and a `VecDeque` push (traced spans pay one
/// more small lock for the per-trace index) — spans are for *operations*
/// (a drain, a job, a scenario), not per-request hot paths; those use
/// [`Histogram`]s.
///
/// ```
/// use std::sync::Arc;
/// use modis_core::telemetry::Tracer;
/// let tracer = Arc::new(Tracer::with_capacity(16));
/// let ctx = tracer.mint_context();
/// {
///     let outer = tracer.span_with("outer", ctx);
///     let _inner = tracer.span("inner"); // implicit child of outer
///     assert_eq!(outer.context().trace_id, ctx.trace_id);
/// } // guards drop here, inner first
/// let spans = tracer.trace_spans(ctx.trace_id);
/// assert_eq!(spans.len(), 2);
/// let inner = spans.iter().find(|s| s.name == "inner").unwrap();
/// let outer = spans.iter().find(|s| s.name == "outer").unwrap();
/// assert_eq!(inner.parent, outer.id);
/// assert_eq!(outer.parent, ctx.span_id);
/// assert_eq!(inner.trace, outer.trace);
/// ```
#[derive(Debug)]
pub struct Tracer {
    shards: [Mutex<VecDeque<SpanRecord>>; TRACER_SHARDS],
    per_shard_capacity: usize,
    epoch: Instant,
    /// Microseconds since the Unix epoch at construction: added to
    /// `start_us` offsets when timelines from several processes must
    /// sort against each other (`EXPLAIN` stitching).
    wall_anchor_us: u64,
    next_id: AtomicU64,
    next_trace: AtomicU64,
    /// Spans evicted from the retention rings (silent loss made visible).
    dropped: AtomicU64,
    traces: Mutex<TraceIndex>,
    slow: Mutex<Vec<SlowTrace>>,
}

/// The bounded trace-id → spans index behind [`Tracer::trace_spans`].
#[derive(Debug, Default)]
struct TraceIndex {
    spans: HashMap<u64, Vec<SpanRecord>>,
    order: VecDeque<u64>,
}

thread_local! {
    /// `(id, trace)` of the spans currently open on this thread,
    /// innermost last — implicit children inherit the trace id.
    static OPEN_SPANS: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A stable discriminator for the current thread.
fn thread_token() -> u64 {
    use std::hash::{Hash, Hasher};
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut hasher);
    hasher.finish()
}

impl Tracer {
    /// Creates a tracer retaining (about) the newest `capacity` completed
    /// spans across all threads. Span and trace ids are salted with the
    /// process id so ids minted by different processes of one cluster
    /// never collide in a stitched timeline.
    pub fn with_capacity(capacity: usize) -> Tracer {
        let salt = (std::process::id() as u64) << 40;
        Tracer {
            shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
            per_shard_capacity: capacity.div_ceil(TRACER_SHARDS).max(1),
            epoch: Instant::now(),
            wall_anchor_us: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
                .unwrap_or(0),
            next_id: AtomicU64::new(salt | 1),
            next_trace: AtomicU64::new(salt | 1),
            dropped: AtomicU64::new(0),
            traces: Mutex::new(TraceIndex::default()),
            slow: Mutex::new(Vec::new()),
        }
    }

    /// Opens a scoped span: the returned guard records a [`SpanRecord`]
    /// when dropped. Spans opened while this one is open (on the same
    /// thread) record it as their parent and inherit its trace id.
    pub fn span(self: &Arc<Self>, name: &'static str) -> Span {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (parent, trace) = OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (parent, trace) = stack.last().copied().unwrap_or((0, 0));
            stack.push((id, trace));
            (parent, trace)
        });
        Span {
            tracer: Arc::clone(self),
            name,
            id,
            parent,
            trace,
            start: Instant::now(),
        }
    }

    /// Opens a scoped span under an explicit [`TraceContext`] — the hop
    /// closer: the span parents under `ctx.span_id` regardless of what
    /// is open on the current thread, and implicit spans opened inside
    /// it inherit `ctx.trace_id`.
    pub fn span_with(self: &Arc<Self>, name: &'static str, ctx: TraceContext) -> Span {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        OPEN_SPANS.with(|stack| stack.borrow_mut().push((id, ctx.trace_id)));
        Span {
            tracer: Arc::clone(self),
            name,
            id,
            parent: ctx.span_id,
            trace: ctx.trace_id,
            start: Instant::now(),
        }
    }

    /// Mints a fresh root context: a new (process-salted) trace id and a
    /// new root span id with no parent. One per traced request.
    pub fn mint_context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.next_trace.fetch_add(1, Ordering::Relaxed),
            span_id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent_id: 0,
        }
    }

    /// Derives a child context of `ctx`: same trace, a fresh span id
    /// parented under `ctx.span_id`. The child names a span that has not
    /// been recorded yet — record it retroactively with
    /// [`Tracer::record_at`] (e.g. a forward round-trip timed at the
    /// call site), or hand it to a downstream hop whose spans should
    /// parent under it.
    pub fn child_context(&self, ctx: TraceContext) -> TraceContext {
        TraceContext {
            trace_id: ctx.trace_id,
            span_id: self.next_id.fetch_add(1, Ordering::Relaxed),
            parent_id: ctx.span_id,
        }
    }

    /// Records a span retroactively: `ctx.span_id` becomes the recorded
    /// span's own id, `ctx.parent_id` its parent. This is how spans whose
    /// extent is only known after the fact enter a timeline — a queue
    /// wait (`submitted_at` → execution start) or a forward round-trip
    /// (send → reply). A `start` before the tracer existed clamps to the
    /// tracer's epoch.
    pub fn record_at(&self, name: &'static str, ctx: TraceContext, start: Instant, dur: Duration) {
        let start_us = start
            .saturating_duration_since(self.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        self.record(SpanRecord {
            id: ctx.span_id,
            parent: ctx.parent_id,
            trace: ctx.trace_id,
            thread: thread_token(),
            name,
            start_us,
            dur_us: dur.as_micros().min(u64::MAX as u128) as u64,
        });
    }

    /// Records a completed span (called by the [`Span`] guard's drop).
    fn record(&self, record: SpanRecord) {
        let indexed = (record.trace != 0).then(|| record.clone());
        {
            let shard = (record.thread as usize) % TRACER_SHARDS;
            let mut ring = self.shards[shard]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if ring.len() >= self.per_shard_capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(record);
        }
        let Some(record) = indexed else { return };
        let mut index = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        if !index.spans.contains_key(&record.trace) {
            if index.order.len() >= TRACE_INDEX_TRACES {
                if let Some(evicted) = index.order.pop_front() {
                    index.spans.remove(&evicted);
                }
            }
            index.order.push_back(record.trace);
            index.spans.insert(record.trace, Vec::new());
        }
        let spans = index.spans.get_mut(&record.trace).expect("just inserted");
        if spans.len() < TRACE_INDEX_SPANS {
            spans.push(record);
        }
    }

    /// The newest `n` completed spans across all threads, oldest first
    /// (by span end time).
    pub fn recent(&self, n: usize) -> Vec<SpanRecord> {
        let mut all: Vec<SpanRecord> = Vec::new();
        for shard in &self.shards {
            all.extend(
                shard
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .iter()
                    .cloned(),
            );
        }
        all.sort_by_key(|s| s.start_us + s.dur_us);
        if all.len() > n {
            all.drain(..all.len() - n);
        }
        all
    }

    /// Spans evicted from the retention rings over the tracer's lifetime
    /// — the loss the `tracer_dropped_spans_total` counter exposes.
    pub fn dropped_spans(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Completed spans currently retained across the rings.
    pub fn retained_spans(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// Microseconds since the Unix epoch when this tracer was created.
    /// Adding it to a [`SpanRecord::start_us`] offset yields an absolute
    /// wall-clock microsecond — what lets timelines from several
    /// processes (router + shards) sort against each other.
    pub fn wall_anchor_us(&self) -> u64 {
        self.wall_anchor_us
    }

    /// Every indexed span of `trace`, sorted by start time (ties by id).
    /// Empty for an unknown (or evicted, or untraced) trace id.
    pub fn trace_spans(&self, trace: u64) -> Vec<SpanRecord> {
        let index = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
        let mut spans = index.spans.get(&trace).cloned().unwrap_or_default();
        spans.sort_by_key(|s| (s.start_us, s.id));
        spans
    }

    /// Notes a completed traced request for the slow-request log. The
    /// caller decides the threshold; the tracer keeps the 32 slowest
    /// distinct traces (a trace noted twice keeps its slower
    /// observation). Untraced requests are ignored.
    pub fn note_slow(&self, trace: u64, dur: Duration, label: &str) {
        if trace == 0 {
            return;
        }
        let dur_us = dur.as_micros().min(u64::MAX as u128) as u64;
        let spans = {
            let index = self.traces.lock().unwrap_or_else(PoisonError::into_inner);
            index.spans.get(&trace).map(Vec::len).unwrap_or(0)
        };
        let mut slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(entry) = slow.iter_mut().find(|e| e.trace == trace) {
            if dur_us > entry.dur_us {
                entry.dur_us = dur_us;
                entry.spans = spans;
                entry.label = label.to_string();
            }
        } else {
            slow.push(SlowTrace {
                trace,
                dur_us,
                spans,
                label: label.to_string(),
            });
        }
        slow.sort_by_key(|entry| std::cmp::Reverse(entry.dur_us));
        slow.truncate(SLOW_TRACES);
    }

    /// The `n` slowest noted traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<SlowTrace> {
        let slow = self.slow.lock().unwrap_or_else(PoisonError::into_inner);
        slow.iter().take(n).cloned().collect()
    }
}

/// A scoped span guard (see [`Tracer::span`]); records on drop.
#[derive(Debug)]
pub struct Span {
    tracer: Arc<Tracer>,
    name: &'static str,
    id: u64,
    parent: u64,
    trace: u64,
    start: Instant,
}

impl Span {
    /// This span's own context: handing it to a downstream layer parents
    /// that layer's spans under this span, in this span's trace.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace,
            span_id: self.id,
            parent_id: self.parent,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        OPEN_SPANS.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Scoped guards drop LIFO; tolerate out-of-order drops anyway.
            if let Some(pos) = stack.iter().rposition(|&(id, _)| id == self.id) {
                stack.remove(pos);
            }
        });
        let start_us = self
            .start
            .duration_since(self.tracer.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64;
        let dur_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.tracer.record(SpanRecord {
            id: self.id,
            parent: self.parent,
            trace: self.trace,
            thread: thread_token(),
            name: self.name,
            start_us,
            dur_us,
        });
    }
}

/// The ambient telemetry of a call tree: the registry and tracer the
/// innermost enclosing [`with_ambient`] installed on this thread.
#[derive(Debug, Clone)]
pub struct Telemetry {
    /// Metrics registry instruments should register into.
    pub metrics: Arc<MetricsRegistry>,
    /// Tracer spans should record into.
    pub tracer: Arc<Tracer>,
}

thread_local! {
    static AMBIENT: RefCell<Vec<Telemetry>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` with `telemetry` installed as this thread's ambient
/// telemetry (restoring the previous ambient afterwards, panics
/// included). Deep layers that cannot reach a registry by reference —
/// the wave expander inside a search — read it back with [`ambient`].
pub fn with_ambient<R>(telemetry: Telemetry, f: impl FnOnce() -> R) -> R {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT.with(|stack| {
                stack.borrow_mut().pop();
            });
        }
    }
    AMBIENT.with(|stack| stack.borrow_mut().push(telemetry));
    let _restore = Restore;
    f()
}

/// This thread's ambient telemetry, if a [`with_ambient`] scope is open.
pub fn ambient() -> Option<Telemetry> {
    AMBIENT.with(|stack| stack.borrow().last().cloned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_every_bit_width() {
        let h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(u64::MAX);
        assert_eq!(h.count(), 3);
        let snapshot = h.snapshot();
        assert_eq!(snapshot[0], 1);
        assert_eq!(snapshot[1], 1);
        assert_eq!(snapshot[64], 1);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn quantiles_bound_true_values_from_above_within_an_octave() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.p50();
        assert!((500..=1023).contains(&p50), "p50 estimate {p50}");
        let p99 = h.p99();
        assert!((990..=1023).contains(&p99), "p99 estimate {p99}");
    }

    #[test]
    fn merge_is_exactly_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in [3u64, 17, 900, 4] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 1 << 40, 55] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), all.snapshot());
        assert_eq!(a.value_sum(), all.value_sum());
    }

    #[test]
    fn registry_is_idempotent_and_kind_checked() {
        let registry = MetricsRegistry::new();
        let c1 = registry.counter("x_total", "X.");
        let c2 = registry.counter("x_total", "X.");
        c1.inc();
        assert_eq!(c2.get(), 1, "same handle behind both registrations");
        let l1 = registry.counter_with("y_total", "Y.", &[("verb", "ping")]);
        let l2 = registry.counter_with("y_total", "Y.", &[("verb", "quit")]);
        l1.add(2);
        assert_eq!(l2.get(), 0, "distinct label sets are distinct series");
    }

    #[test]
    #[should_panic(expected = "registered as both")]
    fn registry_rejects_kind_conflicts() {
        let registry = MetricsRegistry::new();
        registry.counter("z", "Z.");
        registry.gauge("z", "Z.");
    }

    #[test]
    fn exposition_renders_all_kinds() {
        let registry = MetricsRegistry::new();
        registry.counter("a_total", "A.").add(7);
        registry.gauge("b", "B.").set(-3);
        let h = registry.histogram_with("c_us", "C.", &[("verb", "ping")]);
        h.record(5);
        h.record(70);
        let text = registry.render().join("\n");
        assert!(text.contains("# TYPE a_total counter"), "{text}");
        assert!(text.contains("a_total 7"), "{text}");
        assert!(text.contains("b -3"), "{text}");
        assert!(text.contains("# TYPE c_us histogram"), "{text}");
        assert!(
            text.contains("c_us_bucket{verb=\"ping\",le=\"7\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("c_us_bucket{verb=\"ping\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("c_us_sum{verb=\"ping\"} 75"), "{text}");
        assert!(text.contains("c_us_count{verb=\"ping\"} 2"), "{text}");
    }

    #[test]
    fn tracer_rings_are_bounded_and_sorted() {
        let tracer = Arc::new(Tracer::with_capacity(64));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let tracer = Arc::clone(&tracer);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        let _span = tracer.span("op");
                    }
                })
            })
            .collect();
        for worker in workers {
            worker.join().expect("span worker");
        }
        let recent = tracer.recent(1000);
        assert!(
            !recent.is_empty() && recent.len() <= 64,
            "capacity bound: {}",
            recent.len()
        );
        for pair in recent.windows(2) {
            assert!(pair[0].start_us + pair[0].dur_us <= pair[1].start_us + pair[1].dur_us);
        }
        assert_eq!(tracer.recent(1).len(), 1);
    }

    #[test]
    fn trace_context_encodes_fixed_width_and_decodes_strictly() {
        let ctx = TraceContext {
            trace_id: u64::MAX,
            span_id: 1,
            parent_id: 0,
        };
        let hex = ctx.encode();
        assert_eq!(hex.len(), TraceContext::WIRE_LEN);
        assert_eq!(TraceContext::decode(&hex), Some(ctx));
        assert_eq!(TraceContext::decode(&hex.to_uppercase()), Some(ctx));
        assert_eq!(TraceContext::decode(&hex[1..]), None, "truncated");
        assert_eq!(TraceContext::decode(&format!("{hex}0")), None, "over-long");
        assert_eq!(
            TraceContext::decode(&hex.replace('f', "g")),
            None,
            "non-hex"
        );
        assert_eq!(TraceContext::decode(""), None);
        // 24 two-byte chars: 48 *bytes*, so the length check passes and
        // the hex check must reject without slicing mid-character.
        assert_eq!(TraceContext::decode(&"é".repeat(24)), None, "non-ascii");
        assert!(TraceContext::NONE.is_none());
        assert!(!ctx.is_none());
    }

    #[test]
    fn explicit_contexts_stitch_across_threads() {
        let tracer = Arc::new(Tracer::with_capacity(64));
        let ctx = tracer.mint_context();
        assert_ne!(ctx.trace_id, 0);
        assert_eq!(ctx.parent_id, 0);
        let child = tracer.child_context(ctx);
        assert_eq!(child.trace_id, ctx.trace_id);
        assert_eq!(child.parent_id, ctx.span_id);
        // The hop: open the span under the context on a *different*
        // thread — exactly what the executor does with a queued request.
        let worker = {
            let tracer = Arc::clone(&tracer);
            std::thread::spawn(move || {
                let job = tracer.span_with("job", child);
                let _inner = tracer.span("scenario");
                drop(_inner);
                job.context()
            })
        };
        let job_ctx = worker.join().expect("traced worker");
        let spans = tracer.trace_spans(ctx.trace_id);
        assert_eq!(spans.len(), 2);
        let job = spans.iter().find(|s| s.name == "job").unwrap();
        let scenario = spans.iter().find(|s| s.name == "scenario").unwrap();
        assert_eq!(job.parent, child.span_id);
        assert_eq!(job.trace, ctx.trace_id);
        assert_eq!(scenario.parent, job.id);
        assert_eq!(scenario.trace, ctx.trace_id, "implicit child inherits");
        assert_eq!(job_ctx.span_id, job.id);
        // Retroactive span: the queue wait recorded after the fact.
        let wait = tracer.child_context(ctx);
        tracer.record_at("queue_wait", wait, Instant::now(), Duration::from_micros(5));
        let spans = tracer.trace_spans(ctx.trace_id);
        let wait_span = spans.iter().find(|s| s.name == "queue_wait").unwrap();
        assert_eq!(wait_span.id, wait.span_id);
        assert_eq!(wait_span.parent, ctx.span_id);
        assert_eq!(wait_span.dur_us, 5);
    }

    #[test]
    fn ring_overflow_is_counted_and_retention_reported() {
        let tracer = Arc::new(Tracer::with_capacity(8));
        assert_eq!(tracer.dropped_spans(), 0);
        for _ in 0..100 {
            let _span = tracer.span("op");
        }
        // All spans complete on this thread → one ring of capacity 1.
        assert_eq!(tracer.retained_spans(), 1);
        assert_eq!(tracer.dropped_spans(), 99);
    }

    #[test]
    fn trace_index_is_bounded_and_time_sorted() {
        let tracer = Arc::new(Tracer::with_capacity(1 << 16));
        let first = tracer.mint_context();
        {
            let _span = tracer.span_with("keep", first);
        }
        // Evict `first` by flooding the index with fresh traces.
        for _ in 0..TRACE_INDEX_TRACES {
            let ctx = tracer.mint_context();
            let _span = tracer.span_with("flood", ctx);
        }
        assert!(
            tracer.trace_spans(first.trace_id).is_empty(),
            "oldest trace evicted"
        );
        // Per-trace span cap: later spans leave the timeline silently.
        let big = tracer.mint_context();
        for _ in 0..(TRACE_INDEX_SPANS + 10) {
            let _span = tracer.span_with("op", big);
        }
        let spans = tracer.trace_spans(big.trace_id);
        assert_eq!(spans.len(), TRACE_INDEX_SPANS);
        for pair in spans.windows(2) {
            assert!((pair[0].start_us, pair[0].id) <= (pair[1].start_us, pair[1].id));
        }
    }

    #[test]
    fn slow_log_keeps_the_slowest_distinct_traces() {
        let tracer = Arc::new(Tracer::with_capacity(64));
        for i in 1..=40u64 {
            tracer.note_slow(i, Duration::from_micros(i), "job");
        }
        tracer.note_slow(0, Duration::from_secs(99), "untraced-ignored");
        let slowest = tracer.slowest(100);
        assert_eq!(slowest.len(), SLOW_TRACES);
        assert_eq!(slowest[0].trace, 40, "slowest first");
        assert_eq!(slowest[0].dur_us, 40);
        for pair in slowest.windows(2) {
            assert!(pair[0].dur_us >= pair[1].dur_us);
        }
        // A repeat observation keeps the slower duration.
        tracer.note_slow(40, Duration::from_micros(7), "job");
        assert_eq!(tracer.slowest(1)[0].dur_us, 40);
        tracer.note_slow(40, Duration::from_micros(500), "job");
        assert_eq!(tracer.slowest(1)[0].dur_us, 500);
        assert_eq!(tracer.slowest(2).len(), 2);
    }

    #[test]
    fn ambient_telemetry_nests_and_restores() {
        assert!(ambient().is_none());
        let outer = Telemetry {
            metrics: Arc::new(MetricsRegistry::new()),
            tracer: Arc::new(Tracer::with_capacity(4)),
        };
        let inner = Telemetry {
            metrics: Arc::new(MetricsRegistry::new()),
            tracer: Arc::new(Tracer::with_capacity(4)),
        };
        with_ambient(outer.clone(), || {
            with_ambient(inner.clone(), || {
                let seen = ambient().expect("inner ambient");
                assert!(Arc::ptr_eq(&seen.metrics, &inner.metrics));
            });
            let seen = ambient().expect("outer ambient");
            assert!(Arc::ptr_eq(&seen.metrics, &outer.metrics));
        });
        assert!(ambient().is_none());
    }
}
