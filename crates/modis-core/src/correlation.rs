//! The measure correlation graph `G_C` and parameterised dominance bounds
//! used by BiMODis' correlation-based pruning (§5.3, Lemma 4).

use modis_data::stats::spearman;

/// Correlation graph over the measures `P`.
///
/// Nodes are measures; an edge `(p_i, p_j)` exists when `|ρ_S(p_i, p_j)| ≥ θ`
/// over the currently valuated tests `T`.
#[derive(Debug, Clone)]
pub struct CorrelationGraph {
    /// Spearman correlation matrix (symmetric, diagonal 1).
    pub matrix: Vec<Vec<f64>>,
    /// Threshold θ.
    pub theta: f64,
}

impl CorrelationGraph {
    /// Builds the graph from per-measure series of valuated performance
    /// values (one series per measure, aligned across tests).
    pub fn from_series(series: &[Vec<f64>], theta: f64) -> Self {
        let m = series.len();
        let mut matrix = vec![vec![0.0; m]; m];
        for i in 0..m {
            matrix[i][i] = 1.0;
            for j in (i + 1)..m {
                let rho = spearman(&series[i], &series[j]);
                matrix[i][j] = rho;
                matrix[j][i] = rho;
            }
        }
        CorrelationGraph { matrix, theta }
    }

    /// Number of measures.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the graph has no measures.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// Whether measures `i` and `j` are strongly correlated.
    pub fn strongly_correlated(&self, i: usize, j: usize) -> bool {
        i < self.len() && j < self.len() && self.matrix[i][j].abs() >= self.theta
    }

    /// Indices of measures strongly correlated with `i` (excluding `i`).
    pub fn neighbours(&self, i: usize) -> Vec<usize> {
        (0..self.len())
            .filter(|&j| j != i && self.strongly_correlated(i, j))
            .collect()
    }

    /// Number of strongly-correlated pairs (edges of `G_C`).
    pub fn num_edges(&self) -> usize {
        let m = self.len();
        (0..m)
            .flat_map(|i| ((i + 1)..m).map(move |j| (i, j)))
            .filter(|&(i, j)| self.strongly_correlated(i, j))
            .count()
    }
}

/// Parameterised performance bounds `[p̂_l, p̂_u]` of a not-yet-valuated
/// state, derived from the valuated performance of a neighbouring state and
/// globally observed per-transition deltas.
#[derive(Debug, Clone)]
pub struct PerfBounds {
    /// Per-measure lower bounds (optimistic estimate).
    pub lower: Vec<f64>,
    /// Per-measure upper bounds (pessimistic estimate).
    pub upper: Vec<f64>,
}

impl PerfBounds {
    /// Derives bounds for a child state of a valuated parent: each measure
    /// may move by at most the historically observed extreme per-transition
    /// delta; measures strongly correlated with another measure have their
    /// range tightened towards that measure's own range (the paper's
    /// correlation-assisted interval inference, Example 6).
    pub fn from_parent(
        parent_perf: &[f64],
        delta_min: &[f64],
        delta_max: &[f64],
        graph: &CorrelationGraph,
    ) -> PerfBounds {
        let m = parent_perf.len();
        let mut lower = vec![0.0; m];
        let mut upper = vec![0.0; m];
        for i in 0..m {
            let dmin = delta_min.get(i).copied().unwrap_or(-0.5);
            let dmax = delta_max.get(i).copied().unwrap_or(0.5);
            lower[i] = (parent_perf[i] + dmin).clamp(1e-6, 1.0);
            upper[i] = (parent_perf[i] + dmax).clamp(lower[i], 1.0);
        }
        // Correlation tightening: a measure strongly and positively
        // correlated with a narrow-ranged neighbour inherits a proportional
        // share of that neighbour's range around the parent value.
        for i in 0..m {
            for &j in &graph.neighbours(i) {
                if graph.matrix[i][j] > 0.0 {
                    let width_j = upper[j] - lower[j];
                    let width_i = upper[i] - lower[i];
                    if width_j < width_i {
                        let centre = parent_perf[i];
                        let half = width_j / 2.0;
                        lower[i] = lower[i].max((centre - half).clamp(1e-6, 1.0));
                        upper[i] = upper[i].min((centre + half).max(lower[i]));
                    }
                }
            }
        }
        PerfBounds { lower, upper }
    }

    /// Parameterised ε-dominance check (Lemma 4, Case 3a): an existing
    /// vector `other` ε-dominates every state within these bounds when
    /// `other.p ≤ (1+ε)·p̂_l` for all measures.
    pub fn epsilon_dominated_by(&self, other: &[f64], epsilon: f64) -> bool {
        if other.len() != self.lower.len() || other.is_empty() {
            return false;
        }
        other
            .iter()
            .zip(self.lower.iter())
            .all(|(o, l)| *o <= (1.0 + epsilon) * l + 1e-12)
    }
}

/// Running tracker of per-transition performance deltas (observed change of
/// each measure across one valuated parent → child transition).
#[derive(Debug, Clone)]
pub struct DeltaTracker {
    /// Minimum observed delta per measure.
    pub min: Vec<f64>,
    /// Maximum observed delta per measure.
    pub max: Vec<f64>,
    observations: usize,
}

impl DeltaTracker {
    /// Creates a tracker for `m` measures with conservative initial bounds.
    pub fn new(m: usize) -> Self {
        DeltaTracker {
            min: vec![-0.5; m],
            max: vec![0.5; m],
            observations: 0,
        }
    }

    /// Records one parent → child transition.
    pub fn observe(&mut self, parent: &[f64], child: &[f64]) {
        let m = self.min.len().min(parent.len()).min(child.len());
        for i in 0..m {
            let d = child[i] - parent[i];
            if self.observations == 0 {
                self.min[i] = d;
                self.max[i] = d;
            } else {
                self.min[i] = self.min[i].min(d);
                self.max[i] = self.max[i].max(d);
            }
        }
        self.observations += 1;
    }

    /// Number of observed transitions.
    pub fn observations(&self) -> usize {
        self.observations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correlation_graph_detects_strong_pairs() {
        let series = vec![
            vec![0.1, 0.2, 0.3, 0.4, 0.5],
            vec![0.2, 0.4, 0.6, 0.8, 1.0],
            vec![0.9, 0.1, 0.8, 0.2, 0.7],
        ];
        let g = CorrelationGraph::from_series(&series, 0.8);
        assert!(g.strongly_correlated(0, 1));
        assert!(!g.strongly_correlated(0, 2));
        assert_eq!(g.neighbours(0), vec![1]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn delta_tracker_records_extremes() {
        let mut t = DeltaTracker::new(2);
        assert_eq!(t.observations(), 0);
        t.observe(&[0.5, 0.5], &[0.4, 0.6]);
        t.observe(&[0.5, 0.5], &[0.55, 0.3]);
        assert!((t.min[0] + 0.1).abs() < 1e-12);
        assert!((t.max[0] - 0.05).abs() < 1e-12);
        assert!((t.min[1] + 0.2).abs() < 1e-12);
        assert_eq!(t.observations(), 2);
    }

    #[test]
    fn bounds_from_parent_and_pruning_decision() {
        let series = vec![vec![0.1, 0.2, 0.3], vec![0.1, 0.2, 0.3]];
        let g = CorrelationGraph::from_series(&series, 0.8);
        let bounds = PerfBounds::from_parent(&[0.5, 0.5], &[-0.05, -0.05], &[0.05, 0.05], &g);
        assert!(bounds.lower[0] >= 0.44 && bounds.lower[0] <= 0.46);
        assert!(bounds.upper[0] <= 0.56);
        // A very strong existing vector dominates anything in these bounds.
        assert!(bounds.epsilon_dominated_by(&[0.1, 0.1], 0.1));
        // A weak vector does not.
        assert!(!bounds.epsilon_dominated_by(&[0.9, 0.9], 0.1));
    }

    #[test]
    fn empty_bounds_are_never_dominated() {
        let b = PerfBounds {
            lower: vec![],
            upper: vec![],
        };
        assert!(!b.epsilon_dominated_by(&[], 0.1));
    }
}
