//! Tabular search space: the universal table, its reducible units and the
//! materialisation of states into datasets.
//!
//! Following §5.2 / §6, the universal table `D_U` is built by a multi-way
//! outer join of the source tables; each non-target attribute contributes
//! * one *attribute unit* (bit = attribute present in the state's schema),
//! * one *cluster unit* per active-domain cluster derived by k-means
//!   (bit = tuples whose value falls in that cluster are present).
//!
//! Clearing an attribute unit applies a masking reduct (`adom_s(A) = ∅`);
//! clearing a cluster unit applies `⊖_c` with the cluster's literal. The
//! backward start state of BiMODis keeps every tuple but masks all feature
//! attributes (a minimal dataset that still covers every target class, as
//! produced by `BackSt`).

use parking_lot::Mutex;
use std::collections::HashMap;

use modis_data::{
    derive_attribute_literals, mask_attribute, universal_table, ClusterConfig, Dataset, Literal,
    StateBitmap,
};

use crate::measure::MeasureSet;
use crate::substrate::Substrate;
use crate::task::{evaluate_dataset, TaskSpec};

/// One reducible unit of the tabular search space.
#[derive(Debug, Clone)]
pub enum TableUnit {
    /// Presence of an attribute in the state's schema.
    Attribute {
        /// Attribute name.
        name: String,
    },
    /// Presence of the tuples selected by a cluster literal.
    Cluster {
        /// Attribute the cluster belongs to.
        attribute: String,
        /// Literal selecting the cluster's tuples.
        literal: Literal,
    },
}

/// Configuration of the tabular search space construction.
#[derive(Debug, Clone)]
pub struct TableSpaceConfig {
    /// Join key shared by the source tables.
    pub join_key: String,
    /// Active-domain clustering configuration.
    pub cluster: ClusterConfig,
    /// Maximum number of cluster units per attribute actually exposed to the
    /// search (keeps `|adom_m|` bounded as discussed under Theorem 1).
    pub max_clusters_per_attr: usize,
    /// Whether to include per-attribute presence units (masking reducts).
    pub attribute_units: bool,
}

impl Default for TableSpaceConfig {
    fn default() -> Self {
        TableSpaceConfig {
            join_key: "id".into(),
            cluster: ClusterConfig {
                max_k: 4,
                iterations: 20,
            },
            max_clusters_per_attr: 3,
            attribute_units: true,
        }
    }
}

/// The tabular [`Substrate`]: universal table + units + downstream task.
pub struct TableSubstrate {
    universal: Dataset,
    units: Vec<TableUnit>,
    task: TaskSpec,
    cache: Mutex<HashMap<StateBitmap, Vec<f64>>>,
}

impl TableSubstrate {
    /// Builds the search space from a pool of source tables.
    pub fn from_pool(pool: &[Dataset], task: TaskSpec, config: &TableSpaceConfig) -> Self {
        let universal = universal_table(pool, &config.join_key).unwrap_or_else(|_| {
            // Fall back to the first table when no join key is shared.
            pool.first()
                .cloned()
                .unwrap_or_else(|| Dataset::new("D_U", Default::default()))
        });
        Self::from_universal(universal, task, config)
    }

    /// Builds the search space directly from an already-constructed
    /// universal table.
    pub fn from_universal(universal: Dataset, task: TaskSpec, config: &TableSpaceConfig) -> Self {
        let mut units = Vec::new();
        for attr in universal.schema().attributes() {
            let name = &attr.name;
            if name == &task.target
                || Some(name.as_str()) == task.key.as_deref()
                || name == &config.join_key
            {
                continue;
            }
            if config.attribute_units {
                units.push(TableUnit::Attribute { name: name.clone() });
            }
            let clusters = derive_attribute_literals(&universal, name, &config.cluster);
            for c in clusters.into_iter().take(config.max_clusters_per_attr) {
                units.push(TableUnit::Cluster {
                    attribute: name.clone(),
                    literal: c.literal,
                });
            }
        }
        TableSubstrate {
            universal,
            units,
            task,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// The universal table `D_U`.
    pub fn universal(&self) -> &Dataset {
        &self.universal
    }

    /// The downstream task.
    pub fn task(&self) -> &TaskSpec {
        &self.task
    }

    /// The reducible units.
    pub fn units(&self) -> &[TableUnit] {
        &self.units
    }

    /// Materialises the dataset denoted by a state bitmap.
    ///
    /// Attribute units with bit 0 mask the attribute; cluster units with bit
    /// 0 remove the tuples matching the cluster literal (only when the
    /// owning attribute is still present).
    pub fn materialize(&self, bitmap: &StateBitmap) -> Dataset {
        let mut masked: Vec<&str> = Vec::new();
        let mut removals: Vec<&Literal> = Vec::new();
        for (i, unit) in self.units.iter().enumerate() {
            if bitmap.get(i) {
                continue;
            }
            match unit {
                TableUnit::Attribute { name } => masked.push(name.as_str()),
                TableUnit::Cluster { attribute, literal } => {
                    if !masked.contains(&attribute.as_str()) {
                        removals.push(literal);
                    }
                }
            }
        }
        let mut data = self.universal.clone();
        for lit in removals {
            data.retain(|row| !lit.matches_row(&self.universal, row));
        }
        for name in masked {
            if let Ok(d) = mask_attribute(&data, name) {
                data = d;
            }
        }
        data.with_name(format!("{}@{}", self.universal.name, bitmap))
    }
}

impl Substrate for TableSubstrate {
    fn num_units(&self) -> usize {
        self.units.len()
    }

    fn unit_label(&self, unit: usize) -> String {
        match &self.units[unit] {
            TableUnit::Attribute { name } => format!("attr:{name}"),
            TableUnit::Cluster { literal, .. } => format!("cluster:{literal}"),
        }
    }

    fn backward_start(&self) -> StateBitmap {
        // BackSt: keep every tuple (cluster bits set) but start from a
        // minimal schema (feature attributes masked). The target attribute is
        // not a unit, so every class of the target remains covered.
        let mut b = StateBitmap::full(self.num_units());
        for (i, unit) in self.units.iter().enumerate() {
            if matches!(unit, TableUnit::Attribute { .. }) {
                b.set(i, false);
            }
        }
        b
    }

    fn measures(&self) -> &MeasureSet {
        &self.task.measures
    }

    fn evaluate_raw(&self, bitmap: &StateBitmap) -> Vec<f64> {
        if let Some(hit) = self.cache.lock().get(bitmap) {
            return hit.clone();
        }
        let data = self.materialize(bitmap);
        let eval = evaluate_dataset(&self.task, &data);
        self.cache.lock().insert(bitmap.clone(), eval.raw.clone());
        eval.raw
    }

    fn state_features(&self, bitmap: &StateBitmap) -> Vec<f64> {
        // Cheap artefact-level statistics: bitmap composition plus the size
        // of the materialised table (row/column counts and missing ratio).
        let data = self.materialize(bitmap);
        let (rows, cols) = data.reported_size();
        let mut feats = Vec::with_capacity(bitmap.len() + 4);
        feats.push(bitmap.count_ones() as f64);
        feats.push(rows as f64);
        feats.push(cols as f64);
        feats.push(data.missing_ratio());
        feats.extend(bitmap.bits().iter().map(|&b| if b { 1.0 } else { 0.0 }));
        feats
    }

    fn artifact_size(&self, bitmap: &StateBitmap) -> (usize, usize) {
        self.materialize(bitmap).reported_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{MeasureSet, MeasureSpec};
    use crate::task::{MetricKind, ModelKind};
    use modis_data::{Attribute, Schema, Value};

    fn pool() -> Vec<Dataset> {
        let base = Dataset::from_rows(
            "base",
            Schema::from_attributes(vec![
                Attribute::key("id"),
                Attribute::feature("x1"),
                Attribute::target("y"),
            ]),
            (0..60)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Float((i % 10) as f64),
                        Value::Float(2.0 * (i % 10) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let extra = Dataset::from_rows(
            "extra",
            Schema::from_attributes(vec![Attribute::key("id"), Attribute::feature("noise")]),
            (0..60)
                .map(|i| vec![Value::Int(i), Value::Float(((i * 7) % 5) as f64)])
                .collect(),
        )
        .unwrap();
        vec![base, extra]
    }

    fn task() -> TaskSpec {
        TaskSpec {
            name: "test".into(),
            model: ModelKind::LinearRegressor,
            target: "y".into(),
            key: Some("id".into()),
            measures: MeasureSet::new(vec![
                MeasureSpec::maximise("p_R2"),
                MeasureSpec::minimise("p_Train", 2.0),
            ]),
            metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
            train_ratio: 0.7,
            seed: 1,
        }
    }

    #[test]
    fn space_construction_builds_units() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        assert!(sub.num_units() > 2);
        assert!(sub.universal().schema().contains("noise"));
        // Target and key never become units.
        for i in 0..sub.num_units() {
            let label = sub.unit_label(i);
            assert!(!label.contains(":y"), "{label}");
            assert!(!label.contains(":id"), "{label}");
        }
    }

    #[test]
    fn materialize_full_bitmap_is_universal() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let full = sub.materialize(&sub.forward_start());
        assert_eq!(full.num_rows(), sub.universal().num_rows());
        assert_eq!(full.reported_size().1, sub.universal().reported_size().1);
    }

    #[test]
    fn clearing_attribute_unit_masks_column() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let idx = (0..sub.num_units())
            .find(|&i| sub.unit_label(i) == "attr:noise")
            .expect("noise attribute unit");
        let reduced = sub.materialize(&sub.forward_start().flipped(idx));
        let (_, cols) = reduced.reported_size();
        assert_eq!(cols, sub.universal().reported_size().1 - 1);
    }

    #[test]
    fn clearing_cluster_unit_removes_rows() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let idx = (0..sub.num_units())
            .find(|&i| sub.unit_label(i).starts_with("cluster:x1"))
            .expect("cluster unit for x1");
        let reduced = sub.materialize(&sub.forward_start().flipped(idx));
        assert!(reduced.num_rows() < sub.universal().num_rows());
    }

    #[test]
    fn backward_start_masks_features_keeps_rows() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let b = sub.backward_start();
        let data = sub.materialize(&b);
        assert_eq!(data.num_rows(), sub.universal().num_rows());
        // Only the key and target columns remain non-null.
        assert!(data.reported_size().1 <= 2);
    }

    #[test]
    fn evaluate_raw_is_cached_and_sane() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let raw1 = sub.evaluate_raw(&sub.forward_start());
        let raw2 = sub.evaluate_raw(&sub.forward_start());
        assert_eq!(raw1, raw2);
        assert!(
            raw1[0] > 0.9,
            "full data should give near-perfect R², got {}",
            raw1[0]
        );
    }

    #[test]
    fn state_features_include_bitmap() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let f = sub.state_features(&sub.forward_start());
        assert_eq!(f.len(), sub.num_units() + 4);
    }
}
