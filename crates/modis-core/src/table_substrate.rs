//! Tabular search space: the universal table, its reducible units and the
//! materialisation of states into datasets.
//!
//! Following §5.2 / §6, the universal table `D_U` is built by a multi-way
//! outer join of the source tables; each non-target attribute contributes
//! * one *attribute unit* (bit = attribute present in the state's schema),
//! * one *cluster unit* per active-domain cluster derived by k-means
//!   (bit = tuples whose value falls in that cluster are present).
//!
//! Clearing an attribute unit applies a masking reduct (`adom_s(A) = ∅`);
//! clearing a cluster unit applies `⊖_c` with the cluster's literal. The
//! backward start state of BiMODis keeps every tuple but masks all feature
//! attributes (a minimal dataset that still covers every target class, as
//! produced by `BackSt`).

use parking_lot::Mutex;

use modis_data::{
    derive_attribute_literals, universal_table, ClusterConfig, Dataset, DatasetView, Literal,
    RowMask, StateBitmap,
};

use crate::clock_cache::ClockCache;
use crate::measure::MeasureSet;
use crate::substrate::Substrate;
use crate::task::{evaluate_dataset_view, TaskSpec};

/// One reducible unit of the tabular search space.
#[derive(Debug, Clone)]
pub enum TableUnit {
    /// Presence of an attribute in the state's schema.
    Attribute {
        /// Attribute name.
        name: String,
    },
    /// Presence of the tuples selected by a cluster literal.
    Cluster {
        /// Attribute the cluster belongs to.
        attribute: String,
        /// Literal selecting the cluster's tuples.
        literal: Literal,
    },
}

/// Configuration of the tabular search space construction.
#[derive(Debug, Clone)]
pub struct TableSpaceConfig {
    /// Join key shared by the source tables.
    pub join_key: String,
    /// Active-domain clustering configuration.
    pub cluster: ClusterConfig,
    /// Maximum number of cluster units per attribute actually exposed to the
    /// search (keeps `|adom_m|` bounded as discussed under Theorem 1).
    pub max_clusters_per_attr: usize,
    /// Whether to include per-attribute presence units (masking reducts).
    pub attribute_units: bool,
    /// Capacity of the per-substrate raw-metrics memo (states; 0 =
    /// unbounded). Evicted entries are simply re-valuated on the next visit.
    ///
    /// Caveat for tasks whose measures include wall-clock training time
    /// (`MetricKind::TrainTime`): re-valuating an evicted state re-measures
    /// the clock, so byte-identical raw vectors *across runs sharing one
    /// substrate instance* are only guaranteed while the number of distinct
    /// states visited stays within capacity (within a single run the
    /// `ValuationContext` record store, which never evicts, preserves
    /// determinism regardless). Set 0 to restore the unbounded pre-eviction
    /// behaviour for such comparisons.
    pub eval_cache_capacity: usize,
}

impl Default for TableSpaceConfig {
    fn default() -> Self {
        TableSpaceConfig {
            join_key: "id".into(),
            cluster: ClusterConfig {
                max_k: 4,
                iterations: 20,
            },
            max_clusters_per_attr: 3,
            attribute_units: true,
            eval_cache_capacity: 16_384,
        }
    }
}

/// What the substrate remembers about an already-visited state: the oracle
/// raw metrics and/or the cheap structure features, both derived from one
/// materialised view of the state.
#[derive(Debug, Clone, Default)]
struct StateRecord {
    raw: Option<Vec<f64>>,
    features: Option<Vec<f64>>,
}

pub use crate::substrate::SubstrateCacheStats;

/// The tabular [`Substrate`]: universal table + units + downstream task.
///
/// Construction valuates every cluster literal against the universal table
/// exactly once, storing one packed [`RowMask`] per cluster unit;
/// [`TableSubstrate::materialize_view`] then reduces a state to a handful of
/// word-wise AND-NOTs plus an attribute mask — O(rows/64 × cleared units),
/// zero row clones.
pub struct TableSubstrate {
    universal: Dataset,
    units: Vec<TableUnit>,
    /// For cluster units: the rows of the universal table matching the
    /// literal. `None` for attribute units.
    unit_masks: Vec<Option<RowMask>>,
    /// For every unit: the universal-table column of the unit's attribute
    /// (`None` when the attribute is not in the schema).
    unit_cols: Vec<Option<usize>>,
    task: TaskSpec,
    cache: Mutex<ClockCache<StateBitmap, StateRecord>>,
    /// Lazily computed full-content fingerprint (the universal table is
    /// immutable after construction, so one digest serves every call).
    fingerprint_memo: std::sync::OnceLock<u64>,
}

impl TableSubstrate {
    /// Builds the search space from a pool of source tables.
    pub fn from_pool(pool: &[Dataset], task: TaskSpec, config: &TableSpaceConfig) -> Self {
        let universal = universal_table(pool, &config.join_key).unwrap_or_else(|_| {
            // Fall back to the first table when no join key is shared.
            pool.first()
                .cloned()
                .unwrap_or_else(|| Dataset::new("D_U", Default::default()))
        });
        Self::from_universal(universal, task, config)
    }

    /// Builds the search space directly from an already-constructed
    /// universal table.
    pub fn from_universal(universal: Dataset, task: TaskSpec, config: &TableSpaceConfig) -> Self {
        let mut units = Vec::new();
        for attr in universal.schema().attributes() {
            let name = &attr.name;
            if name == &task.target
                || Some(name.as_str()) == task.key.as_deref()
                || name == &config.join_key
            {
                continue;
            }
            if config.attribute_units {
                units.push(TableUnit::Attribute { name: name.clone() });
            }
            let clusters = derive_attribute_literals(&universal, name, &config.cluster);
            for c in clusters.into_iter().take(config.max_clusters_per_attr) {
                units.push(TableUnit::Cluster {
                    attribute: name.clone(),
                    literal: c.literal,
                });
            }
        }
        // Valuate each cluster literal against the universal table exactly
        // once; every later materialisation is a word-wise mask intersection.
        let nrows = universal.num_rows();
        let rows = universal.rows();
        let unit_masks: Vec<Option<RowMask>> = units
            .iter()
            .map(|u| match u {
                TableUnit::Attribute { .. } => None,
                TableUnit::Cluster { literal, .. } => Some(RowMask::from_pred(nrows, |r| {
                    literal.matches_row(&universal, &rows[r])
                })),
            })
            .collect();
        let unit_cols: Vec<Option<usize>> = units
            .iter()
            .map(|u| match u {
                TableUnit::Attribute { name } => universal.schema().position(name),
                TableUnit::Cluster { attribute, .. } => universal.schema().position(attribute),
            })
            .collect();
        TableSubstrate {
            universal,
            units,
            unit_masks,
            unit_cols,
            task,
            cache: Mutex::new(ClockCache::new(config.eval_cache_capacity)),
            fingerprint_memo: std::sync::OnceLock::new(),
        }
    }

    /// The universal table `D_U`.
    pub fn universal(&self) -> &Dataset {
        &self.universal
    }

    /// The downstream task.
    pub fn task(&self) -> &TaskSpec {
        &self.task
    }

    /// The reducible units.
    pub fn units(&self) -> &[TableUnit] {
        &self.units
    }

    /// Materialises the dataset denoted by a state bitmap as a zero-copy
    /// [`DatasetView`]: a word-wise intersection of the precomputed cluster
    /// masks of cleared units plus an attribute mask. Never copies a row.
    ///
    /// Attribute units with bit 0 mask the attribute; cluster units with bit
    /// 0 remove the tuples matching the cluster literal (only when the
    /// owning attribute is still present).
    pub fn materialize_view(&self, bitmap: &StateBitmap) -> DatasetView<'_> {
        let mut masked_cols = vec![false; self.universal.num_columns()];
        for (i, unit) in self.units.iter().enumerate() {
            if bitmap.get(i) {
                continue;
            }
            if matches!(unit, TableUnit::Attribute { .. }) {
                if let Some(c) = self.unit_cols[i] {
                    masked_cols[c] = true;
                }
            }
        }
        let mut mask = RowMask::all(self.universal.num_rows());
        for (i, unit) in self.units.iter().enumerate() {
            if bitmap.get(i) {
                continue;
            }
            if let (TableUnit::Cluster { .. }, Some(unit_mask)) = (unit, &self.unit_masks[i]) {
                // A cluster of a masked attribute no longer removes tuples
                // (its literal ranges over an empty active domain).
                let attr_masked = self.unit_cols[i].is_some_and(|c| masked_cols[c]);
                if !attr_masked {
                    mask.subtract(unit_mask);
                }
            }
        }
        DatasetView::new(&self.universal, mask, masked_cols)
    }

    /// Materialises the dataset denoted by a state bitmap as an owned copy —
    /// a thin [`DatasetView::to_dataset`] kept for consumers that need an
    /// owned table. Identical rows/schema to the pre-columnar
    /// clone-and-filter implementation (see [`Self::materialize_baseline`]).
    pub fn materialize(&self, bitmap: &StateBitmap) -> Dataset {
        self.materialize_view(bitmap)
            .to_dataset()
            .with_name(format!("{}@{}", self.universal.name, bitmap))
    }

    /// The pre-columnar reference materialisation: deep-clones the universal
    /// table, re-filters it row by row per cleared cluster unit and nulls
    /// masked attributes cell by cell.
    ///
    /// Kept (not wired into any hot path) as the ground truth for the
    /// equivalence property tests and the speedup baseline recorded in
    /// `BENCH_materialize.json`.
    pub fn materialize_baseline(&self, bitmap: &StateBitmap) -> Dataset {
        let mut masked: Vec<&str> = Vec::new();
        let mut removals: Vec<&Literal> = Vec::new();
        for (i, unit) in self.units.iter().enumerate() {
            if bitmap.get(i) {
                continue;
            }
            match unit {
                TableUnit::Attribute { name } => masked.push(name.as_str()),
                TableUnit::Cluster { attribute, literal } => {
                    if !masked.contains(&attribute.as_str()) {
                        removals.push(literal);
                    }
                }
            }
        }
        let mut data = self.universal.clone();
        for lit in removals {
            data.retain(|row| !lit.matches_row(&self.universal, row));
        }
        for name in masked {
            if let Ok(d) = modis_data::mask_attribute(&data, name) {
                data = d;
            }
        }
        data.with_name(format!("{}@{}", self.universal.name, bitmap))
    }

    /// Counters of the bounded raw-metrics memo.
    pub fn cache_stats(&self) -> SubstrateCacheStats {
        let cache = self.cache.lock();
        SubstrateCacheStats {
            entries: cache.len(),
            evictions: cache.evictions(),
        }
    }

    /// Applies `update` to the state's memo record, creating it if absent
    /// (the single insert-or-merge path shared by `evaluate_raw` and
    /// `state_features`).
    fn update_record(&self, bitmap: &StateBitmap, update: impl FnOnce(&mut StateRecord)) {
        let mut cache = self.cache.lock();
        match cache.get_mut(bitmap) {
            Some(rec) => update(rec),
            None => {
                let mut rec = StateRecord::default();
                update(&mut rec);
                cache.insert(bitmap.clone(), rec);
            }
        }
    }

    /// Structure features of a state derived from an already-materialised
    /// view: bitmap composition plus the reported size and missing ratio of
    /// the selection.
    fn features_from_view(&self, bitmap: &StateBitmap, view: &DatasetView<'_>) -> Vec<f64> {
        let (rows, cols) = view.reported_size();
        let mut feats = Vec::with_capacity(bitmap.len() + 4);
        feats.push(bitmap.count_ones() as f64);
        feats.push(rows as f64);
        feats.push(cols as f64);
        feats.push(view.missing_ratio());
        feats.extend(bitmap.iter().map(|b| if b { 1.0 } else { 0.0 }));
        feats
    }
}

impl Substrate for TableSubstrate {
    fn num_units(&self) -> usize {
        self.units.len()
    }

    fn unit_label(&self, unit: usize) -> String {
        match &self.units[unit] {
            TableUnit::Attribute { name } => format!("attr:{name}"),
            TableUnit::Cluster { literal, .. } => format!("cluster:{literal}"),
        }
    }

    fn backward_start(&self) -> StateBitmap {
        // BackSt: keep every tuple (cluster bits set) but start from a
        // minimal schema (feature attributes masked). The target attribute is
        // not a unit, so every class of the target remains covered.
        let mut b = StateBitmap::full(self.num_units());
        for (i, unit) in self.units.iter().enumerate() {
            if matches!(unit, TableUnit::Attribute { .. }) {
                b.set(i, false);
            }
        }
        b
    }

    fn measures(&self) -> &MeasureSet {
        &self.task.measures
    }

    fn evaluate_raw(&self, bitmap: &StateBitmap) -> Vec<f64> {
        if let Some(raw) = self
            .cache
            .lock()
            .get(bitmap)
            .and_then(|rec| rec.raw.clone())
        {
            return raw;
        }
        // One view serves both the oracle metrics and the structure
        // features: the state is materialised exactly once (previously
        // `evaluate_raw` and `state_features` each deep-cloned the table).
        let view = self.materialize_view(bitmap);
        let eval = evaluate_dataset_view(&self.task, &view);
        let features = self.features_from_view(bitmap, &view);
        self.update_record(bitmap, |rec| {
            rec.raw = Some(eval.raw.clone());
            rec.features = Some(features);
        });
        eval.raw
    }

    fn state_features(&self, bitmap: &StateBitmap) -> Vec<f64> {
        // Cheap artefact-level statistics: bitmap composition plus the size
        // of the materialised selection (row/column counts and missing
        // ratio) — no model training, shared with `evaluate_raw`'s view.
        if let Some(feats) = self
            .cache
            .lock()
            .get(bitmap)
            .and_then(|rec| rec.features.clone())
        {
            return feats;
        }
        let view = self.materialize_view(bitmap);
        let features = self.features_from_view(bitmap, &view);
        self.update_record(bitmap, |rec| rec.features = Some(features.clone()));
        features
    }

    fn artifact_size(&self, bitmap: &StateBitmap) -> (usize, usize) {
        self.materialize_view(bitmap).reported_size()
    }

    fn fingerprint(&self) -> u64 {
        // The structural default does not see the downstream task or the
        // data: the same units and measure names over a different model, a
        // different split/seed, or a *refreshed table* (same schema and row
        // count, new cell values) valuate the same bitmap differently. Fold
        // the full task spec and a digest of EVERY cell of the universal
        // table in — a sampled digest would wave refreshed data past the
        // namespace guard whenever the change lands between sample points.
        // The table is immutable after construction, so the digest is
        // computed once and memoised; fingerprints persist in snapshots, so
        // everything hashes through the stable FNV hasher.
        use crate::codec::StableHasher;
        use std::hash::{Hash, Hasher};
        *self.fingerprint_memo.get_or_init(|| {
            let mut h = StableHasher::new();
            crate::substrate::structural_fingerprint(self).hash(&mut h);
            self.task.name.hash(&mut h);
            format!("{:?}", self.task.model).hash(&mut h);
            self.task.target.hash(&mut h);
            self.task.key.hash(&mut h);
            format!("{:?}", self.task.metric_kinds).hash(&mut h);
            self.task.train_ratio.to_bits().hash(&mut h);
            self.task.seed.hash(&mut h);
            let rows = self.universal.rows();
            rows.len().hash(&mut h);
            for row in rows {
                row.hash(&mut h);
            }
            h.finish()
        })
    }

    fn memo_stats(&self) -> SubstrateCacheStats {
        self.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::{MeasureSet, MeasureSpec};
    use crate::task::{MetricKind, ModelKind};
    use modis_data::{Attribute, Schema, Value};

    fn pool() -> Vec<Dataset> {
        let base = Dataset::from_rows(
            "base",
            Schema::from_attributes(vec![
                Attribute::key("id"),
                Attribute::feature("x1"),
                Attribute::target("y"),
            ]),
            (0..60)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Float((i % 10) as f64),
                        Value::Float(2.0 * (i % 10) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        let extra = Dataset::from_rows(
            "extra",
            Schema::from_attributes(vec![Attribute::key("id"), Attribute::feature("noise")]),
            (0..60)
                .map(|i| vec![Value::Int(i), Value::Float(((i * 7) % 5) as f64)])
                .collect(),
        )
        .unwrap();
        vec![base, extra]
    }

    fn task() -> TaskSpec {
        TaskSpec {
            name: "test".into(),
            model: ModelKind::LinearRegressor,
            target: "y".into(),
            key: Some("id".into()),
            measures: MeasureSet::new(vec![
                MeasureSpec::maximise("p_R2"),
                MeasureSpec::minimise("p_Train", 2.0),
            ]),
            metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
            train_ratio: 0.7,
            seed: 1,
        }
    }

    #[test]
    fn fingerprint_sees_data_content_not_just_schema() {
        // No cluster units, so the unit universe is value-independent and
        // only the content digest can tell the datasets apart.
        let config = TableSpaceConfig {
            max_clusters_per_attr: 0,
            ..TableSpaceConfig::default()
        };
        let a = TableSubstrate::from_pool(&pool(), task(), &config);
        let b = TableSubstrate::from_pool(&pool(), task(), &config);
        assert_eq!(a.fingerprint(), b.fingerprint(), "same data, same print");

        // Same schema, same row count, one changed cell value.
        let mut altered = pool();
        let refreshed = Dataset::from_rows(
            "base",
            altered[0].schema().clone(),
            (0..60)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Float((i % 10) as f64 + if i == 17 { 0.5 } else { 0.0 }),
                        Value::Float(2.0 * (i % 10) as f64),
                    ]
                })
                .collect(),
        )
        .unwrap();
        altered[0] = refreshed;
        let c = TableSubstrate::from_pool(&altered, task(), &config);
        assert_ne!(
            a.fingerprint(),
            c.fingerprint(),
            "refreshed cell values must change the fingerprint"
        );
    }

    #[test]
    fn space_construction_builds_units() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        assert!(sub.num_units() > 2);
        assert!(sub.universal().schema().contains("noise"));
        // Target and key never become units.
        for i in 0..sub.num_units() {
            let label = sub.unit_label(i);
            assert!(!label.contains(":y"), "{label}");
            assert!(!label.contains(":id"), "{label}");
        }
    }

    #[test]
    fn materialize_full_bitmap_is_universal() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let full = sub.materialize(&sub.forward_start());
        assert_eq!(full.num_rows(), sub.universal().num_rows());
        assert_eq!(full.reported_size().1, sub.universal().reported_size().1);
    }

    #[test]
    fn clearing_attribute_unit_masks_column() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let idx = (0..sub.num_units())
            .find(|&i| sub.unit_label(i) == "attr:noise")
            .expect("noise attribute unit");
        let reduced = sub.materialize(&sub.forward_start().flipped(idx));
        let (_, cols) = reduced.reported_size();
        assert_eq!(cols, sub.universal().reported_size().1 - 1);
    }

    #[test]
    fn clearing_cluster_unit_removes_rows() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let idx = (0..sub.num_units())
            .find(|&i| sub.unit_label(i).starts_with("cluster:x1"))
            .expect("cluster unit for x1");
        let reduced = sub.materialize(&sub.forward_start().flipped(idx));
        assert!(reduced.num_rows() < sub.universal().num_rows());
    }

    #[test]
    fn backward_start_masks_features_keeps_rows() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let b = sub.backward_start();
        let data = sub.materialize(&b);
        assert_eq!(data.num_rows(), sub.universal().num_rows());
        // Only the key and target columns remain non-null.
        assert!(data.reported_size().1 <= 2);
    }

    #[test]
    fn evaluate_raw_is_cached_and_sane() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let raw1 = sub.evaluate_raw(&sub.forward_start());
        let raw2 = sub.evaluate_raw(&sub.forward_start());
        assert_eq!(raw1, raw2);
        assert!(
            raw1[0] > 0.9,
            "full data should give near-perfect R², got {}",
            raw1[0]
        );
    }

    #[test]
    fn state_features_include_bitmap() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let f = sub.state_features(&sub.forward_start());
        assert_eq!(f.len(), sub.num_units() + 4);
    }

    #[test]
    fn view_materialisation_matches_clone_and_filter_baseline() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let mut states = vec![sub.forward_start(), sub.backward_start()];
        for i in 0..sub.num_units() {
            states.push(sub.forward_start().flipped(i));
        }
        // A few multi-flip states, including attribute+cluster interactions.
        let mut b = sub.forward_start();
        for i in (0..sub.num_units()).step_by(2) {
            b = b.flipped(i);
            states.push(b.clone());
        }
        for s in &states {
            let via_view = sub.materialize(s);
            let baseline = sub.materialize_baseline(s);
            assert_eq!(via_view.schema(), baseline.schema(), "{s}");
            assert_eq!(via_view.rows(), baseline.rows(), "{s}");
            assert_eq!(via_view.name, baseline.name, "{s}");
            let view = sub.materialize_view(s);
            assert_eq!(view.reported_size(), baseline.reported_size(), "{s}");
            assert!((view.missing_ratio() - baseline.missing_ratio()).abs() < 1e-12);
        }
    }

    #[test]
    fn eval_cache_is_bounded_and_counts_evictions() {
        let config = TableSpaceConfig {
            eval_cache_capacity: 2,
            ..TableSpaceConfig::default()
        };
        let sub = TableSubstrate::from_pool(&pool(), task(), &config);
        for i in 0..4 {
            let _ = sub.evaluate_raw(&sub.forward_start().flipped(i));
        }
        let stats = sub.cache_stats();
        assert!(stats.entries <= 2, "entries = {}", stats.entries);
        assert!(stats.evictions >= 2, "evictions = {}", stats.evictions);
        // Evicted states are simply re-valuated, same values.
        let a = sub.evaluate_raw(&sub.forward_start().flipped(0));
        let b = sub.evaluate_raw(&sub.forward_start().flipped(0));
        assert_eq!(a, b);
    }

    #[test]
    fn state_features_and_evaluate_share_one_record() {
        let sub = TableSubstrate::from_pool(&pool(), task(), &TableSpaceConfig::default());
        let s = sub.forward_start().flipped(1);
        let f1 = sub.state_features(&s);
        let _ = sub.evaluate_raw(&s);
        let f2 = sub.state_features(&s);
        assert_eq!(f1, f2);
        assert_eq!(sub.cache_stats().entries, 1);
    }
}
