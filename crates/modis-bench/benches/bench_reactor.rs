//! Front-end benchmarks: the seed's thread-per-connection daemon vs. the
//! non-blocking reactor, under sequential and pipelined clients.
//!
//! The committed `BENCH_reactor.json` baseline is written by the
//! `bench_reactor_baseline` binary from the same workload
//! (`modis_bench::reactor_workload`) — throughput medians via the
//! clock-free `drive_clients`, plus p50/p99 per-request latency columns
//! from a separate `drive_clients_timed` pass. The telemetry overhead
//! gate (`bench_telemetry_baseline` → `BENCH_telemetry.json`) reuses the
//! same drivers.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_bench::{drive_clients, BlockingDaemon, ClientMode};
use modis_service::{Daemon, Service, ServiceConfig};

const CLIENTS: usize = 4;
const REQUESTS: usize = 200;
const WINDOW: usize = 64;

fn bench_front_ends(c: &mut Criterion) {
    let mut group = c.benchmark_group("reactor_frontend");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("thread_per_connection_sequential", CLIENTS),
        &CLIENTS,
        |b, _| {
            b.iter(|| {
                let service = Arc::new(Service::new(ServiceConfig::default()));
                let daemon =
                    BlockingDaemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
                let elapsed =
                    drive_clients(daemon.addr(), CLIENTS, REQUESTS, ClientMode::Sequential);
                daemon.stop();
                elapsed
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("reactor_pipelined", CLIENTS),
        &CLIENTS,
        |b, _| {
            b.iter(|| {
                let service = Arc::new(Service::new(ServiceConfig::default()));
                let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
                let elapsed = drive_clients(
                    daemon.addr(),
                    CLIENTS,
                    REQUESTS,
                    ClientMode::Pipelined { window: WINDOW },
                );
                daemon.stop();
                elapsed
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_front_ends);
criterion_main!(benches);
