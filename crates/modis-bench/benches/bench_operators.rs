//! Micro-benchmarks of the primitive data operators: Augment, Reduct,
//! hash/outer joins and universal-table construction (§3, §5.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_data::{augment, hash_join, reduct, universal_table, JoinKind, Literal};
use modis_datagen::tables::{generate_table_pool, TablePoolConfig};

fn pool_of(rows: usize) -> Vec<modis_data::Dataset> {
    generate_table_pool(&TablePoolConfig {
        n_rows: rows,
        seed: 1,
        ..Default::default()
    })
    .tables
}

fn bench_operators(c: &mut Criterion) {
    let mut group = c.benchmark_group("operators");
    group.sample_size(20);

    for &rows in &[200usize, 800] {
        let tables = pool_of(rows);
        let base = &tables[0];
        let other = &tables[1];
        let attr = other
            .schema()
            .names()
            .iter()
            .find(|n| **n != "id")
            .unwrap()
            .to_string();

        group.bench_with_input(BenchmarkId::new("augment", rows), &rows, |b, _| {
            let lit = Literal::not_null(&attr);
            b.iter(|| augment(base, other, &attr, &lit).unwrap());
        });

        group.bench_with_input(BenchmarkId::new("reduct", rows), &rows, |b, _| {
            let lit = Literal::range("weak_signal", -10.0, 0.0);
            b.iter(|| reduct(base, &lit));
        });

        group.bench_with_input(BenchmarkId::new("full_outer_join", rows), &rows, |b, _| {
            b.iter(|| hash_join(base, other, "id", JoinKind::FullOuter).unwrap());
        });

        group.bench_with_input(BenchmarkId::new("universal_table", rows), &rows, |b, _| {
            b.iter(|| universal_table(&tables, "id").unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_operators);
criterion_main!(benches);
