//! Service-layer benchmarks: suite throughput on a cold cache vs. a
//! snapshot warm start, and batched valuation (one thread-pool pass) vs.
//! the cold per-state loop.
//!
//! The committed `BENCH_service.json` baseline is written by the
//! `bench_service_baseline` binary from the same workload
//! (`modis_bench::service_workload`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_bench::{
    register_service_suite, service_substrate, service_valuation_requests, SERVICE_SCENARIO_NAMES,
};
use modis_service::{Service, ServiceConfig, ValuationRequest};

const ROWS: usize = 1_000;
const MAX_STATES: usize = 12;
const REQUESTS: usize = 3;
const STATES_PER_REQUEST: usize = 6;
const STRIDE: usize = 2;
const SEED: u64 = 7;

fn snapshot_path() -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "modis_bench_service_crit_{}.snap",
        std::process::id()
    ))
}

fn bench_suite_throughput(c: &mut Criterion) {
    // Produce the snapshot the warm runs restore from.
    let path = snapshot_path();
    {
        let service = Service::new(ServiceConfig::default());
        register_service_suite(&service, ROWS, SEED, MAX_STATES);
        service.submit_many(SERVICE_SCENARIO_NAMES).unwrap();
        service.run_pending();
        service.snapshot_to(&path).unwrap();
    }

    let mut group = c.benchmark_group("service_suite");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("cold_cache", ROWS), &ROWS, |b, _| {
        b.iter(|| {
            let service = Service::new(ServiceConfig::default());
            register_service_suite(&service, ROWS, SEED, MAX_STATES);
            service.submit_many(SERVICE_SCENARIO_NAMES).unwrap();
            service.run_pending()
        })
    });
    group.bench_with_input(BenchmarkId::new("warm_snapshot", ROWS), &ROWS, |b, _| {
        b.iter(|| {
            let service = Service::from_snapshot(ServiceConfig::default(), &path).unwrap();
            register_service_suite(&service, ROWS, SEED, MAX_STATES);
            service.submit_many(SERVICE_SCENARIO_NAMES).unwrap();
            service.run_pending()
        })
    });
    group.finish();
    let _ = std::fs::remove_file(&path);
}

fn bench_batched_valuation(c: &mut Criterion) {
    // Simulated concurrent clients with overlapping state lists. The
    // per-state path models independent cold workers (fresh substrate per
    // request, one training per state, duplicates included); the batched
    // path groups every request into one engine pass. Each iteration
    // rebuilds its substrates — a cold path must not reuse memoised raw
    // metrics.
    let mut group = c.benchmark_group("service_valuation");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("per_state_loop", REQUESTS),
        &REQUESTS,
        |b, _| {
            b.iter(|| {
                let workers: Vec<_> = (0..REQUESTS)
                    .map(|_| service_substrate(ROWS, SEED))
                    .collect();
                let request_states = service_valuation_requests(
                    workers[0].as_ref(),
                    REQUESTS,
                    STATES_PER_REQUEST,
                    STRIDE,
                );
                workers
                    .iter()
                    .zip(&request_states)
                    .map(|(worker, states)| {
                        states
                            .iter()
                            .map(|s| worker.evaluate_raw(s).len())
                            .sum::<usize>()
                    })
                    .sum::<usize>()
            })
        },
    );
    group.bench_with_input(
        BenchmarkId::new("batched_pass", REQUESTS),
        &REQUESTS,
        |b, _| {
            b.iter(|| {
                let service = Service::new(ServiceConfig::default());
                register_service_suite(&service, ROWS, SEED, MAX_STATES);
                let probe = service_substrate(ROWS, SEED);
                let requests: Vec<ValuationRequest> = service_valuation_requests(
                    probe.as_ref(),
                    REQUESTS,
                    STATES_PER_REQUEST,
                    STRIDE,
                )
                .into_iter()
                .map(|states| ValuationRequest {
                    scenario: "svc/apx".into(),
                    states,
                })
                .collect();
                service.valuate_many(&requests).unwrap().len()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_suite_throughput, bench_batched_valuation);
criterion_main!(benches);
