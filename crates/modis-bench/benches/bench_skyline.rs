//! Micro-benchmarks of the skyline machinery: dominance checks, exact
//! skyline (Kung's algorithm), ε-skyline maintenance (UPareto) and the
//! diversification score (Eq. 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_core::config::SkylineEntry;
use modis_core::divmodis::diversification_score;
use modis_core::dominance::skyline;
use modis_core::measure::{MeasureSet, MeasureSpec};
use modis_core::pareto::EpsilonSkyline;
use modis_data::StateBitmap;

fn random_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut state = seed;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(0.01, 1.0)
    };
    (0..n).map(|_| (0..d).map(|_| next()).collect()).collect()
}

fn bench_skyline(c: &mut Criterion) {
    let mut group = c.benchmark_group("skyline");
    group.sample_size(30);

    for &n in &[100usize, 500] {
        for &d in &[2usize, 4] {
            let pts = random_points(n, d, 7);
            group.bench_with_input(
                BenchmarkId::new(format!("exact_skyline_d{d}"), n),
                &n,
                |b, _| {
                    b.iter(|| skyline(&pts));
                },
            );
        }
    }

    // UPareto ε-skyline maintenance over a stream of offers.
    let measures = MeasureSet::new(vec![
        MeasureSpec::maximise("a"),
        MeasureSpec::maximise("b"),
        MeasureSpec::minimise("c", 1.0),
    ]);
    for &n in &[200usize, 1000] {
        let pts = random_points(n, 3, 11);
        group.bench_with_input(BenchmarkId::new("upareto_offer", n), &n, |b, _| {
            b.iter(|| {
                let mut sky = EpsilonSkyline::new(measures.clone(), 0.1, None);
                for (i, p) in pts.iter().enumerate() {
                    sky.offer(&StateBitmap::full(8).flipped(i % 8), p, i);
                }
                sky.len()
            });
        });
    }

    // Diversification score over a candidate skyline set.
    let entries: Vec<SkylineEntry> = random_points(30, 3, 13)
        .into_iter()
        .enumerate()
        .map(|(i, p)| SkylineEntry {
            bitmap: StateBitmap::full(16).flipped(i % 16).flipped((i * 3) % 16),
            perf: p,
            raw: Vec::new(),
            size: (0, 0),
            level: 0,
        })
        .collect();
    group.bench_function("diversification_score_30", |b| {
        b.iter(|| diversification_score(&entries, 0.5, 1.0));
    });

    group.finish();
}

criterion_group!(benches, bench_skyline);
criterion_main!(benches);
