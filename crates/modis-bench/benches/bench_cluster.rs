//! Cluster-layer benchmarks: steady-state suite throughput of a sharded
//! cluster vs. a single shard under a fixed **per-process** resource
//! budget.
//!
//! Each shard's engine cache holds roughly one namespace's working set.
//! A single shard serving every namespace therefore thrashes between
//! waves (each namespace's refill evicts the others'), while each shard
//! of a 2-shard cluster keeps its namespaces resident — the partitioned-
//! processing payoff that motivates sharding skyline serving.
//!
//! The committed `BENCH_cluster.json` baseline is written by the
//! `bench_cluster_baseline` binary from the same workload
//! (`modis_bench::cluster_workload`) — suite throughput via the
//! clock-free `drive_suite`, plus p50/p99 per-response latency columns
//! from `drive_suite_timed`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_bench::{drive_suite, ClusterWorkload};

const ROWS: usize = 400;
const MAX_STATES: usize = 10;
const WAVES: usize = 3;

fn bench_cluster_suite(c: &mut Criterion) {
    let workload = ClusterWorkload::bench(ROWS, MAX_STATES);
    let names = workload.scenario_names();
    let mut group = c.benchmark_group("cluster_suite");
    group.sample_size(10);
    for shards in [1usize, 2] {
        let cluster = workload.build_cluster(shards);
        let addr = cluster.router.addr();
        group.bench_with_input(BenchmarkId::new("suite_waves", shards), &shards, |b, _| {
            b.iter(|| {
                let mut total = 0;
                for _ in 0..WAVES {
                    total += drive_suite(addr, &names).len();
                }
                total
            })
        });
        cluster.stop();
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_suite);
criterion_main!(benches);
