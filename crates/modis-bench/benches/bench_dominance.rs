//! Micro-benchmarks of the dominance kernels: pairwise baseline vs the
//! sorted, indexed (u64 level-mask), block and wave-parallel skylines over
//! the standard frontier families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_bench::dominance_workload::{frontier_points, Frontier};
use modis_core::dominance::skyline_pairwise_baseline;
use modis_core::dominance_index::{skyline_blocks, skyline_indexed, skyline_sorted};
use modis_engine::parallel_skyline;

fn bench_dominance(c: &mut Criterion) {
    let mut group = c.benchmark_group("dominance");
    group.sample_size(20);

    for frontier in [Frontier::Uniform, Frontier::AntiCorrelated] {
        for &n in &[500usize, 2000] {
            let pts = frontier_points(n, 4, frontier, 0xD0B1);
            let tag = format!("{}_d4", frontier.name());
            group.bench_with_input(
                BenchmarkId::new(format!("pairwise_{tag}"), n),
                &n,
                |b, _| {
                    b.iter(|| skyline_pairwise_baseline(&pts));
                },
            );
            group.bench_with_input(BenchmarkId::new(format!("sorted_{tag}"), n), &n, |b, _| {
                b.iter(|| skyline_sorted(&pts));
            });
            group.bench_with_input(BenchmarkId::new(format!("indexed_{tag}"), n), &n, |b, _| {
                b.iter(|| skyline_indexed(&pts));
            });
            group.bench_with_input(BenchmarkId::new(format!("blocks8_{tag}"), n), &n, |b, _| {
                b.iter(|| skyline_blocks(&pts, 8));
            });
            group.bench_with_input(
                BenchmarkId::new(format!("parallel4_{tag}"), n),
                &n,
                |b, _| {
                    b.iter(|| parallel_skyline(&pts, 4));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_dominance);
criterion_main!(benches);
