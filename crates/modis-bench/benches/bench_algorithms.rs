//! End-to-end benchmarks of the MODis algorithms on a small tabular
//! workload — the Criterion counterpart of the efficiency experiments
//! (Fig. 10 / Fig. 13).

use criterion::{criterion_group, criterion_main, Criterion};

use modis_bench::{task_t3, ModisVariant};
use modis_core::prelude::*;

fn bench_algorithms(c: &mut Criterion) {
    let workload = task_t3(5);
    let substrate = workload.substrate();
    let config = ModisConfig::default()
        .with_epsilon(0.2)
        .with_max_states(15)
        .with_max_level(2)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 6,
            refresh: 10,
        });

    let mut group = c.benchmark_group("algorithms");
    group.sample_size(10);
    for variant in ModisVariant::all() {
        group.bench_function(variant.name(), |b| {
            b.iter(|| modis_bench::run_variant(variant, &substrate, &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
