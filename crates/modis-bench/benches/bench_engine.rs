//! Engine benchmarks: sequential vs. wave-parallel frontier expansion, and
//! cold vs. warm shared-cache suites — the engine counterpart of the
//! efficiency experiments.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_bench::task_t3;
use modis_core::prelude::*;
use modis_core::substrate::Substrate;
use modis_engine::{parallel_apx_modis, Algorithm, Engine, EngineConfig, Scenario};

fn bench_parallel_expansion(c: &mut Criterion) {
    let substrate = task_t3(5).substrate();
    let config = ModisConfig::default()
        .with_epsilon(0.2)
        .with_max_states(20)
        .with_max_level(2)
        .with_estimator(EstimatorMode::Oracle);
    // Warm the substrate's memo once so every variant measures scheduling
    // overhead against identical evaluation costs.
    let _ = apx_modis(&substrate, &config);

    let mut group = c.benchmark_group("engine_expansion");
    group.sample_size(10);
    group.bench_function("apx_sequential", |b| {
        b.iter(|| apx_modis(&substrate, &config))
    });
    for threads in [2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("apx_parallel", threads),
            &threads,
            |b, &threads| b.iter(|| parallel_apx_modis(&substrate, &config, threads)),
        );
    }
    group.finish();
}

fn bench_suite_cache(c: &mut Criterion) {
    let substrate: Arc<dyn Substrate> = Arc::new(task_t3(5).substrate());
    let config = ModisConfig::default()
        .with_epsilon(0.2)
        .with_max_states(20)
        .with_max_level(2)
        .with_estimator(EstimatorMode::Oracle);
    let scenarios: Vec<Scenario> = [Algorithm::Apx, Algorithm::NoBi, Algorithm::Bi]
        .into_iter()
        .map(|alg| {
            Scenario::new(
                format!("t3-{}", alg.name()),
                substrate.clone(),
                alg,
                config.clone(),
            )
            .with_cache_namespace("t3-pool")
        })
        .collect();

    let mut group = c.benchmark_group("engine_suite");
    group.sample_size(10);
    group.bench_function("suite_cold_cache", |b| {
        b.iter(|| {
            // A fresh engine per iteration: every scenario starts cold.
            Engine::new(EngineConfig::default().with_scenario_parallelism(1)).run_suite(&scenarios)
        })
    });
    let warm = Engine::new(EngineConfig::default().with_scenario_parallelism(1));
    let _ = warm.run_suite(&scenarios);
    group.bench_function("suite_warm_cache", |b| {
        b.iter(|| warm.run_suite(&scenarios))
    });
    group.finish();

    let stats = warm.cache_stats();
    println!(
        "warm cache after benches: {} entries, {} hits, {} misses",
        stats.entries, stats.hits, stats.misses
    );
}

criterion_group!(benches, bench_parallel_expansion, bench_suite_cache);
criterion_main!(benches);
