//! Materialisation-pipeline benchmarks: the seed's clone-and-filter
//! materialisation vs. the columnar mask-intersection path, materialise-only
//! and materialise + oracle-evaluate, at several pool sizes.
//!
//! The committed `BENCH_materialize.json` baseline is written by the
//! `bench_materialize_baseline` binary from the same workload
//! (`modis_bench::materialize_substrate`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_bench::{materialize_state, materialize_substrate};
use modis_core::prelude::*;

const POOL_SIZES: [usize; 3] = [1_000, 5_000, 20_000];

fn bench_materialize_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialize");
    group.sample_size(20);
    for rows in POOL_SIZES {
        let substrate = materialize_substrate(rows, 7);
        let state = materialize_state(&substrate);
        group.bench_with_input(BenchmarkId::new("clone_and_filter", rows), &rows, |b, _| {
            b.iter(|| substrate.materialize_baseline(&state))
        });
        group.bench_with_input(BenchmarkId::new("columnar_view", rows), &rows, |b, _| {
            b.iter(|| substrate.materialize_view(&state))
        });
        group.bench_with_input(
            BenchmarkId::new("columnar_to_dataset", rows),
            &rows,
            |b, _| b.iter(|| substrate.materialize(&state)),
        );
    }
    group.finish();
}

fn bench_materialize_and_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("materialize_evaluate");
    group.sample_size(10);
    for rows in POOL_SIZES {
        let substrate = materialize_substrate(rows, 7);
        let state = materialize_state(&substrate);
        let task = substrate.task().clone();
        group.bench_with_input(
            BenchmarkId::new("clone_filter_oracle", rows),
            &rows,
            |b, _| b.iter(|| evaluate_dataset(&task, &substrate.materialize_baseline(&state))),
        );
        group.bench_with_input(
            BenchmarkId::new("columnar_view_oracle", rows),
            &rows,
            |b, _| b.iter(|| evaluate_dataset_view(&task, &substrate.materialize_view(&state))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_materialize_only,
    bench_materialize_and_evaluate
);
criterion_main!(benches);
