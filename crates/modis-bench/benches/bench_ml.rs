//! Micro-benchmarks of the ML substrate: model training (the unit valuation
//! cost `I` of Theorem 1) and the MO-GBM estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use modis_ml::forest::{ForestParams, RandomForest};
use modis_ml::gbm::{GbmParams, GradientBoostingRegressor, MultiOutputGbm};
use modis_ml::linear::RidgeRegression;

fn make_regression(n: usize, d: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let x: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..d).map(|j| ((i * (j + 3)) % 17) as f64 / 17.0).collect())
        .collect();
    let y: Vec<f64> = x.iter().map(|r| r.iter().sum::<f64>()).collect();
    (x, y)
}

fn bench_ml(c: &mut Criterion) {
    let mut group = c.benchmark_group("ml_substrate");
    group.sample_size(10);

    for &n in &[200usize, 600] {
        let (x, y) = make_regression(n, 8);
        group.bench_with_input(BenchmarkId::new("gbm_regressor_fit", n), &n, |b, _| {
            b.iter(|| {
                GradientBoostingRegressor::fit(
                    &x,
                    &y,
                    GbmParams {
                        n_estimators: 20,
                        ..GbmParams::default()
                    },
                )
            });
        });
        group.bench_with_input(BenchmarkId::new("random_forest_fit", n), &n, |b, _| {
            b.iter(|| RandomForest::fit(&x, &y, 0, ForestParams::regression(10)));
        });
        group.bench_with_input(BenchmarkId::new("ridge_fit", n), &n, |b, _| {
            b.iter(|| RidgeRegression::fit(&x, &y, 1.0));
        });
    }

    // MO-GBM estimator: fit + single-call multi-output prediction.
    let (x, _) = make_regression(60, 12);
    let y_multi: Vec<Vec<f64>> = x
        .iter()
        .map(|r| vec![r.iter().sum::<f64>() / 12.0, 1.0 - r[0], r[1] * 0.5])
        .collect();
    group.bench_function("mo_gbm_estimator_fit", |b| {
        b.iter(|| {
            MultiOutputGbm::fit(
                &x,
                &y_multi,
                GbmParams {
                    n_estimators: 15,
                    ..GbmParams::default()
                },
            )
        });
    });
    let fitted = MultiOutputGbm::fit(
        &x,
        &y_multi,
        GbmParams {
            n_estimators: 15,
            ..GbmParams::default()
        },
    );
    group.bench_function("mo_gbm_estimator_predict", |b| {
        b.iter(|| fitted.predict_one(&x[0]));
    });

    group.finish();
}

criterion_group!(benches, bench_ml);
criterion_main!(benches);
