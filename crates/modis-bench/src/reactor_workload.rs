//! Shared workload for the reactor front-end benchmarks: the Criterion
//! bench (`benches/bench_reactor.rs`) and the committed-baseline binary
//! (`bench_reactor_baseline`) must measure the same thing, so the
//! baseline server and the client drivers live here.
//!
//! The baseline is the **seed's thread-per-connection daemon**, preserved
//! here verbatim-in-spirit after `modis-service` replaced it with the
//! non-blocking reactor: one blocking accept loop, one handler thread per
//! client, one `BufReader` line loop per handler. Both servers speak the
//! same protocol through [`modis_service::handle_command`], so any
//! throughput difference is the front-end architecture, not the command
//! implementations.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Barrier, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use modis_core::telemetry::Histogram;
use modis_service::{handle_command, Reply, Service};

/// The seed's thread-per-connection TCP front-end, kept as the benchmark
/// baseline for the reactor.
pub struct BlockingDaemon {
    service: Arc<Service>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl BlockingDaemon {
    /// Binds `addr` and starts accepting, one handler thread per client —
    /// the exact architecture `modis-service`'s daemon had before the
    /// reactor.
    pub fn bind(service: Arc<Service>, addr: &str) -> std::io::Result<BlockingDaemon> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let accept_service = Arc::clone(&service);
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_service.is_stopped() {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let conn_service = Arc::clone(&accept_service);
                std::thread::spawn(move || {
                    let _ = handle_blocking_connection(&conn_service, stream);
                });
            }
        });
        Ok(BlockingDaemon {
            service,
            addr: local,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop the way the seed did: shut the service down,
    /// then unblock `accept(2)` with a throwaway connection.
    pub fn stop(mut self) {
        self.service.shutdown();
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

fn handle_blocking_connection(service: &Service, stream: TcpStream) -> std::io::Result<()> {
    let _ = stream.set_nodelay(true);
    let mut writer = stream.try_clone()?;
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let line = line?;
        if service.is_stopped() {
            writeln!(writer, "ERR service is shut down")?;
            break;
        }
        match handle_command(service, &line) {
            Reply::Line(text) => writeln!(writer, "{text}")?,
            Reply::Close(text) => {
                writeln!(writer, "{text}")?;
                break;
            }
        }
    }
    Ok(())
}

/// How the bench clients converse with a front-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMode {
    /// One request on the wire at a time: write a line, block for its
    /// response — the seed's usage model (every seed test, example and
    /// script drove the daemon this way).
    Sequential,
    /// `window` requests written back-to-back before the first response is
    /// read, then all `window` responses drained; repeated until done.
    /// Requires a front-end with ordered pipelined responses.
    Pipelined {
        /// In-flight requests per batch.
        window: usize,
    },
}

/// Drives `clients` concurrent connections of `requests` `PING`s each
/// against `addr` and returns the wall-clock of the whole conversation
/// (connections set up first, clock started behind a barrier). Panics on
/// any protocol deviation, so a throughput number can never come from
/// dropped or misordered responses.
pub fn drive_clients(
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    mode: ClientMode,
) -> Duration {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let threads: Vec<JoinHandle<()>> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect bench client");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("read timeout");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let mut reply = String::new();
                let mut expect_pong = |reader: &mut BufReader<TcpStream>| {
                    reply.clear();
                    reader.read_line(&mut reply).expect("read reply");
                    assert_eq!(reply, "PONG\n", "bench protocol deviation");
                };
                barrier.wait();
                match mode {
                    ClientMode::Sequential => {
                        for _ in 0..requests {
                            writer.write_all(b"PING\n").expect("write request");
                            expect_pong(&mut reader);
                        }
                    }
                    ClientMode::Pipelined { window } => {
                        let window = window.max(1);
                        let mut sent = 0;
                        while sent < requests {
                            let batch = window.min(requests - sent);
                            let burst = "PING\n".repeat(batch);
                            writer.write_all(burst.as_bytes()).expect("write burst");
                            for _ in 0..batch {
                                expect_pong(&mut reader);
                            }
                            sent += batch;
                        }
                    }
                }
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for thread in threads {
        thread.join().expect("bench client");
    }
    started.elapsed()
}

/// Requests per second for a measured conversation.
pub fn requests_per_sec(clients: usize, requests: usize, elapsed: Duration) -> f64 {
    (clients * requests) as f64 / elapsed.as_secs_f64().max(1e-9)
}

/// Soft `RLIMIT_NOFILE` for this process, from `/proc/self/limits`
/// (1,024 when the file is unreadable — the conservative kernel default).
pub fn max_open_files() -> usize {
    std::fs::read_to_string("/proc/self/limits")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|line| line.starts_with("Max open files"))
                .and_then(|line| line.split_whitespace().nth(3))
                .and_then(|soft| soft.parse().ok())
        })
        .unwrap_or(1024)
}

/// Opens `count` connections to `addr` and leaves them idle (connected,
/// no request in flight). Connects in batches with one `PING` round-trip
/// per batch so the listener's accept queue is drained as fast as it is
/// filled — 10,000 raw `connect(2)`s against a 128-entry backlog would
/// otherwise shed SYNs.
pub fn open_idle_connections(addr: SocketAddr, count: usize) -> std::io::Result<Vec<TcpStream>> {
    const BATCH: usize = 128;
    let mut conns = Vec::with_capacity(count);
    while conns.len() < count {
        let batch = BATCH.min(count - conns.len());
        for _ in 0..batch {
            conns.push(TcpStream::connect(addr)?);
        }
        let probe = conns.last().expect("batch is non-empty");
        let mut writer = probe.try_clone()?;
        writer.write_all(b"PING\n")?;
        let mut reader = BufReader::new(probe.try_clone()?);
        let mut reply = String::new();
        reader.read_line(&mut reply)?;
        assert_eq!(reply, "PONG\n", "idle-holder probe deviation");
    }
    Ok(conns)
}

/// One `METRICS` scrape of the daemon at `addr`, reduced to the reactor
/// sweep totals: `(sum of reactor_sweep_us_sum, sum of
/// reactor_sweep_us_count)` across every `reactor="<n>"` series. Two
/// scrapes bracketing a drive give the mean per-sweep cost of the window
/// as `Δsum / Δcount`.
pub fn scrape_sweep_totals(addr: SocketAddr) -> std::io::Result<(u64, u64)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let mut writer = stream.try_clone()?;
    writer.write_all(b"METRICS\n")?;
    let mut reader = BufReader::new(stream);
    let mut header = String::new();
    reader.read_line(&mut header)?;
    let n: usize = header
        .trim_end()
        .strip_prefix("METRICS ")
        .and_then(|n| n.parse().ok())
        .unwrap_or_else(|| panic!("malformed METRICS header {header:?}"));
    let (mut sum_us, mut count) = (0u64, 0u64);
    let mut line = String::new();
    for _ in 0..n {
        line.clear();
        reader.read_line(&mut line)?;
        let trimmed = line.trim_end();
        let value = || -> u64 {
            trimmed
                .rsplit(' ')
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("malformed exposition line {trimmed:?}"))
        };
        if trimmed.starts_with("reactor_sweep_us_sum") {
            sum_us += value();
        } else if trimmed.starts_with("reactor_sweep_us_count") {
            count += value();
        }
    }
    Ok((sum_us, count))
}

/// A timed conversation: wall-clock plus the merged per-request latency
/// distribution across every client.
pub struct DriveReport {
    /// Wall-clock of the whole conversation (barrier → last client done).
    pub elapsed: Duration,
    /// Per-request latency in microseconds, merged across clients. For
    /// sequential clients this is the round-trip of each request; for
    /// pipelined clients it is response arrival measured from its burst's
    /// write start (the latency a batching caller actually observes —
    /// later responses of a burst wait behind earlier ones by design).
    pub latency: Histogram,
}

/// [`drive_clients`] with per-request latency sampling. A separate entry
/// point on purpose: the clock reads live on the client threads, so the
/// plain throughput driver stays byte-identical to the one the committed
/// baselines were measured with.
pub fn drive_clients_timed(
    addr: SocketAddr,
    clients: usize,
    requests: usize,
    mode: ClientMode,
) -> DriveReport {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let latency = Arc::new(Mutex::new(Histogram::new()));
    let threads: Vec<JoinHandle<()>> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let latency = Arc::clone(&latency);
            std::thread::spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect bench client");
                stream.set_nodelay(true).expect("nodelay");
                stream
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("read timeout");
                let mut writer = stream.try_clone().expect("clone stream");
                let mut reader = BufReader::new(stream);
                let local = Histogram::new();
                let mut reply = String::new();
                let mut expect_pong = |reader: &mut BufReader<TcpStream>| {
                    reply.clear();
                    reader.read_line(&mut reply).expect("read reply");
                    assert_eq!(reply, "PONG\n", "bench protocol deviation");
                };
                barrier.wait();
                match mode {
                    ClientMode::Sequential => {
                        for _ in 0..requests {
                            let sent = Instant::now();
                            writer.write_all(b"PING\n").expect("write request");
                            expect_pong(&mut reader);
                            local.record_duration(sent.elapsed());
                        }
                    }
                    ClientMode::Pipelined { window } => {
                        let window = window.max(1);
                        let mut sent = 0;
                        while sent < requests {
                            let batch = window.min(requests - sent);
                            let burst = "PING\n".repeat(batch);
                            let burst_start = Instant::now();
                            writer.write_all(burst.as_bytes()).expect("write burst");
                            for _ in 0..batch {
                                expect_pong(&mut reader);
                                local.record_duration(burst_start.elapsed());
                            }
                            sent += batch;
                        }
                    }
                }
                latency.lock().expect("latency lock").merge(&local);
            })
        })
        .collect();
    barrier.wait();
    let started = Instant::now();
    for thread in threads {
        thread.join().expect("bench client");
    }
    let elapsed = started.elapsed();
    let latency = Arc::try_unwrap(latency)
        .unwrap_or_else(|_| panic!("all clients joined"))
        .into_inner()
        .expect("latency lock");
    DriveReport { elapsed, latency }
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_service::{Daemon, ServiceConfig};

    #[test]
    fn both_front_ends_serve_both_client_modes() {
        // Blocking baseline, sequential clients (its native mode).
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = BlockingDaemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let elapsed = drive_clients(daemon.addr(), 2, 5, ClientMode::Sequential);
        assert!(requests_per_sec(2, 5, elapsed) > 0.0);
        daemon.stop();

        // Reactor, pipelined clients.
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").unwrap();
        let elapsed = drive_clients(daemon.addr(), 2, 9, ClientMode::Pipelined { window: 4 });
        assert!(requests_per_sec(2, 9, elapsed) > 0.0);
        daemon.stop();
    }
}
