//! Task definitions and method runners for the paper's experiments.
//!
//! Each task Tᵢ pairs a generated workload (from `modis-datagen`) with the
//! measure set of Table 3 and the model of §6. `run_table_methods` produces
//! one [`MethodRow`] per method — Original, METAM, METAM-MO, Starmie, SkSFM,
//! H2O, ApxMODis, NOBiMODis, BiMODis, DivMODis — exactly the columns of
//! Tables 4 and 6; `run_graph_methods` produces the MODis-only rows of
//! Table 5.

use modis_core::prelude::*;
use modis_data::{Attribute, Dataset, Schema, StateBitmap, Value};
use modis_datagen::tables::TablePool;
use modis_ml::graph::BipartiteGraph;

/// One row of a method-comparison table: the raw metric values (aligned with
/// the task's measures) and the output size.
#[derive(Debug, Clone)]
pub struct MethodRow {
    /// Method name.
    pub method: String,
    /// Raw metric values (same order as the task's measures).
    pub raw: Vec<f64>,
    /// Output size `(rows, columns)` / `(edges, feature dims)`.
    pub size: (usize, usize),
    /// Wall-clock discovery time in seconds (0 for baselines evaluated once).
    pub discovery_seconds: f64,
}

/// A tabular workload: the generated pool plus its task specification.
pub struct Workload {
    /// The generated table pool.
    pub pool: TablePool,
    /// The downstream task.
    pub task: TaskSpec,
    /// Search-space construction parameters.
    pub space: TableSpaceConfig,
}

impl Workload {
    /// Builds the tabular substrate (universal table + units) for MODis runs.
    pub fn substrate(&self) -> TableSubstrate {
        TableSubstrate::from_pool(&self.pool.tables, self.task.clone(), &self.space)
    }
}

fn default_space(join_key: &str) -> TableSpaceConfig {
    TableSpaceConfig {
        join_key: join_key.to_string(),
        max_clusters_per_attr: 2,
        ..TableSpaceConfig::default()
    }
}

/// T1 (GBmovie): gradient-boosting regression with measures
/// `{p_Acc (R²), p_Train, p_Fsc, p_MI}`.
pub fn task_t1(seed: u64) -> Workload {
    let pool = modis_datagen::t1_movie(seed);
    let task = TaskSpec {
        name: "T1-movie".into(),
        model: ModelKind::GradientBoostingRegressor,
        target: pool.target.clone(),
        key: Some(pool.join_key.clone()),
        measures: MeasureSet::new(vec![
            MeasureSpec::maximise("p_Acc"),
            MeasureSpec::minimise("p_Train", 5.0),
            MeasureSpec::maximise("p_Fsc"),
            MeasureSpec::maximise("p_MI"),
        ]),
        metric_kinds: vec![
            MetricKind::R2,
            MetricKind::TrainTime,
            MetricKind::FisherScore,
            MetricKind::MutualInfo,
        ],
        train_ratio: 0.7,
        seed,
    };
    let space = default_space(&pool.join_key);
    Workload { pool, task, space }
}

/// T2 (RFhouse): random-forest classification with measures
/// `{p_F1, p_Acc, p_Train, p_Fsc, p_MI}`.
pub fn task_t2(seed: u64) -> Workload {
    let pool = modis_datagen::t2_house(seed);
    let task = TaskSpec {
        name: "T2-house".into(),
        model: ModelKind::RandomForestClassifier,
        target: pool.target.clone(),
        key: Some(pool.join_key.clone()),
        measures: MeasureSet::new(vec![
            MeasureSpec::maximise("p_F1"),
            MeasureSpec::maximise("p_Acc"),
            MeasureSpec::minimise("p_Train", 5.0),
            MeasureSpec::maximise("p_Fsc"),
            MeasureSpec::maximise("p_MI"),
        ]),
        metric_kinds: vec![
            MetricKind::F1,
            MetricKind::Accuracy,
            MetricKind::TrainTime,
            MetricKind::FisherScore,
            MetricKind::MutualInfo,
        ],
        train_ratio: 0.7,
        seed,
    };
    let space = default_space(&pool.join_key);
    Workload { pool, task, space }
}

/// T3 (LRavocado): linear regression with measures `{MSE, MAE, Train}`.
pub fn task_t3(seed: u64) -> Workload {
    let pool = modis_datagen::t3_avocado(seed);
    let task = TaskSpec {
        name: "T3-avocado".into(),
        model: ModelKind::LinearRegressor,
        target: pool.target.clone(),
        key: Some(pool.join_key.clone()),
        measures: MeasureSet::new(vec![
            MeasureSpec::minimise("p_MSE", 4.0),
            MeasureSpec::minimise("p_MAE", 2.0),
            MeasureSpec::minimise("p_Train", 5.0),
        ]),
        metric_kinds: vec![MetricKind::Mse, MetricKind::Mae, MetricKind::TrainTime],
        train_ratio: 0.7,
        seed,
    };
    let space = default_space(&pool.join_key);
    Workload { pool, task, space }
}

/// T4 (LGCmental): gradient-boosting classification with measures
/// `{p_Acc, p_Pc, p_Rc, p_F1, p_AUC, p_Train}`.
pub fn task_t4(seed: u64) -> Workload {
    let pool = modis_datagen::t4_mental(seed);
    let task = TaskSpec {
        name: "T4-mental".into(),
        model: ModelKind::GradientBoostingClassifier,
        target: pool.target.clone(),
        key: Some(pool.join_key.clone()),
        measures: MeasureSet::new(vec![
            MeasureSpec::maximise("p_Acc"),
            MeasureSpec::maximise("p_Pc"),
            MeasureSpec::maximise("p_Rc"),
            MeasureSpec::maximise("p_F1"),
            MeasureSpec::maximise("p_AUC"),
            MeasureSpec::minimise("p_Train", 5.0),
        ]),
        metric_kinds: vec![
            MetricKind::Accuracy,
            MetricKind::Precision,
            MetricKind::Recall,
            MetricKind::F1,
            MetricKind::Auc,
            MetricKind::TrainTime,
        ],
        train_ratio: 0.7,
        seed,
    };
    let space = default_space(&pool.join_key);
    Workload { pool, task, space }
}

/// Measure set of task T5 (Table 5): P@5/10, R@5/10, NDCG@5/10, training time.
pub fn t5_measures() -> MeasureSet {
    MeasureSet::new(vec![
        MeasureSpec::maximise("p_Pc5"),
        MeasureSpec::maximise("p_Pc10"),
        MeasureSpec::maximise("p_Rc5"),
        MeasureSpec::maximise("p_Rc10"),
        MeasureSpec::maximise("p_Nc5"),
        MeasureSpec::maximise("p_Nc10"),
        MeasureSpec::minimise("p_Train", 10.0),
    ])
}

/// The four MODis variants compared throughout the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModisVariant {
    /// ApxMODis (reduce from universal).
    Apx,
    /// NOBiMODis (bi-directional, no pruning).
    NoBi,
    /// BiMODis (bi-directional with pruning).
    Bi,
    /// DivMODis (diversified).
    Div,
}

impl ModisVariant {
    /// All variants in the order the paper's tables use.
    pub fn all() -> [ModisVariant; 4] {
        [
            ModisVariant::Apx,
            ModisVariant::NoBi,
            ModisVariant::Bi,
            ModisVariant::Div,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ModisVariant::Apx => "ApxMODis",
            ModisVariant::NoBi => "NOBiMODis",
            ModisVariant::Bi => "BiMODis",
            ModisVariant::Div => "DivMODis",
        }
    }
}

/// Runs one MODis variant over a substrate.
pub fn run_variant<S: Substrate + ?Sized>(
    variant: ModisVariant,
    substrate: &S,
    config: &ModisConfig,
) -> SkylineResult {
    match variant {
        ModisVariant::Apx => apx_modis(substrate, config),
        ModisVariant::NoBi => nobi_modis(substrate, config),
        ModisVariant::Bi => bi_modis(substrate, config),
        ModisVariant::Div => div_modis(substrate, config),
    }
}

/// Converts a skyline result into a comparison row by picking the member with
/// the best *primary* measure (index 0), as the paper does when comparing
/// against single-output baselines.
pub fn skyline_to_row(
    name: &str,
    result: &SkylineResult,
    primary_higher_is_better: bool,
) -> MethodRow {
    let best = result
        .best_by_raw(0, primary_higher_is_better)
        .cloned()
        .unwrap_or_else(|| SkylineEntry {
            bitmap: modis_data::StateBitmap::empty(0),
            perf: Vec::new(),
            raw: Vec::new(),
            size: (0, 0),
            level: 0,
        });
    MethodRow {
        method: name.to_string(),
        raw: best.raw,
        size: best.size,
        discovery_seconds: result.elapsed_seconds,
    }
}

/// Runs every baseline and every MODis variant on a tabular workload,
/// producing the rows of Tables 4 / 6.
pub fn run_table_methods(workload: &Workload, config: &ModisConfig) -> Vec<MethodRow> {
    let pool = &workload.pool;
    let task = &workload.task;
    let base = pool.base();
    let primary_hib = task.metric_kinds[0].higher_is_better();

    let mut rows = Vec::new();
    let baseline_row = |out: BaselineOutput| MethodRow {
        method: out.method.clone(),
        raw: out.evaluation.raw.clone(),
        size: out.evaluation.size,
        discovery_seconds: 0.0,
    };

    rows.push(baseline_row(original(base, task)));
    rows.push(baseline_row(metam(
        base,
        &pool.tables,
        task,
        &pool.join_key,
        0,
    )));
    rows.push(baseline_row(metam_mo(
        base,
        &pool.tables,
        task,
        &pool.join_key,
    )));
    rows.push(baseline_row(starmie(
        base,
        &pool.tables,
        task,
        &pool.join_key,
        3,
    )));

    // Feature-selection baselines run on the universal table, as in §6.
    let substrate = workload.substrate();
    let universal = substrate.universal().clone();
    rows.push(baseline_row(sksfm(&universal, task)));
    rows.push(baseline_row(h2o(&universal, task)));

    for variant in ModisVariant::all() {
        let result = run_variant(variant, &substrate, config);
        rows.push(skyline_to_row(variant.name(), &result, primary_hib));
    }
    rows
}

/// Synthetic single-table substrate of `rows` tuples used by the
/// materialisation benchmarks: mixed numeric/categorical features with
/// missingness over a linear target, deterministic in `seed`.
pub fn materialize_substrate(rows: usize, seed: u64) -> TableSubstrate {
    materialize_substrate_with(rows, seed, &TableSpaceConfig::default())
}

/// [`materialize_substrate`] with an explicit space configuration — the
/// cluster benchmarks bound the per-substrate raw-metrics memo
/// (`eval_cache_capacity`) so that serving performance is carried by the
/// engine's shared evaluation cache, the store that sharding partitions.
pub fn materialize_substrate_with(
    rows: usize,
    seed: u64,
    space: &TableSpaceConfig,
) -> TableSubstrate {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let schema = Schema::from_attributes(vec![
        Attribute::key("id"),
        Attribute::feature("x1"),
        Attribute::feature("x2"),
        Attribute::feature("cat"),
        Attribute::feature("noise"),
        Attribute::target("y"),
    ]);
    const COLOURS: [&str; 4] = ["red", "green", "blue", "amber"];
    let data_rows: Vec<Vec<Value>> = (0..rows)
        .map(|i| {
            let a = (next() % 97) as f64;
            let b = (next() % 53) as f64;
            vec![
                Value::Int(i as i64),
                Value::Float(a),
                if next() % 11 == 0 {
                    Value::Null
                } else {
                    Value::Float(b)
                },
                Value::Str(COLOURS[(next() % 4) as usize].into()),
                Value::Float((next() % 29) as f64),
                Value::Float(2.0 * a - b + 3.0),
            ]
        })
        .collect();
    let data = Dataset::from_rows("synthetic", schema, data_rows).unwrap();
    let task = TaskSpec {
        name: "materialize-bench".into(),
        model: ModelKind::LinearRegressor,
        target: "y".into(),
        key: Some("id".into()),
        measures: MeasureSet::new(vec![
            MeasureSpec::maximise("p_R2"),
            MeasureSpec::minimise("p_Train", 2.0),
        ]),
        metric_kinds: vec![MetricKind::R2, MetricKind::TrainTime],
        train_ratio: 0.7,
        seed,
    };
    TableSubstrate::from_universal(data, task, space)
}

/// A representative non-trivial state for the materialisation benchmarks:
/// every third unit cleared (mixing attribute masks and cluster removals).
pub fn materialize_state(substrate: &TableSubstrate) -> StateBitmap {
    let mut bitmap = substrate.forward_start();
    for i in (0..substrate.num_units()).step_by(3) {
        bitmap.set(i, false);
    }
    bitmap
}

/// Runs the MODis variants on the T5 graph workload (Table 5 compares only
/// MODis methods plus the original graph).
pub fn run_graph_methods(
    graph: &BipartiteGraph,
    config: &ModisConfig,
    space: &GraphSpaceConfig,
) -> Vec<MethodRow> {
    let substrate = GraphSubstrate::new(graph.clone(), t5_measures(), space.clone());
    let mut rows = Vec::new();

    // "Original": the full input graph.
    let full = substrate.forward_start();
    let raw = substrate.evaluate_raw(&full);
    rows.push(MethodRow {
        method: "Original".into(),
        raw,
        size: substrate.artifact_size(&full),
        discovery_seconds: 0.0,
    });

    for variant in ModisVariant::all() {
        let result = run_variant(variant, &substrate, config);
        rows.push(skyline_to_row(variant.name(), &result, true));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> ModisConfig {
        ModisConfig::default()
            .with_max_states(20)
            .with_max_level(3)
            .with_estimator(EstimatorMode::Surrogate {
                warmup: 8,
                refresh: 8,
            })
    }

    #[test]
    fn task_definitions_are_consistent() {
        for (w, n_measures) in [
            (task_t1(1), 4usize),
            (task_t2(1), 5),
            (task_t3(1), 3),
            (task_t4(1), 6),
        ] {
            assert_eq!(w.task.measures.len(), n_measures);
            assert_eq!(w.task.metric_kinds.len(), n_measures);
            assert!(w.pool.tables.len() >= 2);
        }
        assert_eq!(t5_measures().len(), 7);
    }

    #[test]
    fn substrate_builds_for_every_task() {
        for w in [task_t1(2), task_t3(2)] {
            let s = w.substrate();
            assert!(s.num_units() > 0);
            assert!(s.universal().num_rows() > 0);
        }
    }

    #[test]
    fn variant_names_are_unique() {
        let names: std::collections::BTreeSet<&str> =
            ModisVariant::all().iter().map(|v| v.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn skyline_to_row_handles_empty_result() {
        let row = skyline_to_row("X", &SkylineResult::default(), true);
        assert_eq!(row.method, "X");
        assert!(row.raw.is_empty());
    }

    #[test]
    fn run_table_methods_produces_all_rows() {
        let w = task_t3(4);
        let rows = run_table_methods(&w, &small_config());
        assert_eq!(rows.len(), 10);
        let names: Vec<&str> = rows.iter().map(|r| r.method.as_str()).collect();
        assert!(names.contains(&"Original"));
        assert!(names.contains(&"BiMODis"));
        // Every MODis row carries the full measure vector.
        for r in rows.iter().filter(|r| r.method.contains("MODis")) {
            assert_eq!(r.raw.len(), w.task.measures.len(), "row {}", r.method);
        }
    }
}
