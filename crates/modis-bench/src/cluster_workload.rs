//! Shared workload for the cluster layer: the in-process harness that the
//! cluster bench (`benches/bench_cluster.rs` + `bench_cluster_baseline`),
//! the integration tests and the `cluster_demo` example all drive, so they
//! measure and assert against the same thing.
//!
//! A "cluster" here is N shard daemons — each a full [`Service`] behind
//! its own reactor [`Daemon`], with its **own engine and its own bounded
//! shared evaluation cache** — fronted by one [`Router`]. Every shard
//! registers the full scenario set over *fresh* substrate instances
//! (substrates are live objects that never cross the wire; distinct
//! instances share no memo state), and the router's rendezvous map decides
//! which shard actually executes which namespace.
//!
//! The workload is `namespaces` independent synthetic tabular pools
//! (distinct seeds ⇒ distinct datasets and fingerprints), two scenarios
//! each (`ws<i>/apx`, `ws<i>/bi`) sharing the pool's cache namespace
//! `ws<i>-pool`. Per-process resources are deliberately bounded — the
//! engine cache holds roughly one namespace's working set and the
//! substrate memo is tiny — because that is the regime where partitioning
//! namespaces across processes pays: a single shard serving every
//! namespace thrashes its cache between waves, while each shard of a
//! 2-shard cluster keeps its namespaces resident.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use modis_core::telemetry::Histogram;

use modis_core::config::ModisConfig;
use modis_core::estimator::EstimatorMode;
use modis_core::substrate::Substrate;
use modis_core::table_substrate::TableSpaceConfig;
use modis_engine::{Algorithm, EngineConfig, Scenario};
use modis_service::{ClusterSpec, Daemon, Router, Service, ServiceConfig};

use crate::workloads::materialize_substrate_with;

/// Tuning of one cluster workload instance.
#[derive(Debug, Clone)]
pub struct ClusterWorkload {
    /// Independent namespaces (pools), two scenarios each.
    pub namespaces: usize,
    /// Rows per synthetic pool.
    pub rows: usize,
    /// Search state budget per scenario.
    pub max_states: usize,
    /// Per-shard engine shared-cache capacity (entries; 0 = unbounded).
    /// Sized to roughly one namespace's working set in the benches.
    pub engine_cache_capacity: usize,
    /// Per-substrate raw-metrics memo capacity (kept tiny so the shared
    /// cache — the store sharding partitions — carries the hits).
    pub memo_capacity: usize,
}

impl ClusterWorkload {
    /// The bench workload: two namespaces whose combined working set
    /// overflows one shard's cache but fits two shards' caches.
    pub fn bench(rows: usize, max_states: usize) -> Self {
        ClusterWorkload {
            namespaces: 2,
            rows,
            max_states,
            // Tuned against the suite's distinct-state count: the apx+bi
            // pair valuates up to ~2×max_states distinct states per pool
            // (their visit sets overlap but are not identical), so one
            // namespace fits with headroom while two namespaces overflow
            // and thrash.
            engine_cache_capacity: max_states * 2 + 8,
            memo_capacity: 4,
        }
    }

    /// Scenario names in submission order.
    pub fn scenario_names(&self) -> Vec<String> {
        (0..self.namespaces)
            .flat_map(|i| [format!("ws{i}/apx"), format!("ws{i}/bi")])
            .collect()
    }

    /// The namespace of pool `i`.
    pub fn namespace(&self, i: usize) -> String {
        format!("ws{i}-pool")
    }

    /// The router spec: scenario name → namespace.
    pub fn spec(&self) -> ClusterSpec {
        ClusterSpec::new((0..self.namespaces).flat_map(|i| {
            [
                (format!("ws{i}/apx"), self.namespace(i)),
                (format!("ws{i}/bi"), self.namespace(i)),
            ]
        }))
        .expect("workload names are single tokens")
    }

    /// The search configuration every scenario uses.
    pub fn config(&self) -> ModisConfig {
        ModisConfig::default()
            .with_epsilon(0.15)
            .with_max_states(self.max_states)
            .with_max_level(3)
            .with_estimator(EstimatorMode::Oracle)
    }

    /// Registers the full scenario set on a service over fresh substrate
    /// instances (deterministic in the pool index).
    pub fn register_on(&self, service: &Service) {
        let space = TableSpaceConfig {
            eval_cache_capacity: self.memo_capacity,
            ..TableSpaceConfig::default()
        };
        let config = self.config();
        for i in 0..self.namespaces {
            let substrate: Arc<dyn Substrate> = Arc::new(materialize_substrate_with(
                self.rows,
                11 + 7 * i as u64,
                &space,
            ));
            for (suffix, algorithm) in [("apx", Algorithm::Apx), ("bi", Algorithm::Bi)] {
                service
                    .register(
                        Scenario::new(
                            format!("ws{i}/{suffix}"),
                            substrate.clone(),
                            algorithm,
                            config.clone(),
                        )
                        .with_cache_namespace(self.namespace(i)),
                    )
                    .expect("register cluster scenario");
            }
        }
    }

    /// The per-shard service configuration (bounded engine cache). One
    /// cache shard, so the configured capacity is exact — with the default
    /// 16 shards a small capacity splinters into per-shard slivers whose
    /// hash imbalance evicts even a fitting working set.
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig::default().with_engine(EngineConfig {
            cache_capacity: self.engine_cache_capacity,
            cache_shards: 1,
            ..EngineConfig::default()
        })
    }

    /// Builds one shard: a full service with the whole scenario set
    /// registered, behind its own reactor daemon.
    pub fn spawn_shard(&self, name: &str) -> ClusterShard {
        let service = Arc::new(Service::new(self.service_config()));
        self.register_on(&service);
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind shard daemon");
        ClusterShard {
            name: name.to_string(),
            service,
            daemon,
        }
    }

    /// Builds an `n`-shard cluster (shards `shard0` … `shardN-1`) behind a
    /// router.
    pub fn build_cluster(&self, n: usize) -> ClusterHarness {
        assert!(n > 0, "a cluster needs at least one shard");
        let shards: Vec<ClusterShard> = (0..n)
            .map(|i| self.spawn_shard(&format!("shard{i}")))
            .collect();
        let router = Router::bind(
            self.spec(),
            shards
                .iter()
                .map(|s| (s.name.clone(), s.daemon.addr()))
                .collect(),
            "127.0.0.1:0",
        )
        .expect("bind router");
        ClusterHarness { shards, router }
    }
}

/// Scenario names of the T3 cluster suite over the given seeds, in
/// submission order: `t3s<seed>/apx`, `t3s<seed>/div` per seed.
pub fn t3_cluster_scenarios(seeds: &[u64]) -> Vec<String> {
    seeds
        .iter()
        .flat_map(|s| [format!("t3s{s}/apx"), format!("t3s{s}/div")])
        .collect()
}

/// The cache namespace of the T3 pool seeded with `seed`.
pub fn t3_cluster_namespace(seed: u64) -> String {
    format!("t3s{seed}-pool")
}

/// Router spec of the T3 cluster suite.
pub fn t3_cluster_spec(seeds: &[u64]) -> ClusterSpec {
    ClusterSpec::new(seeds.iter().flat_map(|&s| {
        [
            (format!("t3s{s}/apx"), t3_cluster_namespace(s)),
            (format!("t3s{s}/div"), t3_cluster_namespace(s)),
        ]
    }))
    .expect("t3 names are single tokens")
}

/// Registers the T3 cluster suite on a service: per seed, one fresh
/// `task_t3(seed)` substrate with an ApxMODis and a DivMODis scenario
/// sharing the pool's namespace. Used identically by the in-process
/// reference runs and the `modis_shard` child-process daemons, so a
/// cluster and a single process search exactly the same spaces.
pub fn register_t3_cluster(service: &Service, seeds: &[u64], max_states: usize) {
    let config = ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(max_states)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Oracle);
    for &seed in seeds {
        let substrate: Arc<dyn Substrate> = Arc::new(crate::workloads::task_t3(seed).substrate());
        for (suffix, algorithm) in [("apx", Algorithm::Apx), ("div", Algorithm::Div)] {
            let scenario_config = if suffix == "div" {
                config.clone().with_diversification(4, 0.5)
            } else {
                config.clone()
            };
            service
                .register(
                    Scenario::new(
                        format!("t3s{seed}/{suffix}"),
                        substrate.clone(),
                        algorithm,
                        scenario_config,
                    )
                    .with_cache_namespace(t3_cluster_namespace(seed)),
                )
                .expect("register t3 cluster scenario");
        }
    }
}

/// One in-process shard: its service (own engine, own cache) and daemon.
pub struct ClusterShard {
    /// Shard name as the router knows it.
    pub name: String,
    /// The shard's service.
    pub service: Arc<Service>,
    /// The shard's reactor front-end.
    pub daemon: Daemon,
}

/// An in-process cluster: the shard set and the router fronting it.
pub struct ClusterHarness {
    /// The shards, in spawn order.
    pub shards: Vec<ClusterShard>,
    /// The router clients connect to.
    pub router: Router,
}

impl ClusterHarness {
    /// Stops the router and every shard daemon.
    pub fn stop(self) {
        self.router.stop();
        for shard in self.shards {
            shard.daemon.stop();
        }
    }
}

/// One scenario's outcome as driven over the wire.
#[derive(Debug, Clone)]
pub struct DrivenOutcome {
    /// Scenario name.
    pub scenario: String,
    /// Ticket the front-end issued.
    pub ticket: u64,
    /// The `DONE …` payload (after the ticket id) streamed by `WAIT`.
    pub done: String,
    /// The byte-exact `RESULT` payload (after the ticket id).
    pub result: String,
}

/// Drives one suite wave against any front-end (router or single daemon)
/// over a single pipelined connection: `SUBMIT` every scenario + `RUN` in
/// one burst, `WAIT` for all tickets, then fetch every `RESULT`. Returns
/// outcomes in submission order.
pub fn drive_suite(addr: SocketAddr, scenarios: &[String]) -> Vec<DrivenOutcome> {
    drive_suite_timed(addr, scenarios).0
}

/// [`drive_suite`] plus the per-response latency distribution: every
/// response line (tickets, drain `OK`, streamed `DONE`s, `RESULT`s) is
/// recorded as microseconds since its request burst was written — the
/// latency a pipelining suite client observes. Clock reads are noise
/// next to scenario execution, so [`drive_suite`] shares this path.
pub fn drive_suite_timed(
    addr: SocketAddr,
    scenarios: &[String],
) -> (Vec<DrivenOutcome>, Histogram) {
    let stream = TcpStream::connect(addr).expect("connect front-end");
    stream
        .set_read_timeout(Some(Duration::from_secs(300)))
        .expect("read timeout");
    // Without this, a request split across several small `write` calls
    // (e.g. `writeln!` fragments) stalls ~40ms behind the server's
    // delayed ACK (Nagle) — which would dominate every latency number
    // this harness produces. Requests are also built as single strings
    // and sent with one `write_all` each.
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    let mut recv = move || -> String {
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("reply line");
        assert!(reply.ends_with('\n'), "truncated reply {reply:?}");
        reply.trim_end().to_string()
    };

    let latency = Histogram::new();

    // One pipelined burst: all submissions plus the drain.
    let mut burst = String::new();
    for name in scenarios {
        burst.push_str(&format!("SUBMIT {name}\n"));
    }
    burst.push_str("RUN\n");
    let burst_start = Instant::now();
    writer.write_all(burst.as_bytes()).expect("send burst");

    let tickets: Vec<u64> = scenarios
        .iter()
        .map(|name| {
            let reply = recv();
            latency.record_duration(burst_start.elapsed());
            reply
                .strip_prefix("TICKET ")
                .unwrap_or_else(|| panic!("SUBMIT {name}: {reply}"))
                .parse()
                .expect("numeric ticket")
        })
        .collect();
    let run = recv();
    latency.record_duration(burst_start.elapsed());
    assert!(run.starts_with("OK "), "RUN: {run}");

    let ids: Vec<String> = tickets.iter().map(u64::to_string).collect();
    let wait_start = Instant::now();
    writer
        .write_all(format!("WAIT {}\n", ids.join(" ")).as_bytes())
        .expect("send WAIT");
    let mut done: std::collections::HashMap<u64, String> = std::collections::HashMap::new();
    for _ in &tickets {
        let reply = recv();
        latency.record_duration(wait_start.elapsed());
        let rest = reply
            .strip_prefix("DONE ")
            .unwrap_or_else(|| panic!("WAIT line: {reply}"));
        let (id, payload) = rest.split_once(' ').expect("DONE payload");
        done.insert(id.parse().expect("numeric DONE id"), payload.to_string());
    }

    // All RESULT fetches pipelined in one burst (responses in order).
    let mut result_burst = String::new();
    for ticket in &tickets {
        result_burst.push_str(&format!("RESULT {ticket}\n"));
    }
    let result_start = Instant::now();
    writer
        .write_all(result_burst.as_bytes())
        .expect("send RESULTs");
    let mut outcomes = Vec::new();
    for (name, &ticket) in scenarios.iter().zip(&tickets) {
        let reply = recv();
        latency.record_duration(result_start.elapsed());
        let rest = reply
            .strip_prefix("RESULT ")
            .unwrap_or_else(|| panic!("RESULT {ticket}: {reply}"));
        let (id, payload) = rest.split_once(' ').expect("RESULT payload");
        assert_eq!(id.parse::<u64>().expect("numeric id"), ticket);
        outcomes.push(DrivenOutcome {
            scenario: name.clone(),
            ticket,
            done: done.remove(&ticket).expect("every ticket completed"),
            result: payload.to_string(),
        });
    }
    let _ = writer.write_all(b"QUIT\n");
    (outcomes, latency)
}

/// Asks any front-end for its `STATS` line.
pub fn fetch_stats(addr: SocketAddr) -> String {
    let stream = TcpStream::connect(addr).expect("connect front-end");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"STATS\n").expect("send STATS");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("STATS reply");
    let _ = writer.write_all(b"QUIT\n");
    reply.trim_end().to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_tiny_cluster_answers_the_suite_through_the_router() {
        let workload = ClusterWorkload {
            namespaces: 2,
            rows: 120,
            max_states: 6,
            engine_cache_capacity: 0,
            memo_capacity: 0,
        };
        let cluster = workload.build_cluster(2);
        let names = workload.scenario_names();
        let outcomes = drive_suite(cluster.router.addr(), &names);
        assert_eq!(outcomes.len(), 4);
        for outcome in &outcomes {
            assert!(outcome.done.starts_with("entries="), "{:?}", outcome.done);
            assert!(
                outcome.result.starts_with("entries="),
                "{:?}",
                outcome.result
            );
        }
        let stats = fetch_stats(cluster.router.addr());
        assert!(stats.contains("cluster_shards=2"), "{stats}");
        // Both shards own at least one namespace... not guaranteed for 2
        // namespaces; but the work landed somewhere and every scenario ran.
        cluster.stop();
    }
}
