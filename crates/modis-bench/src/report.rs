//! Plain-text report helpers: the experiment binaries print the same rows /
//! series the paper's tables and figures report.

use crate::workloads::MethodRow;

/// A generic labelled row of numeric cells.
#[derive(Debug, Clone)]
pub struct Row {
    /// Row label (method name, parameter value, …).
    pub label: String,
    /// Numeric cells.
    pub values: Vec<f64>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<f64>) -> Self {
        Row {
            label: label.into(),
            values,
        }
    }
}

/// Prints a fixed-width table with a header.
pub fn print_table(title: &str, columns: &[&str], rows: &[Row]) {
    println!("\n=== {title} ===");
    let mut header = format!("{:<14}", "");
    for c in columns {
        header.push_str(&format!("{c:>12}"));
    }
    println!("{header}");
    for row in rows {
        let mut line = format!("{:<14}", truncate(&row.label, 14));
        for v in &row.values {
            line.push_str(&format!("{v:>12.4}"));
        }
        println!("{line}");
    }
}

/// Prints a labelled series (figure data): one line per x value.
pub fn print_series(
    title: &str,
    x_label: &str,
    series_names: &[&str],
    xs: &[f64],
    ys: &[Vec<f64>],
) {
    println!("\n=== {title} ===");
    let mut header = format!("{x_label:>10}");
    for s in series_names {
        header.push_str(&format!("{s:>14}"));
    }
    println!("{header}");
    for (i, x) in xs.iter().enumerate() {
        let mut line = format!("{x:>10.3}");
        for series in ys {
            let v = series.get(i).copied().unwrap_or(f64::NAN);
            line.push_str(&format!("{v:>14.4}"));
        }
        println!("{line}");
    }
}

/// Prints method-comparison rows (Tables 4–6): raw metric values followed by
/// the output size.
pub fn print_method_table(title: &str, measure_names: &[&str], rows: &[MethodRow]) {
    println!("\n=== {title} ===");
    let mut header = format!("{:<14}", "Method");
    for m in measure_names {
        header.push_str(&format!("{m:>12}"));
    }
    header.push_str(&format!("{:>18}", "Output Size"));
    println!("{header}");
    for row in rows {
        let mut line = format!("{:<14}", truncate(&row.method, 14));
        for i in 0..measure_names.len() {
            match row.raw.get(i) {
                Some(v) => line.push_str(&format!("{v:>12.4}")),
                None => line.push_str(&format!("{:>12}", "-")),
            }
        }
        line.push_str(&format!(
            "{:>18}",
            format!("({}, {})", row.size.0, row.size.1)
        ));
        println!("{line}");
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        s.chars().take(n - 1).collect::<String>() + "…"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_and_tables_do_not_panic() {
        let rows = vec![
            Row::new("a", vec![1.0, 2.0]),
            Row::new("a-very-long-label-here", vec![3.0]),
        ];
        print_table("t", &["c1", "c2"], &rows);
        print_series("s", "x", &["y1"], &[1.0, 2.0], &[vec![0.1, 0.2]]);
        let mrows = vec![MethodRow {
            method: "Original".into(),
            raw: vec![0.5],
            size: (10, 3),
            discovery_seconds: 0.0,
        }];
        print_method_table("m", &["p_Acc", "p_F1"], &mrows);
    }

    #[test]
    fn truncate_shortens_long_labels() {
        assert_eq!(truncate("abc", 14), "abc");
        assert!(truncate("abcdefghijklmnopq", 10).len() <= 12);
    }
}
