//! # modis-bench
//!
//! Experiment harness for the MODis reproduction: task definitions matching
//! the paper's T1–T5 (§6, Table 3), method runners producing the rows of
//! Tables 4–6, and plain-text report helpers used by the `fig*`/`table*`
//! binaries and the Criterion micro-benchmarks.

#![warn(missing_docs)]

pub mod cluster_workload;
pub mod dominance_workload;
pub mod reactor_workload;
pub mod report;
pub mod service_workload;
pub mod workloads;

pub use cluster_workload::{
    drive_suite, drive_suite_timed, fetch_stats, register_t3_cluster, t3_cluster_namespace,
    t3_cluster_scenarios, t3_cluster_spec, ClusterHarness, ClusterShard, ClusterWorkload,
    DrivenOutcome,
};
pub use reactor_workload::{
    drive_clients, drive_clients_timed, max_open_files, open_idle_connections, requests_per_sec,
    scrape_sweep_totals, BlockingDaemon, ClientMode, DriveReport,
};
pub use report::{print_method_table, print_series, print_table, Row};
pub use service_workload::{
    register_service_suite, register_service_suite_over, service_config, service_probe_states,
    service_substrate, service_valuation_requests, service_with_probe_states,
    SERVICE_SCENARIO_NAMES,
};
pub use workloads::{
    materialize_state, materialize_substrate, materialize_substrate_with, run_graph_methods,
    run_table_methods, run_variant, skyline_to_row, t5_measures, task_t1, task_t2, task_t3,
    task_t4, MethodRow, ModisVariant, Workload,
};
