//! Shared workload for the service-layer benchmarks: the Criterion bench
//! (`benches/bench_service.rs`) and the committed-baseline binary
//! (`bench_service_baseline`) must measure the same thing, so the scenario
//! suite, probe states and configuration live here.
//!
//! Every call builds *fresh* substrate instances: the tabular substrate
//! memoises raw metrics internally, so re-using one instance would silently
//! turn a "cold" measurement warm.

use std::sync::Arc;

use modis_core::prelude::*;
use modis_core::substrate::Substrate;
use modis_data::StateBitmap;
use modis_engine::{Algorithm, Scenario};
use modis_service::Service;

use crate::workloads::materialize_substrate;

/// Names of the benchmark suite's scenarios, in submission order.
pub const SERVICE_SCENARIO_NAMES: [&str; 3] = ["svc/apx", "svc/bi", "svc/div"];

/// Search configuration used by every service-bench scenario.
pub fn service_config(max_states: usize) -> ModisConfig {
    ModisConfig::default()
        .with_epsilon(0.15)
        .with_max_states(max_states)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Oracle)
}

/// A fresh substrate over the synthetic `rows`-tuple table (deterministic
/// in `seed`; distinct instances share no memo state).
pub fn service_substrate(rows: usize, seed: u64) -> Arc<dyn Substrate> {
    Arc::new(materialize_substrate(rows, seed))
}

/// Registers the three-algorithm suite over `substrate`, all sharing the
/// `bench-pool` cache namespace.
pub fn register_service_suite_over(
    service: &Service,
    substrate: Arc<dyn Substrate>,
    max_states: usize,
) {
    let config = service_config(max_states);
    for (name, algorithm) in
        SERVICE_SCENARIO_NAMES
            .into_iter()
            .zip([Algorithm::Apx, Algorithm::Bi, Algorithm::Div])
    {
        service
            .register(
                Scenario::new(name, substrate.clone(), algorithm, config.clone())
                    .with_cache_namespace("bench-pool"),
            )
            .expect("register bench scenario");
    }
}

/// Registers the three-algorithm suite over one fresh substrate, all
/// sharing the `bench-pool` cache namespace.
pub fn register_service_suite(service: &Service, rows: usize, seed: u64, max_states: usize) {
    register_service_suite_over(service, service_substrate(rows, seed), max_states);
}

/// A fresh service with the suite registered plus `n` probe states over the
/// *same* substrate instance — the setup both valuation benches share, so
/// the timed region contains only the valuations themselves.
pub fn service_with_probe_states(
    rows: usize,
    seed: u64,
    max_states: usize,
    n: usize,
) -> (Service, Vec<StateBitmap>) {
    let substrate = service_substrate(rows, seed);
    let states = service_probe_states(substrate.as_ref(), n);
    let service = Service::new(modis_service::ServiceConfig::default());
    register_service_suite_over(&service, substrate, max_states);
    (service, states)
}

/// `n` distinct probe states: the universal state with one unit cleared,
/// cycling over the substrate's units (capped at the unit count to keep
/// every state distinct).
pub fn service_probe_states(substrate: &dyn Substrate, n: usize) -> Vec<StateBitmap> {
    let full = substrate.forward_start();
    (0..n.min(substrate.num_units()))
        .map(|i| full.flipped(i))
        .collect()
}

/// Simulated concurrent clients: `requests` state lists of `per_request`
/// single-flip probe states each, with consecutive windows shifted by
/// `stride` units — so requests *overlap* (as concurrent scenario requests
/// over one pool do). The batched path dedups the overlap into one
/// training per distinct state; the per-state path pays for every
/// duplicate.
pub fn service_valuation_requests(
    substrate: &dyn Substrate,
    requests: usize,
    per_request: usize,
    stride: usize,
) -> Vec<Vec<StateBitmap>> {
    let units = substrate.num_units().max(1);
    let full = substrate.forward_start();
    (0..requests)
        .map(|r| {
            (0..per_request)
                .map(|i| full.flipped((r * stride + i) % units))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_service::ServiceConfig;

    #[test]
    fn suite_registers_and_probe_states_are_distinct() {
        let service = Service::new(ServiceConfig::default());
        register_service_suite(&service, 200, 7, 10);
        assert_eq!(service.scenario_names().len(), 3);
        let substrate = service_substrate(200, 7);
        let states = service_probe_states(substrate.as_ref(), 64);
        assert!(!states.is_empty());
        for (i, a) in states.iter().enumerate() {
            for b in &states[i + 1..] {
                assert_ne!(a, b, "probe states must be distinct");
            }
        }
    }
}
