//! Figure 13: efficiency of the MODis variants on T5 (graph data, a/b) and
//! T3 (avocado regression, c/d), varying ε and maxl.

use modis_bench::{print_series, t5_measures, task_t3, ModisVariant};
use modis_core::prelude::*;
use modis_datagen::t5_recommendation;

fn main() {
    let names: Vec<&str> = ModisVariant::all().iter().map(|v| v.name()).collect();

    // T5 graph substrate.
    let graph = t5_recommendation(42);
    let graph_sub = GraphSubstrate::new(
        graph,
        t5_measures(),
        GraphSpaceConfig {
            n_edge_clusters: 6,
            ..GraphSpaceConfig::default()
        },
    );
    let base = ModisConfig::default()
        .with_max_states(25)
        .with_estimator(EstimatorMode::Oracle);

    // (a) T5: vary ε.
    let eps = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mut series = vec![Vec::new(); 4];
    for &e in &eps {
        let cfg = base.clone().with_epsilon(e).with_max_level(4);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(modis_bench::run_variant(*v, &graph_sub, &cfg).elapsed_seconds);
        }
    }
    print_series(
        "Figure 13(a) — T5 discovery time (s) vs ε",
        "epsilon",
        &names,
        &eps,
        &series,
    );

    // (b) T5: vary maxl.
    let maxls = [2.0, 3.0, 4.0];
    let mut series = vec![Vec::new(); 4];
    for &l in &maxls {
        let cfg = base.clone().with_epsilon(0.1).with_max_level(l as usize);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(modis_bench::run_variant(*v, &graph_sub, &cfg).elapsed_seconds);
        }
    }
    print_series(
        "Figure 13(b) — T5 discovery time (s) vs maxl",
        "maxl",
        &names,
        &maxls,
        &series,
    );

    // T3 tabular substrate.
    let w = task_t3(42);
    let table_sub = w.substrate();
    let base =
        ModisConfig::default()
            .with_max_states(40)
            .with_estimator(EstimatorMode::Surrogate {
                warmup: 10,
                refresh: 10,
            });

    // (c) T3: vary ε.
    let mut series = vec![Vec::new(); 4];
    for &e in &eps {
        let cfg = base.clone().with_epsilon(e).with_max_level(5);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(modis_bench::run_variant(*v, &table_sub, &cfg).elapsed_seconds);
        }
    }
    print_series(
        "Figure 13(c) — T3 discovery time (s) vs ε",
        "epsilon",
        &names,
        &eps,
        &series,
    );

    // (d) T3: vary maxl.
    let maxls = [2.0, 3.0, 4.0, 5.0];
    let mut series = vec![Vec::new(); 4];
    for &l in &maxls {
        let cfg = base.clone().with_epsilon(0.1).with_max_level(l as usize);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(modis_bench::run_variant(*v, &table_sub, &cfg).elapsed_seconds);
        }
    }
    print_series(
        "Figure 13(d) — T3 discovery time (s) vs maxl",
        "maxl",
        &names,
        &maxls,
        &series,
    );

    println!("\nExpected shape (paper): BiMODis is consistently the fastest on both the graph");
    println!("and the tabular task; all variants slow down as maxl grows and speed up as ε grows.");
}
