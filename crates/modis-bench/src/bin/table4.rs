//! Table 4: comparison of data-discovery methods in the multi-objective
//! setting on T2 (house classification) and T4 (mental-health
//! classification). Prints one row per method with every measure of Table 3
//! plus the output size.

use modis_bench::{print_method_table, run_table_methods, task_t2, task_t4};
use modis_core::prelude::*;

fn main() {
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(60)
        .with_max_level(6)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 15,
            refresh: 10,
        });

    let t2 = task_t2(42);
    let rows = run_table_methods(&t2, &config);
    let names: Vec<&str> = t2.task.measures.names();
    print_method_table("Table 4 (T2: House)", &names, &rows);

    let t4 = task_t4(42);
    let rows = run_table_methods(&t4, &config);
    let names: Vec<&str> = t4.task.measures.names();
    print_method_table("Table 4 (T4: Mental)", &names, &rows);

    println!("\nExpected shape (paper): MODis variants lead p_F1/p_Acc on both tasks,");
    println!("feature-selection baselines (SkSFM/H2O) win training time at an accuracy cost,");
    println!("augmentation baselines (METAM/Starmie) sit in between.");
}
