//! Figure 9: impact of the diversification trade-off α on DivMODis.
//!
//! (a) Performance diversity: the distribution (min / mean / median / max) of
//!     the accuracy across the diversified skyline members, per α.
//! (b) Content diversity: the per-unit contribution balance of the skyline
//!     members, summarised by the standard deviation of unit usage (smaller =
//!     more evenly distributed contributions, as in the paper's heatmap).

use modis_bench::{print_table, task_t1, Row};
use modis_core::prelude::*;

fn main() {
    let workload = task_t1(42);
    let substrate = workload.substrate();
    let alphas = [0.1, 0.3, 0.5, 0.7, 0.9];

    let mut perf_rows = Vec::new();
    let mut content_rows = Vec::new();
    for &alpha in &alphas {
        let config = ModisConfig::default()
            .with_epsilon(0.2)
            .with_max_states(40)
            .with_max_level(5)
            .with_estimator(EstimatorMode::Surrogate {
                warmup: 12,
                refresh: 10,
            })
            .with_diversification(4, alpha);
        let result = div_modis(&substrate, &config);

        // (a) accuracy distribution across skyline members.
        let accs: Vec<f64> = result
            .entries
            .iter()
            .filter_map(|e| e.raw.first().copied())
            .collect();
        let (min, max) = accs
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        let mean = if accs.is_empty() {
            0.0
        } else {
            accs.iter().sum::<f64>() / accs.len() as f64
        };
        let mut sorted = accs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(0.0);
        perf_rows.push(Row::new(
            format!("alpha={alpha}"),
            vec![min.min(max), mean, median, max.max(min), accs.len() as f64],
        ));

        // (b) unit-usage balance across skyline members.
        let n_units = substrate.num_units();
        let mut usage = vec![0.0f64; n_units];
        for e in &result.entries {
            for (i, u) in usage.iter_mut().enumerate() {
                if e.bitmap.get(i) {
                    *u += 1.0;
                }
            }
        }
        let total: f64 = usage.iter().sum();
        let shares: Vec<f64> = if total > 0.0 {
            usage.iter().map(|u| u / total).collect()
        } else {
            vec![0.0; n_units]
        };
        let std = modis_data::stats::std_dev(&shares);
        content_rows.push(Row::new(format!("alpha={alpha}"), vec![std]));
    }

    print_table(
        "Figure 9(a) — accuracy distribution of the diversified skyline vs α",
        &["min", "mean", "median", "max", "count"],
        &perf_rows,
    );
    print_table(
        "Figure 9(b) — std-dev of per-unit contribution shares vs α (smaller = more balanced)",
        &["std_dev"],
        &content_rows,
    );

    println!("\nExpected shape (paper): small α gives a wider accuracy range with centred");
    println!("mean/median; larger α narrows the accuracy distribution and makes the unit");
    println!("contributions more evenly distributed (decreasing std-dev).");
}
