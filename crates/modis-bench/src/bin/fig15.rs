//! Figure 15: sensitivity analysis on T5 — the percentage change of the
//! primary ranking measure (P@5) relative to the original graph, as a
//! function of the maximum path length and of ε.

use modis_bench::{print_series, t5_measures, ModisVariant};
use modis_core::prelude::*;
use modis_datagen::t5_recommendation;

fn percentage_change(best: f64, original: f64) -> f64 {
    if original <= 1e-12 {
        0.0
    } else {
        (best - original) / original * 100.0
    }
}

fn main() {
    let graph = t5_recommendation(42);
    let sub = GraphSubstrate::new(
        graph,
        t5_measures(),
        GraphSpaceConfig {
            n_edge_clusters: 6,
            ..GraphSpaceConfig::default()
        },
    );
    let original_p5 = sub.evaluate_raw(&sub.forward_start())[0];
    let names: Vec<&str> = ModisVariant::all().iter().map(|v| v.name()).collect();
    let base = ModisConfig::default()
        .with_max_states(25)
        .with_estimator(EstimatorMode::Oracle);

    // (a) percentage change vs maxl.
    let maxls = [1.0, 2.0, 3.0, 4.0];
    let mut series = vec![Vec::new(); 4];
    for &l in &maxls {
        let cfg = base.clone().with_epsilon(0.1).with_max_level(l as usize);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            let res = modis_bench::run_variant(*v, &sub, &cfg);
            let best = res
                .best_by_raw(0, true)
                .map(|e| e.raw[0])
                .unwrap_or(original_p5);
            series[i].push(percentage_change(best, original_p5));
        }
    }
    print_series(
        "Figure 15(a) — T5 % change of P@5 vs maxl",
        "maxl",
        &names,
        &maxls,
        &series,
    );

    // (b) percentage change vs ε.
    let eps = [0.5, 0.3, 0.2, 0.1];
    let mut series = vec![Vec::new(); 4];
    for &e in &eps {
        let cfg = base.clone().with_epsilon(e).with_max_level(3);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            let res = modis_bench::run_variant(*v, &sub, &cfg);
            let best = res
                .best_by_raw(0, true)
                .map(|e| e.raw[0])
                .unwrap_or(original_p5);
            series[i].push(percentage_change(best, original_p5));
        }
    }
    print_series(
        "Figure 15(b) — T5 % change of P@5 vs ε",
        "epsilon",
        &names,
        &eps,
        &series,
    );

    println!("\nExpected shape (paper): larger maxl and smaller ε yield larger percentage");
    println!("improvements; sensitivity to maxl is stronger than to ε.");
}
