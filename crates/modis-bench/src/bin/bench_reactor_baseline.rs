//! Save-baseline runner for the reactor front-end: measures protocol
//! requests/sec for (1) the seed's thread-per-connection daemon driven
//! the way the seed was driven (sequential request/response clients),
//! (2) the non-blocking reactor under the same sequential clients, and
//! (3) the reactor with pipelined clients, then writes the numbers to
//! `BENCH_reactor.json` — throughput medians plus p50/p99 per-request
//! latency columns from a separate timed pass (the throughput pass stays
//! clock-free on the client threads).
//!
//! Usage: `bench_reactor_baseline [--clients N] [--requests N]
//! [--window N] [--iters N] [--out PATH] [--quick]` — `--quick` shrinks
//! the workload to one short iteration for the CI smoke step.
//!
//! A fourth section sweeps **idle connection count**: the O(ready) claim
//! is that sweep cost tracks ready fds, not open fds, so a fixed hot set
//! is driven while 10² → 10⁴ mostly-idle connections sit registered, and
//! the mean per-sweep cost (`Δreactor_sweep_us_sum / Δcount` between two
//! `METRICS` scrapes bracketing the drive) must stay flat. The idle mass
//! is held by a re-invoked child process (hidden `--idle-holder` mode) so
//! neither side of the bench trips the per-process fd limit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::SocketAddr;
use std::process::{Command, Stdio};
use std::sync::Arc;

use modis_bench::{
    drive_clients, drive_clients_timed, max_open_files, open_idle_connections, requests_per_sec,
    scrape_sweep_totals, BlockingDaemon, ClientMode,
};
use modis_service::{Daemon, Service, ServiceConfig};

/// Hidden child mode: hold `count` idle connections to `addr` open until
/// the parent closes our stdin, then drop them and exit. Prints `READY
/// <count>` once the mass is connected.
fn run_idle_holder(addr: &str, count: usize) {
    let addr: SocketAddr = addr.parse().expect("idle-holder addr");
    let conns = open_idle_connections(addr, count).expect("open idle connections");
    println!("READY {}", conns.len());
    std::io::stdout().flush().expect("flush READY");
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    drop(conns);
}

/// One sweep-cost point: boot a reactor daemon, park `idle` connections
/// on it via the holder child, drive the fixed hot set, and return
/// `(mean per-sweep µs, hot req/s)` for the drive window.
fn sweep_point(idle: usize, hot_clients: usize, hot_requests: usize, window: usize) -> (f64, f64) {
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let exe = std::env::current_exe().expect("current exe");
    let mut holder = Command::new(exe)
        .args([
            "--idle-holder",
            &daemon.addr().to_string(),
            &idle.to_string(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn idle holder");
    let mut ready = String::new();
    BufReader::new(holder.stdout.take().expect("holder stdout"))
        .read_line(&mut ready)
        .expect("holder READY");
    assert!(ready.starts_with("READY "), "holder said {ready:?}");

    let (sum0, count0) = scrape_sweep_totals(daemon.addr()).expect("scrape before drive");
    let elapsed = drive_clients(
        daemon.addr(),
        hot_clients,
        hot_requests,
        ClientMode::Pipelined { window },
    );
    let (sum1, count1) = scrape_sweep_totals(daemon.addr()).expect("scrape after drive");

    drop(holder.stdin.take());
    holder.wait().expect("join idle holder");
    daemon.stop();

    let sweeps = count1.saturating_sub(count0).max(1);
    let per_sweep_us = sum1.saturating_sub(sum0) as f64 / sweeps as f64;
    (
        per_sweep_us,
        requests_per_sec(hot_clients, hot_requests, elapsed),
    )
}

/// Median of `iters` samples produced by `f`.
fn median_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1)).map(|_| f()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(i) = args.iter().position(|a| a == "--idle-holder") {
        let addr = args.get(i + 1).expect("--idle-holder <addr> <count>");
        let count = args
            .get(i + 2)
            .and_then(|v| v.parse().ok())
            .expect("--idle-holder <addr> <count>");
        run_idle_holder(addr, count);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = flag_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 4 } else { 16 });
    let requests: usize = flag_value("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 64 } else { 4_000 });
    let window: usize = flag_value("--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let iters: usize = flag_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 5 });
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_reactor.json".into());

    // (1) Thread-per-connection seed, sequential clients — the daemon the
    // reactor replaced, driven exactly as every seed test/example drove it.
    eprintln!("timing thread-per-connection baseline ({clients} clients × {requests})…");
    let blocking_rps = median_of(iters, || {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = BlockingDaemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let elapsed = drive_clients(daemon.addr(), clients, requests, ClientMode::Sequential);
        daemon.stop();
        requests_per_sec(clients, requests, elapsed)
    });

    // (2) Reactor, the same sequential clients: one request in flight per
    // connection, so every request pays one idle-park latency — the
    // honest cost of moving from per-connection blocking reads to a
    // single sweeping thread.
    eprintln!("timing reactor with sequential clients…");
    let reactor_sequential_rps = median_of(iters, || {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let elapsed = drive_clients(daemon.addr(), clients, requests, ClientMode::Sequential);
        daemon.stop();
        requests_per_sec(clients, requests, elapsed)
    });

    // (3) Reactor, pipelined clients — the mode the reactor exists for:
    // `window` requests in flight per connection, responses streamed back
    // in order, every sweep amortised over whole bursts.
    eprintln!("timing reactor with pipelined clients (window {window})…");
    let reactor_pipelined_rps = median_of(iters, || {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let elapsed = drive_clients(
            daemon.addr(),
            clients,
            requests,
            ClientMode::Pipelined { window },
        );
        daemon.stop();
        requests_per_sec(clients, requests, elapsed)
    });

    // Latency columns from one timed pass per mode (client-side clock
    // reads perturb throughput, so they stay out of the medians above).
    eprintln!("sampling per-request latency (timed pass per mode)…");
    let latency_of = |mode: ClientMode, reactor: bool| -> (u64, u64) {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let report = if reactor {
            let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
            let report = drive_clients_timed(daemon.addr(), clients, requests, mode);
            daemon.stop();
            report
        } else {
            let daemon = BlockingDaemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
            let report = drive_clients_timed(daemon.addr(), clients, requests, mode);
            daemon.stop();
            report
        };
        (report.latency.p50(), report.latency.p99())
    };
    let (blocking_p50, blocking_p99) = latency_of(ClientMode::Sequential, false);
    let (sequential_p50, sequential_p99) = latency_of(ClientMode::Sequential, true);
    let (pipelined_p50, pipelined_p99) = latency_of(ClientMode::Pipelined { window }, true);

    // (4) Connection-count sweep: fixed hot set, growing idle mass. The
    // fd budget must fit every idle connection's *server* side in this
    // process (the client sides live in the holder child), so points the
    // limit cannot hold are skipped out loud rather than silently capped.
    let sweep_idle: Vec<usize> = if quick {
        vec![100, 400]
    } else {
        vec![100, 1_000, 10_000]
    };
    let hot_clients = 4;
    // The drive must be long enough that Δsweep-count between the two
    // scrapes dwarfs setup noise (client accepts, the scrape conns).
    let hot_requests = if quick { 512 } else { 100_000 };
    let sweep_iters = if quick { 1 } else { 3 };
    let fd_cap = max_open_files();
    let mut sweep_rows: Vec<(usize, f64, f64)> = Vec::new();
    for &idle in &sweep_idle {
        if idle + hot_clients + 64 > fd_cap {
            eprintln!("skipping {idle}-idle-connection point: fd limit {fd_cap} too low");
            continue;
        }
        eprintln!("timing sweep cost under {idle} idle connections…");
        let mut samples: Vec<(f64, f64)> = (0..sweep_iters)
            .map(|_| sweep_point(idle, hot_clients, hot_requests, window))
            .collect();
        samples.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let (per_sweep_us, hot_rps) = samples[samples.len() / 2];
        sweep_rows.push((idle, per_sweep_us, hot_rps));
    }
    let sweep_costs: Vec<f64> = sweep_rows.iter().map(|r| r.1).collect();
    let sweep_flat = match (
        sweep_costs.iter().cloned().reduce(f64::min),
        sweep_costs.iter().cloned().reduce(f64::max),
    ) {
        (Some(lo), Some(hi)) if lo > 0.0 => hi / lo <= 2.0,
        _ => false,
    };
    let sweep_points_json = sweep_rows
        .iter()
        .map(|(idle, cost, rps)| {
            format!(
                "      {{ \"idle_connections\": {idle}, \"sweep_cost_us\": {cost:.1}, \"hot_requests_per_sec\": {rps:.0} }}"
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");

    let speedup_pipelined = reactor_pipelined_rps / blocking_rps.max(1e-9);
    let speedup_sequential = reactor_sequential_rps / blocking_rps.max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"reactor\",\n  \"workload\": {{ \"clients\": {clients}, \"requests_per_client\": {requests}, \"pipeline_window\": {window}, \"iters\": {iters}, \"request\": \"PING\" }},\n  \"requests_per_sec\": {{\n    \"thread_per_connection_sequential\": {blocking_rps:.0},\n    \"reactor_sequential\": {reactor_sequential_rps:.0},\n    \"reactor_pipelined\": {reactor_pipelined_rps:.0}\n  }},\n  \"request_latency_us\": {{\n    \"thread_per_connection_sequential\": {{ \"p50\": {blocking_p50}, \"p99\": {blocking_p99} }},\n    \"reactor_sequential\": {{ \"p50\": {sequential_p50}, \"p99\": {sequential_p99} }},\n    \"reactor_pipelined\": {{ \"p50\": {pipelined_p50}, \"p99\": {pipelined_p99} }}\n  }},\n  \"speedup_vs_thread_per_connection\": {{\n    \"reactor_pipelined\": {speedup_pipelined:.2},\n    \"reactor_sequential\": {speedup_sequential:.2}\n  }},\n  \"connection_sweep\": {{\n    \"hot_clients\": {hot_clients},\n    \"hot_requests_per_client\": {hot_requests},\n    \"pipeline_window\": {window},\n    \"points\": [\n{sweep_points_json}\n    ],\n    \"sweep_flat_within_2x\": {sweep_flat}\n  }}\n}}\n"
    );
    println!("{json}");
    if !quick {
        std::fs::write(&out, &json).expect("write baseline json");
        eprintln!("baseline written to {out}");
    }
    assert!(
        quick || speedup_pipelined > 1.0,
        "pipelined reactor {reactor_pipelined_rps:.0} req/s must beat \
         thread-per-connection {blocking_rps:.0} req/s"
    );
    assert!(
        quick || sweep_flat,
        "per-sweep cost must stay flat (within 2x) across the idle-connection \
         sweep; measured {sweep_costs:?} µs"
    );
}
