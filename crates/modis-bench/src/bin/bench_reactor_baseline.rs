//! Save-baseline runner for the reactor front-end: measures protocol
//! requests/sec for (1) the seed's thread-per-connection daemon driven
//! the way the seed was driven (sequential request/response clients),
//! (2) the non-blocking reactor under the same sequential clients, and
//! (3) the reactor with pipelined clients, then writes the numbers to
//! `BENCH_reactor.json` — throughput medians plus p50/p99 per-request
//! latency columns from a separate timed pass (the throughput pass stays
//! clock-free on the client threads).
//!
//! Usage: `bench_reactor_baseline [--clients N] [--requests N]
//! [--window N] [--iters N] [--out PATH] [--quick]` — `--quick` shrinks
//! the workload to one short iteration for the CI smoke step.

use std::sync::Arc;

use modis_bench::{
    drive_clients, drive_clients_timed, requests_per_sec, BlockingDaemon, ClientMode,
};
use modis_service::{Daemon, Service, ServiceConfig};

/// Median of `iters` samples produced by `f`.
fn median_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1)).map(|_| f()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = flag_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 4 } else { 16 });
    let requests: usize = flag_value("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 64 } else { 4_000 });
    let window: usize = flag_value("--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let iters: usize = flag_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 5 });
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_reactor.json".into());

    // (1) Thread-per-connection seed, sequential clients — the daemon the
    // reactor replaced, driven exactly as every seed test/example drove it.
    eprintln!("timing thread-per-connection baseline ({clients} clients × {requests})…");
    let blocking_rps = median_of(iters, || {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = BlockingDaemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let elapsed = drive_clients(daemon.addr(), clients, requests, ClientMode::Sequential);
        daemon.stop();
        requests_per_sec(clients, requests, elapsed)
    });

    // (2) Reactor, the same sequential clients: one request in flight per
    // connection, so every request pays one idle-park latency — the
    // honest cost of moving from per-connection blocking reads to a
    // single sweeping thread.
    eprintln!("timing reactor with sequential clients…");
    let reactor_sequential_rps = median_of(iters, || {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let elapsed = drive_clients(daemon.addr(), clients, requests, ClientMode::Sequential);
        daemon.stop();
        requests_per_sec(clients, requests, elapsed)
    });

    // (3) Reactor, pipelined clients — the mode the reactor exists for:
    // `window` requests in flight per connection, responses streamed back
    // in order, every sweep amortised over whole bursts.
    eprintln!("timing reactor with pipelined clients (window {window})…");
    let reactor_pipelined_rps = median_of(iters, || {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let elapsed = drive_clients(
            daemon.addr(),
            clients,
            requests,
            ClientMode::Pipelined { window },
        );
        daemon.stop();
        requests_per_sec(clients, requests, elapsed)
    });

    // Latency columns from one timed pass per mode (client-side clock
    // reads perturb throughput, so they stay out of the medians above).
    eprintln!("sampling per-request latency (timed pass per mode)…");
    let latency_of = |mode: ClientMode, reactor: bool| -> (u64, u64) {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let report = if reactor {
            let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
            let report = drive_clients_timed(daemon.addr(), clients, requests, mode);
            daemon.stop();
            report
        } else {
            let daemon = BlockingDaemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
            let report = drive_clients_timed(daemon.addr(), clients, requests, mode);
            daemon.stop();
            report
        };
        (report.latency.p50(), report.latency.p99())
    };
    let (blocking_p50, blocking_p99) = latency_of(ClientMode::Sequential, false);
    let (sequential_p50, sequential_p99) = latency_of(ClientMode::Sequential, true);
    let (pipelined_p50, pipelined_p99) = latency_of(ClientMode::Pipelined { window }, true);

    let speedup_pipelined = reactor_pipelined_rps / blocking_rps.max(1e-9);
    let speedup_sequential = reactor_sequential_rps / blocking_rps.max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"reactor\",\n  \"workload\": {{ \"clients\": {clients}, \"requests_per_client\": {requests}, \"pipeline_window\": {window}, \"iters\": {iters}, \"request\": \"PING\" }},\n  \"requests_per_sec\": {{\n    \"thread_per_connection_sequential\": {blocking_rps:.0},\n    \"reactor_sequential\": {reactor_sequential_rps:.0},\n    \"reactor_pipelined\": {reactor_pipelined_rps:.0}\n  }},\n  \"request_latency_us\": {{\n    \"thread_per_connection_sequential\": {{ \"p50\": {blocking_p50}, \"p99\": {blocking_p99} }},\n    \"reactor_sequential\": {{ \"p50\": {sequential_p50}, \"p99\": {sequential_p99} }},\n    \"reactor_pipelined\": {{ \"p50\": {pipelined_p50}, \"p99\": {pipelined_p99} }}\n  }},\n  \"speedup_vs_thread_per_connection\": {{\n    \"reactor_pipelined\": {speedup_pipelined:.2},\n    \"reactor_sequential\": {speedup_sequential:.2}\n  }}\n}}\n"
    );
    println!("{json}");
    if !quick {
        std::fs::write(&out, &json).expect("write baseline json");
        eprintln!("baseline written to {out}");
    }
    assert!(
        quick || speedup_pipelined > 1.0,
        "pipelined reactor {reactor_pipelined_rps:.0} req/s must beat \
         thread-per-connection {blocking_rps:.0} req/s"
    );
}
