//! Table 6: comparison of data-discovery methods on T1 (movie-gross
//! regression) and T3 (avocado-price regression).

use modis_bench::{print_method_table, run_table_methods, task_t1, task_t3};
use modis_core::prelude::*;

fn main() {
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(60)
        .with_max_level(6)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 15,
            refresh: 10,
        });

    let t1 = task_t1(42);
    let rows = run_table_methods(&t1, &config);
    print_method_table("Table 6 (T1: Movie)", &t1.task.measures.names(), &rows);

    let t3 = task_t3(42);
    let rows = run_table_methods(&t3, &config);
    print_method_table("Table 6 (T3: Avocado)", &t3.task.measures.names(), &rows);

    println!("\nExpected shape (paper): NOBiMODis/BiMODis take the top spots on p_Acc (T1)");
    println!("and MSE/MAE (T3); SkSFM/H2O trade accuracy for the lowest training time.");
}
