//! Save-baseline runner for the service layer: measures (1) suite
//! requests/sec on a cold cache vs. a service warm-started from a
//! snapshot, and (2) batched valuation (one thread-pool pass) vs. the cold
//! per-state loop, then writes the numbers to `BENCH_service.json`.
//!
//! Usage: `bench_service_baseline [--rows N] [--iters N] [--out PATH]
//! [--quick]` — `--quick` shrinks the workload to one short iteration for
//! the CI smoke step (compiles + runs, no timing assertions).

use std::time::Instant;

use modis_bench::{
    register_service_suite, service_substrate, service_valuation_requests, SERVICE_SCENARIO_NAMES,
};
use modis_service::{Service, ServiceConfig, ValuationRequest};

/// Median of `iters` samples produced by `f` (closures time their inner
/// region themselves, excluding their own setup).
fn median_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1)).map(|_| f()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let rows: usize = flag_value("--rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 300 } else { 4_000 });
    let iters: usize = flag_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 5 });
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_service.json".into());
    let max_states = if quick { 8 } else { 25 };
    let batch_states = if quick { 3 } else { 8 };
    let seed = 7;

    // One cold run produces the snapshot every warm iteration restores.
    eprintln!("preparing snapshot ({rows} rows)…");
    let snapshot_path =
        std::env::temp_dir().join(format!("modis_bench_service_{}.snap", std::process::id()));
    {
        let service = Service::new(ServiceConfig::default());
        register_service_suite(&service, rows, seed, max_states);
        service
            .submit_many(SERVICE_SCENARIO_NAMES)
            .expect("submit suite");
        service.run_pending();
        service.snapshot_to(&snapshot_path).expect("write snapshot");
    }

    // (1) Suite requests/sec: cold cache vs. snapshot warm start. Every
    // iteration builds a fresh service *and* fresh substrates; only the
    // snapshot carries state into the warm runs.
    eprintln!("timing cold vs. warm suite runs…");
    let cold_us = median_of(iters, || {
        let service = Service::new(ServiceConfig::default());
        register_service_suite(&service, rows, seed, max_states);
        service
            .submit_many(SERVICE_SCENARIO_NAMES)
            .expect("submit suite");
        let start = Instant::now();
        service.run_pending();
        start.elapsed().as_secs_f64() * 1e6
    });
    let warm_us = median_of(iters, || {
        let service = Service::from_snapshot(ServiceConfig::default(), &snapshot_path)
            .expect("restore snapshot");
        register_service_suite(&service, rows, seed, max_states);
        service
            .submit_many(SERVICE_SCENARIO_NAMES)
            .expect("submit suite");
        let start = Instant::now();
        service.run_pending();
        start.elapsed().as_secs_f64() * 1e6
    });
    let requests = SERVICE_SCENARIO_NAMES.len() as f64;
    let cold_rps = requests / (cold_us / 1e6);
    let warm_rps = requests / (warm_us / 1e6);

    // (2) Batched valuation vs. the cold per-state path, over simulated
    // concurrent clients whose state lists overlap (as concurrent requests
    // over one pool do). The per-state path models independent workers:
    // one fresh substrate per request, every state trained one at a time.
    // The batched path groups all requests into one engine pass: overlaps
    // train once and worker threads share the load. Setup (substrate
    // construction, registration) stays outside the timed region on both
    // sides.
    eprintln!("timing batched vs. per-state valuation…");
    let n_requests = if quick { 2 } else { 4 };
    let per_request = batch_states;
    let stride = if quick { 1 } else { 2 };
    let distinct = {
        let probe = service_substrate(rows, seed);
        let all: Vec<_> =
            service_valuation_requests(probe.as_ref(), n_requests, per_request, stride)
                .into_iter()
                .flatten()
                .collect();
        let mut unique = all.clone();
        unique.sort_unstable();
        unique.dedup();
        unique.len()
    };
    let per_state_us = median_of(iters, || {
        let workers: Vec<_> = (0..n_requests)
            .map(|_| service_substrate(rows, seed))
            .collect();
        let request_states =
            service_valuation_requests(workers[0].as_ref(), n_requests, per_request, stride);
        let start = Instant::now();
        for (worker, states) in workers.iter().zip(&request_states) {
            for state in states {
                std::hint::black_box(worker.evaluate_raw(state));
            }
        }
        start.elapsed().as_secs_f64() * 1e6
    });
    let batched_us = median_of(iters, || {
        let service = Service::new(ServiceConfig::default());
        register_service_suite(&service, rows, seed, max_states);
        let probe = service_substrate(rows, seed);
        let requests: Vec<ValuationRequest> =
            service_valuation_requests(probe.as_ref(), n_requests, per_request, stride)
                .into_iter()
                .map(|states| ValuationRequest {
                    scenario: "svc/apx".into(),
                    states,
                })
                .collect();
        let start = Instant::now();
        std::hint::black_box(service.valuate_many(&requests).unwrap());
        start.elapsed().as_secs_f64() * 1e6
    });

    let _ = std::fs::remove_file(&snapshot_path);

    let speedup_warm = warm_rps / cold_rps.max(1e-9);
    let speedup_batch = per_state_us / batched_us.max(1e-3);
    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"workload\": {{ \"rows\": {rows}, \"scenarios\": {scenarios}, \"max_states\": {max_states}, \"concurrent_requests\": {n_requests}, \"states_per_request\": {per_request}, \"distinct_states\": {distinct}, \"iters\": {iters} }},\n  \"suite_requests_per_sec\": {{\n    \"cold_cache\": {cold_rps:.2},\n    \"warm_snapshot\": {warm_rps:.2}\n  }},\n  \"concurrent_valuation_us\": {{\n    \"per_state_loop\": {per_state_us:.1},\n    \"batched_pass\": {batched_us:.1}\n  }},\n  \"speedup\": {{\n    \"warm_vs_cold\": {speedup_warm:.2},\n    \"batched_vs_per_state\": {speedup_batch:.2}\n  }}\n}}\n",
        scenarios = SERVICE_SCENARIO_NAMES.len(),
    );
    println!("{json}");
    if !quick {
        std::fs::write(&out, &json).expect("write baseline json");
        eprintln!("baseline written to {out}");
    }
    assert!(
        quick || speedup_warm > 1.0,
        "warm-start {warm_rps:.2} req/s must beat cold {cold_rps:.2} req/s"
    );
    assert!(
        quick || speedup_batch > 1.0,
        "batched pass {batched_us:.1}us must beat per-state loop {per_state_us:.1}us"
    );
}
