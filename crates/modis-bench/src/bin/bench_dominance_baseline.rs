//! Save-baseline runner for the skyline dominance kernels: differentially
//! verifies every fast kernel against the retained pairwise baseline on
//! each frontier family, times them, and writes the numbers to
//! `BENCH_dominance.json` — the committed evidence that the indexed kernel
//! clears the ≥10× bar on wide (≥4-measure, ≥2k-point) frontiers.
//!
//! Usage: `bench_dominance_baseline [--rows N] [--iters N] [--out PATH]
//! [--quick]` — `--quick` shrinks the workloads to a smoke run (still
//! differentially verified, no timing assertions, nothing written).

use std::time::Instant;

use modis_bench::dominance_workload::{frontier_points, Frontier};
use modis_core::dominance::{skyline_pairwise_baseline, skyline_with_stats};
use modis_core::dominance_index::{skyline_blocks, skyline_indexed, skyline_sorted};
use modis_engine::parallel_skyline;

/// Median wall-clock microseconds of `iters` runs of `f`.
fn median_micros<O, F: FnMut() -> O>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

struct Row {
    name: String,
    n: usize,
    dims: usize,
    skyline_len: usize,
    pairwise_us: f64,
    sorted_us: f64,
    indexed_us: f64,
    blocks_us: f64,
    parallel_us: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let scale: usize = flag_value("--rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 300 } else { 2500 });
    let iters: usize = flag_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 9 });
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_dominance.json".into());

    let workloads: Vec<(&str, usize, usize, Frontier)> = vec![
        ("wide_anti_4d", scale, 4, Frontier::AntiCorrelated),
        ("uniform_6d", scale * 2, 6, Frontier::Uniform),
        ("correlated_4d", scale, 4, Frontier::Correlated),
        ("dup_heavy_4d", scale, 4, Frontier::DuplicateHeavy),
        ("nan_laced_4d", scale, 4, Frontier::NanLaced),
        ("uniform_2d", scale * 2, 2, Frontier::Uniform),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for (name, n, dims, frontier) in workloads {
        eprintln!("workload {name}: n={n} dims={dims} ({})…", frontier.name());
        let pts = frontier_points(n, dims, frontier, 0xD0B1);

        // Differential gate first: every kernel must return the identical
        // index set before any of its timings mean anything.
        let base = skyline_pairwise_baseline(&pts);
        assert_eq!(skyline_sorted(&pts), base, "{name}: sorted diverged");
        assert_eq!(skyline_indexed(&pts), base, "{name}: indexed diverged");
        assert_eq!(skyline_blocks(&pts, 8), base, "{name}: blocks diverged");
        for threads in [1, 2, 4] {
            assert_eq!(
                parallel_skyline(&pts, threads),
                base,
                "{name}: parallel({threads}) diverged"
            );
        }
        assert_eq!(
            skyline_with_stats(&pts).0,
            base,
            "{name}: dispatch diverged"
        );

        rows.push(Row {
            name: name.to_string(),
            n,
            dims,
            skyline_len: base.len(),
            pairwise_us: median_micros(iters, || skyline_pairwise_baseline(&pts)),
            sorted_us: median_micros(iters, || skyline_sorted(&pts)),
            indexed_us: median_micros(iters, || skyline_indexed(&pts)),
            blocks_us: median_micros(iters, || skyline_blocks(&pts, 8)),
            parallel_us: median_micros(iters, || parallel_skyline(&pts, 4)),
        });
    }

    let wide = rows.iter().find(|r| r.name == "wide_anti_4d").unwrap();
    let indexed_vs_pairwise_wide = wide.pairwise_us / wide.indexed_us.max(1e-3);
    let parallel_vs_pairwise_wide = wide.pairwise_us / wide.parallel_us.max(1e-3);

    let mut json = String::from("{\n  \"bench\": \"dominance\",\n  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"name\": \"{}\", \"n\": {}, \"dims\": {}, \"skyline\": {}, \"pairwise_us\": {:.3}, \"sorted_us\": {:.3}, \"indexed_us\": {:.3}, \"blocks_us\": {:.3}, \"parallel_us\": {:.3}, \"indexed_speedup\": {:.2} }}{}\n",
            r.name,
            r.n,
            r.dims,
            r.skyline_len,
            r.pairwise_us,
            r.sorted_us,
            r.indexed_us,
            r.blocks_us,
            r.parallel_us,
            r.pairwise_us / r.indexed_us.max(1e-3),
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"speedup\": {{\n    \"indexed_vs_pairwise_wide\": {indexed_vs_pairwise_wide:.2},\n    \"parallel_vs_pairwise_wide\": {parallel_vs_pairwise_wide:.2}\n  }}\n}}\n"
    ));
    println!("{json}");
    if !quick {
        std::fs::write(&out, &json).expect("write baseline json");
        eprintln!("baseline written to {out}");
    }
    assert!(
        quick || indexed_vs_pairwise_wide >= 10.0,
        "indexed kernel speedup {indexed_vs_pairwise_wide:.2}x on the wide frontier is below the 10x acceptance bar"
    );
}
