//! Figure 7: effectiveness over multiple measures (radar plots for T1 and
//! T3). Prints, for every method and measure, the relative improvement
//! `rImp(p) = M(D_M).p / M(D_o).p` over the original dataset (normalised
//! minimise scale, larger is better) — the radii of the paper's radar chart.

use modis_bench::{print_table, run_table_methods, task_t1, task_t3, Row};
use modis_core::prelude::*;

fn relative_improvement(rows: &[modis_bench::MethodRow], task: &TaskSpec) -> Vec<Row> {
    let original = rows
        .iter()
        .find(|r| r.method == "Original")
        .expect("original row");
    let orig_norm = task.measures.normalise(&original.raw);
    rows.iter()
        .map(|r| {
            let norm = task.measures.normalise(&r.raw);
            let rimp: Vec<f64> = orig_norm
                .iter()
                .zip(norm.iter())
                .map(|(o, n)| if *n > 1e-9 { o / n } else { 1.0 })
                .collect();
            Row::new(r.method.clone(), rimp)
        })
        .collect()
}

fn main() {
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(50)
        .with_max_level(5)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 12,
            refresh: 10,
        });

    for workload in [task_t1(42), task_t3(42)] {
        let rows = run_table_methods(&workload, &config);
        let radar = relative_improvement(&rows, &workload.task);
        print_table(
            &format!(
                "Figure 7 ({}) — rImp per measure (outer/larger is better)",
                workload.task.name
            ),
            &workload.task.measures.names(),
            &radar,
        );
    }
    println!("\nExpected shape (paper): MODis variants enclose the baselines on most axes,");
    println!("with rImp(p_Acc) of roughly 1.5-2x over the original dataset.");
}
