//! Save-baseline runner for the cluster layer: measures multi-wave suite
//! throughput through the router at 1 shard vs. 2 shards under a fixed
//! per-process resource budget, then writes `BENCH_cluster.json`.
//!
//! Each shard's engine cache is sized to roughly one namespace's working
//! set. With every namespace on one shard the waves thrash the cache
//! (each namespace's refill evicts the others', so steady-state waves
//! retrain like cold ones); with two shards each namespace stays
//! resident and steady-state waves answer from cache. The headline
//! number is suite requests/sec across all waves — the serving regime a
//! cluster exists for.
//!
//! Usage: `bench_cluster_baseline [--rows N] [--waves N] [--iters N]
//! [--out PATH] [--quick]` — `--quick` shrinks the workload to one short
//! iteration for the CI smoke step.

use std::time::Instant;

use modis_bench::{drive_suite, drive_suite_timed, fetch_stats, ClusterWorkload};
use modis_core::telemetry::Histogram;

/// Median of `iters` samples produced by `f`.
fn median_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1)).map(|_| f()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let rows: usize = flag_value("--rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 200 } else { 4_000 });
    let waves: usize = flag_value("--waves")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 4 });
    let iters: usize = flag_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 3 });
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_cluster.json".into());
    let max_states = if quick { 6 } else { 12 };

    let workload = ClusterWorkload::bench(rows, max_states);
    let names = workload.scenario_names();

    let throughput = |shards: usize| -> (f64, String, u64, u64) {
        let mut stats = String::new();
        // Per-response latency merged across waves and iterations (every
        // ticket/DONE/RESULT line, measured from its burst's write).
        let latency = Histogram::new();
        let rps = median_of(iters, || {
            let cluster = workload.build_cluster(shards);
            let addr = cluster.router.addr();
            let start = Instant::now();
            let mut served = 0usize;
            for wave in 0..waves {
                let wave_start = Instant::now();
                let (outcomes, wave_latency) = drive_suite_timed(addr, &names);
                served += outcomes.len();
                latency.merge(&wave_latency);
                if std::env::var_os("CLUSTER_BENCH_TRACE").is_some() {
                    eprintln!(
                        "  shards={shards} wave={wave} {:.1}ms",
                        wave_start.elapsed().as_secs_f64() * 1e3
                    );
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            stats = fetch_stats(addr);
            cluster.stop();
            served as f64 / elapsed
        });
        (rps, stats, latency.p50(), latency.p99())
    };

    if std::env::var_os("CLUSTER_BENCH_TRACE").is_some() {
        // Bisection probe 1: the same waves driven in-process (no router,
        // no daemon) against one shard-configured service.
        let service = modis_service::Service::new(workload.service_config());
        workload.register_on(&service);
        for wave in 0..waves {
            let start = Instant::now();
            for name in &names {
                service.submit(name).expect("submit");
            }
            service.run_pending();
            eprintln!(
                "  in-process wave={wave} {:.1}ms",
                start.elapsed().as_secs_f64() * 1e3
            );
        }
        // Bisection probe 2: one daemon, no router.
        let shard = workload.spawn_shard("probe");
        for wave in 0..waves {
            let start = Instant::now();
            drive_suite(shard.daemon.addr(), &names);
            eprintln!(
                "  daemon-only wave={wave} {:.1}ms",
                start.elapsed().as_secs_f64() * 1e3
            );
        }
        shard.daemon.stop();
    }

    eprintln!("timing {waves}-wave suite at 1 shard ({rows} rows)…");
    let (rps_1, stats_1, p50_1, p99_1) = throughput(1);
    eprintln!("timing {waves}-wave suite at 2 shards…");
    let (rps_2, stats_2, p50_2, p99_2) = throughput(2);
    let speedup = rps_2 / rps_1.max(1e-9);

    let json = format!(
        "{{\n  \"bench\": \"cluster\",\n  \"workload\": {{ \"namespaces\": {namespaces}, \"scenarios\": {scenarios}, \"rows\": {rows}, \"max_states\": {max_states}, \"waves\": {waves}, \"per_shard_cache_capacity\": {capacity}, \"iters\": {iters} }},\n  \"suite_requests_per_sec\": {{\n    \"one_shard\": {rps_1:.2},\n    \"two_shards\": {rps_2:.2}\n  }},\n  \"suite_request_latency_us\": {{\n    \"one_shard\": {{ \"p50\": {p50_1}, \"p99\": {p99_1} }},\n    \"two_shards\": {{ \"p50\": {p50_2}, \"p99\": {p99_2} }}\n  }},\n  \"cluster_stats\": {{\n    \"one_shard\": \"{stats_1}\",\n    \"two_shards\": \"{stats_2}\"\n  }},\n  \"speedup\": {{\n    \"two_shards_vs_one\": {speedup:.2}\n  }}\n}}\n",
        namespaces = workload.namespaces,
        scenarios = names.len(),
        capacity = workload.engine_cache_capacity,
    );
    println!("{json}");
    if !quick {
        std::fs::write(&out, &json).expect("write baseline json");
        eprintln!("baseline written to {out}");
    }
    assert!(
        quick || speedup >= 1.5,
        "2 shards must serve the suite ≥1.5× faster than 1 under the same \
         per-shard budget: {rps_2:.2} vs {rps_1:.2} req/s ({speedup:.2}×)"
    );
}
