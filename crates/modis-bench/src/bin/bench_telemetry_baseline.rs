//! Overhead gate for the telemetry spine: the *instrumented* reactor
//! under pipelined clients must stay within a tolerance (default 5%) of
//! the pre-instrumentation pipelined baseline, and the run's `METRICS`
//! exposition must account for every request actually sent.
//!
//! The measured number uses the exact same clock-free driver
//! (`drive_clients`) the committed `BENCH_reactor.json` was produced
//! with, so the comparison isolates the instrumentation itself. After
//! the measured pass a separate timed pass samples p50/p99 request
//! latency, and a final scrape cross-checks
//! `reactor_requests_total{verb="ping"}` against the driven request
//! count — the throughput gate and the correctness check ride the same
//! workload.
//!
//! Usage: `bench_telemetry_baseline [--clients N] [--requests N]
//! [--window N] [--iters N] [--baseline-rps N] [--tolerance PCT]
//! [--out PATH] [--quick]`. Without `--baseline-rps` the baseline is the
//! `reactor_pipelined` requests/sec of `BENCH_reactor.json` — pass the
//! pre-instrumentation number explicitly when regenerating committed
//! baselines, since the checked-in reactor baseline is refreshed from
//! instrumented builds. `--quick` shrinks the workload and skips the
//! gate (CI smoke).

use std::io::{BufRead, BufReader, Write};
use std::sync::Arc;

use modis_bench::{drive_clients, drive_clients_timed, requests_per_sec, ClientMode};
use modis_service::{Daemon, Service, ServiceConfig};

/// Median of `iters` samples produced by `f`.
fn median_of<F: FnMut() -> f64>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1)).map(|_| f()).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// The `reactor_pipelined` requests/sec recorded in a
/// `BENCH_reactor.json` (looked up inside its `requests_per_sec`
/// object, no JSON dependency needed for the fixed shape we write).
fn pipelined_rps_from(path: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let section = &text[text.find("\"requests_per_sec\"")?..];
    let field = &section[section.find("\"reactor_pipelined\":")? + 20..];
    field
        .trim_start()
        .split(|c: char| !(c.is_ascii_digit() || c == '.'))
        .next()?
        .parse()
        .ok()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = flag_value("--clients")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 4 } else { 16 });
    let requests: usize = flag_value("--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 64 } else { 4_000 });
    let window: usize = flag_value("--window")
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let iters: usize = flag_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 5 });
    let tolerance: f64 = flag_value("--tolerance")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_telemetry.json".into());
    let (baseline_rps, baseline_source) = match flag_value("--baseline-rps") {
        Some(v) => (
            v.parse().expect("--baseline-rps takes a number"),
            "--baseline-rps".to_string(),
        ),
        None => (
            pipelined_rps_from("BENCH_reactor.json").unwrap_or(0.0),
            "BENCH_reactor.json reactor_pipelined".to_string(),
        ),
    };

    // Throughput of the instrumented reactor, measured with the same
    // clock-free driver as the committed reactor baseline.
    eprintln!("timing instrumented reactor, pipelined ({clients} clients × {requests})…");
    let instrumented_rps = median_of(iters, || {
        let service = Arc::new(Service::new(ServiceConfig::default()));
        let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let elapsed = drive_clients(
            daemon.addr(),
            clients,
            requests,
            ClientMode::Pipelined { window },
        );
        daemon.stop();
        requests_per_sec(clients, requests, elapsed)
    });

    // Timed pass: p50/p99 request latency, then a scrape of the same
    // daemon cross-checking the per-verb counter against what we sent.
    eprintln!("sampling latency and cross-checking the METRICS exposition…");
    let service = Arc::new(Service::new(ServiceConfig::default()));
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let report = drive_clients_timed(
        daemon.addr(),
        clients,
        requests,
        ClientMode::Pipelined { window },
    );
    let (p50, p99) = (report.latency.p50(), report.latency.p99());

    let stream = std::net::TcpStream::connect(daemon.addr()).expect("connect for scrape");
    stream.set_nodelay(true).expect("nodelay");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);
    writer.write_all(b"METRICS\n").expect("send METRICS");
    let mut header = String::new();
    reader.read_line(&mut header).expect("METRICS header");
    let count: usize = header
        .trim_end()
        .strip_prefix("METRICS ")
        .unwrap_or_else(|| panic!("bad METRICS header {header:?}"))
        .parse()
        .expect("numeric line count");
    let ping_line = (0..count)
        .map(|_| {
            let mut line = String::new();
            reader.read_line(&mut line).expect("METRICS line");
            line.trim_end().to_string()
        })
        .find(|l| l.starts_with("reactor_requests_total{verb=\"ping\"}"))
        .expect("ping counter in the exposition");
    let counted: usize = ping_line
        .rsplit(' ')
        .next()
        .and_then(|v| v.parse().ok())
        .expect("numeric ping count");
    let _ = writer.write_all(b"QUIT\n");
    daemon.stop();
    assert_eq!(
        counted,
        clients * requests,
        "the exposition must account for every request sent"
    );

    let overhead_pct = if baseline_rps > 0.0 {
        (baseline_rps - instrumented_rps) / baseline_rps * 100.0
    } else {
        0.0
    };
    let json = format!(
        "{{\n  \"bench\": \"telemetry\",\n  \"workload\": {{ \"clients\": {clients}, \"requests_per_client\": {requests}, \"pipeline_window\": {window}, \"iters\": {iters}, \"request\": \"PING\" }},\n  \"requests_per_sec\": {{\n    \"reactor_pipelined_uninstrumented_baseline\": {baseline_rps:.0},\n    \"reactor_pipelined_instrumented\": {instrumented_rps:.0}\n  }},\n  \"instrumentation_overhead_pct\": {overhead_pct:.2},\n  \"request_latency_us\": {{\n    \"reactor_pipelined_instrumented\": {{ \"p50\": {p50}, \"p99\": {p99} }}\n  }},\n  \"metrics_crosscheck\": {{ \"pings_sent\": {sent}, \"pings_counted\": {counted} }},\n  \"baseline_source\": \"{baseline_source}\",\n  \"tolerance_pct\": {tolerance:.1}\n}}\n",
        sent = clients * requests,
    );
    println!("{json}");
    if !quick {
        std::fs::write(&out, &json).expect("write baseline json");
        eprintln!("baseline written to {out}");
    }
    assert!(
        quick
            || baseline_rps <= 0.0
            || instrumented_rps >= baseline_rps * (1.0 - tolerance / 100.0),
        "instrumented reactor {instrumented_rps:.0} req/s fell more than {tolerance}% below \
         the uninstrumented baseline {baseline_rps:.0} req/s ({overhead_pct:.2}% overhead)"
    );
}
