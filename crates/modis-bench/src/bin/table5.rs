//! Table 5: MODis variants on the T5 graph task (link regression for
//! recommendation with a LightGCN-style model). Prints P@5/10, R@5/10,
//! NDCG@5/10 and output size for the original graph and each MODis variant.

use modis_bench::{print_method_table, run_graph_methods, t5_measures};
use modis_core::prelude::*;
use modis_datagen::t5_recommendation;

fn main() {
    let graph = t5_recommendation(42);
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(30)
        .with_max_level(4)
        .with_estimator(EstimatorMode::Oracle);
    let space = GraphSpaceConfig {
        n_edge_clusters: 6,
        ..GraphSpaceConfig::default()
    };

    let rows = run_graph_methods(&graph, &config, &space);
    let measures = t5_measures();
    print_method_table(
        "Table 5 (T5: LightGCN recommendation)",
        &measures.names(),
        &rows,
    );

    println!("\nExpected shape (paper): all MODis variants improve P@k / NDCG@k over the");
    println!("original graph by pruning noisy cross-community edges, with smaller outputs.");
}
