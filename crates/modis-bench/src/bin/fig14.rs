//! Figure 14: scalability of the MODis variants on T5, varying the number of
//! node features |A| (via edge-feature dimensionality) and the number of edge
//! clusters |adom|.

use modis_bench::{print_series, t5_measures, ModisVariant};
use modis_core::prelude::*;
use modis_datagen::graphs::{generate_bipartite_graph, GraphConfig};

fn main() {
    let names: Vec<&str> = ModisVariant::all().iter().map(|v| v.name()).collect();
    let base = ModisConfig::default()
        .with_epsilon(0.2)
        .with_max_states(20)
        .with_max_level(3)
        .with_estimator(EstimatorMode::Oracle);

    // (a) vary the edge-feature dimensionality (stand-in for |A|).
    let dims = [2.0, 4.0, 6.0, 8.0];
    let mut series = vec![Vec::new(); 4];
    for &d in &dims {
        let graph = generate_bipartite_graph(&GraphConfig {
            feature_dim: d as usize,
            seed: 42,
            ..GraphConfig::default()
        });
        let sub = GraphSubstrate::new(
            graph,
            t5_measures(),
            GraphSpaceConfig {
                n_edge_clusters: 5,
                ..GraphSpaceConfig::default()
            },
        );
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(modis_bench::run_variant(*v, &sub, &base).elapsed_seconds);
        }
    }
    print_series(
        "Figure 14(a) — T5 discovery time (s) vs |A|",
        "|A|",
        &names,
        &dims,
        &series,
    );

    // (b) vary the number of edge clusters (|adom|).
    let clusters = [3.0, 5.0, 8.0, 12.0];
    let mut series = vec![Vec::new(); 4];
    for &k in &clusters {
        let graph = generate_bipartite_graph(&GraphConfig {
            seed: 42,
            ..GraphConfig::default()
        });
        let sub = GraphSubstrate::new(
            graph,
            t5_measures(),
            GraphSpaceConfig {
                n_edge_clusters: k as usize,
                ..GraphSpaceConfig::default()
            },
        );
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(modis_bench::run_variant(*v, &sub, &base).elapsed_seconds);
        }
    }
    print_series(
        "Figure 14(b) — T5 discovery time (s) vs |adom| (edge clusters)",
        "|adom|",
        &names,
        &clusters,
        &series,
    );

    println!("\nExpected shape (paper): bi-directional variants (BiMODis, NOBiMODis, DivMODis)");
    println!("handle growing |A| and |adom| best; ApxMODis slows down the most.");
}
