//! Figure 8: impact of ε (a, c) and of the maximum path length maxl (b, d) on
//! the accuracy/F1 achieved by the MODis variants, for T1 and T2.

use modis_bench::{print_series, task_t1, task_t2, ModisVariant, Workload};
use modis_core::prelude::*;

fn best_primary(workload: &Workload, variant: ModisVariant, config: &ModisConfig) -> f64 {
    let substrate = workload.substrate();
    let res = modis_bench::run_variant(variant, &substrate, config);
    res.best_by_raw(0, true).map(|e| e.raw[0]).unwrap_or(0.0)
}

fn sweep(workload: &Workload, configs: &[(f64, ModisConfig)], title: &str, x_label: &str) {
    let names: Vec<&str> = ModisVariant::all().iter().map(|v| v.name()).collect();
    let xs: Vec<f64> = configs.iter().map(|(x, _)| *x).collect();
    let mut series: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
    for (_, cfg) in configs {
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(best_primary(workload, *v, cfg));
        }
    }
    print_series(title, x_label, &names, &xs, &series);
}

fn main() {
    let base =
        ModisConfig::default()
            .with_max_states(40)
            .with_estimator(EstimatorMode::Surrogate {
                warmup: 12,
                refresh: 10,
            });

    // (a) T1: vary ε with maxl = 6.
    let t1 = task_t1(42);
    let eps_configs: Vec<(f64, ModisConfig)> = [0.5, 0.4, 0.3, 0.2, 0.1]
        .iter()
        .map(|&e| (e, base.clone().with_epsilon(e).with_max_level(6)))
        .collect();
    sweep(
        &t1,
        &eps_configs,
        "Figure 8(a) — T1 accuracy vs ε",
        "epsilon",
    );

    // (b) T1: vary maxl with ε = 0.1.
    let maxl_configs: Vec<(f64, ModisConfig)> = (2..=6)
        .map(|l| (l as f64, base.clone().with_epsilon(0.1).with_max_level(l)))
        .collect();
    sweep(
        &t1,
        &maxl_configs,
        "Figure 8(b) — T1 accuracy vs maxl",
        "maxl",
    );

    // (c) T2: vary ε (smaller range, as in the paper).
    let t2 = task_t2(42);
    let eps2: Vec<(f64, ModisConfig)> = [0.1, 0.08, 0.05, 0.02]
        .iter()
        .map(|&e| (e, base.clone().with_epsilon(e).with_max_level(6)))
        .collect();
    sweep(&t2, &eps2, "Figure 8(c) — T2 F1 vs ε", "epsilon");

    // (d) T2: vary maxl.
    let maxl2: Vec<(f64, ModisConfig)> = (2..=6)
        .map(|l| (l as f64, base.clone().with_epsilon(0.1).with_max_level(l)))
        .collect();
    sweep(&t2, &maxl2, "Figure 8(d) — T2 F1 vs maxl", "maxl");

    println!("\nExpected shape (paper): smaller ε and larger maxl improve accuracy/F1 for all");
    println!("variants; BiMODis/NOBiMODis benefit the most, ApxMODis is the least sensitive.");
}
