//! Exp-4 / Figure 11: the two real-world case studies.
//!
//! Case 1 — "find data with models": improve an X-ray diffraction peak
//! classifier in accuracy, training cost and F1 using BiMODis, compared
//! against METAM optimising F1 only.
//!
//! Case 2 — "generating test data for model evaluation": generate test
//! datasets over which an image classifier satisfies "accuracy > 0.85" and
//! "training cost < 30 s".

use modis_bench::print_method_table;
use modis_core::prelude::*;
use modis_datagen::{image_feature_pool, xray_material_pool};

fn xray_task(pool_target: &str, key: &str, seed: u64) -> TaskSpec {
    TaskSpec {
        name: "case1-xray".into(),
        model: ModelKind::RandomForestClassifier,
        target: pool_target.into(),
        key: Some(key.into()),
        measures: MeasureSet::new(vec![
            MeasureSpec::maximise("p_Acc"),
            MeasureSpec::minimise("p_Train", 5.0),
            MeasureSpec::maximise("p_F1"),
        ]),
        metric_kinds: vec![MetricKind::Accuracy, MetricKind::TrainTime, MetricKind::F1],
        train_ratio: 0.7,
        seed,
    }
}

fn main() {
    // ---------------------------------------------------------------- Case 1
    let pool = xray_material_pool(42);
    let task = xray_task(&pool.target, &pool.join_key, 42);
    let space = TableSpaceConfig {
        join_key: pool.join_key.clone(),
        max_clusters_per_attr: 2,
        ..TableSpaceConfig::default()
    };
    let substrate = TableSubstrate::from_pool(&pool.tables, task.clone(), &space);
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(50)
        .with_max_level(5)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 12,
            refresh: 10,
        });

    let mut rows = Vec::new();
    let orig = original(pool.base(), &task);
    rows.push(modis_bench::MethodRow {
        method: orig.method,
        raw: orig.evaluation.raw,
        size: orig.evaluation.size,
        discovery_seconds: 0.0,
    });
    let metam_out = metam(pool.base(), &pool.tables, &task, &pool.join_key, 2);
    rows.push(modis_bench::MethodRow {
        method: "METAM(F1)".into(),
        raw: metam_out.evaluation.raw,
        size: metam_out.evaluation.size,
        discovery_seconds: 0.0,
    });
    let bi = bi_modis(&substrate, &config);
    println!("Case 1: BiMODis generated {} candidate datasets:", bi.len());
    for (i, e) in bi.entries.iter().enumerate().take(3) {
        println!(
            "  D{} — accuracy {:.3}, training cost {:.3}s, F1 {:.3}, size {:?}",
            i + 1,
            e.raw[0],
            e.raw[1],
            e.raw[2],
            e.size
        );
        rows.push(modis_bench::MethodRow {
            method: format!("BiMODis-D{}", i + 1),
            raw: e.raw.clone(),
            size: e.size,
            discovery_seconds: bi.elapsed_seconds,
        });
    }
    print_method_table(
        "Case 1 (Fig. 11 left) — X-ray peak classification",
        &task.measures.names(),
        &rows,
    );

    // ---------------------------------------------------------------- Case 2
    let pool = image_feature_pool(42, 12, 4);
    let task = TaskSpec {
        name: "case2-testgen".into(),
        model: ModelKind::LogisticClassifier,
        target: pool.target.clone(),
        key: Some(pool.join_key.clone()),
        measures: MeasureSet::new(vec![
            // "accuracy > 0.85" ⇒ normalised (1 − acc) must stay ≤ 0.15.
            MeasureSpec::maximise("p_Acc").with_bounds(0.001, 0.15),
            // "training cost < 30 s" ⇒ normalised against a 30 s budget.
            MeasureSpec::minimise("p_Train", 30.0).with_bounds(0.001, 1.0),
        ]),
        metric_kinds: vec![MetricKind::Accuracy, MetricKind::TrainTime],
        train_ratio: 0.7,
        seed: 42,
    };
    let space = TableSpaceConfig {
        join_key: pool.join_key.clone(),
        max_clusters_per_attr: 1,
        ..TableSpaceConfig::default()
    };
    let substrate = TableSubstrate::from_pool(&pool.tables, task.clone(), &space);
    let config = ModisConfig::default()
        .with_epsilon(0.1)
        .with_max_states(40)
        .with_max_level(4)
        .with_estimator(EstimatorMode::Surrogate {
            warmup: 12,
            refresh: 10,
        });
    let result = bi_modis(&substrate, &config);
    println!(
        "\nCase 2: BiMODis generated {} test datasets satisfying the constraints",
        result.len()
    );
    let rows: Vec<modis_bench::MethodRow> = result
        .entries
        .iter()
        .take(3)
        .enumerate()
        .map(|(i, e)| modis_bench::MethodRow {
            method: format!("TestSet-{}", i + 1),
            raw: e.raw.clone(),
            size: e.size,
            discovery_seconds: result.elapsed_seconds,
        })
        .collect();
    print_method_table(
        "Case 2 (Fig. 11 right) — test data generation (accuracy > 0.85, train < 30s)",
        &task.measures.names(),
        &rows,
    );

    println!("\nExpected shape (paper): BiMODis produces a handful of datasets that beat the");
    println!("original model on all three measures in Case 1, and 3 constraint-satisfying");
    println!("test datasets in Case 2 within seconds.");
}
