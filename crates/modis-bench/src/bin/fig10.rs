//! Figure 10: efficiency and scalability on T1.
//!
//! (a) discovery time vs ε;  (b) discovery time vs maxl;
//! (c) discovery time vs the number of attributes |A|;
//! (d) discovery time vs the largest active-domain size |adom| (controlled by
//!     the number of clusters per attribute).

use modis_bench::{print_series, task_t1, ModisVariant};
use modis_core::prelude::*;
use modis_datagen::tables::{generate_table_pool, TablePoolConfig};

fn time_of(substrate: &TableSubstrate, variant: ModisVariant, config: &ModisConfig) -> f64 {
    modis_bench::run_variant(variant, substrate, config).elapsed_seconds
}

fn main() {
    let names: Vec<&str> = ModisVariant::all().iter().map(|v| v.name()).collect();
    let base_cfg =
        ModisConfig::default()
            .with_max_states(40)
            .with_estimator(EstimatorMode::Surrogate {
                warmup: 10,
                refresh: 10,
            });
    let workload = task_t1(42);
    let substrate = workload.substrate();

    // (a) vary ε.
    let eps = [0.1, 0.2, 0.3, 0.4, 0.5];
    let mut series = vec![Vec::new(); 4];
    for &e in &eps {
        let cfg = base_cfg.clone().with_epsilon(e).with_max_level(6);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(time_of(&substrate, *v, &cfg));
        }
    }
    print_series(
        "Figure 10(a) — T1 discovery time (s) vs ε",
        "epsilon",
        &names,
        &eps,
        &series,
    );

    // (b) vary maxl.
    let maxls = [2.0, 3.0, 4.0, 5.0, 6.0];
    let mut series = vec![Vec::new(); 4];
    for &l in &maxls {
        let cfg = base_cfg
            .clone()
            .with_epsilon(0.2)
            .with_max_level(l as usize);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(time_of(&substrate, *v, &cfg));
        }
    }
    print_series(
        "Figure 10(b) — T1 discovery time (s) vs maxl",
        "maxl",
        &names,
        &maxls,
        &series,
    );

    // (c) vary |A| (number of attributes in the pool).
    let attr_counts = [4.0, 6.0, 8.0, 10.0];
    let mut series = vec![Vec::new(); 4];
    for &a in &attr_counts {
        let pool = generate_table_pool(&TablePoolConfig {
            n_rows: 250,
            n_informative: (a as usize) / 2,
            n_redundant: 1,
            n_noise: (a as usize) - (a as usize) / 2 - 1,
            n_tables: 4,
            seed: 42,
            ..Default::default()
        });
        let w = task_t1(42);
        let sub = TableSubstrate::from_pool(&pool.tables, w.task.clone(), &w.space);
        let cfg = base_cfg.clone().with_epsilon(0.2).with_max_level(4);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(time_of(&sub, *v, &cfg));
        }
    }
    print_series(
        "Figure 10(c) — T1 discovery time (s) vs |A|",
        "|A|",
        &names,
        &attr_counts,
        &series,
    );

    // (d) vary |adom| via clusters per attribute.
    let adoms = [1.0, 2.0, 3.0, 4.0];
    let mut series = vec![Vec::new(); 4];
    for &k in &adoms {
        let w = task_t1(42);
        let space = TableSpaceConfig {
            max_clusters_per_attr: k as usize,
            ..w.space.clone()
        };
        let sub = TableSubstrate::from_pool(&w.pool.tables, w.task.clone(), &space);
        let cfg = base_cfg.clone().with_epsilon(0.2).with_max_level(4);
        for (i, v) in ModisVariant::all().iter().enumerate() {
            series[i].push(time_of(&sub, *v, &cfg));
        }
    }
    print_series(
        "Figure 10(d) — T1 discovery time (s) vs |adom| (clusters per attribute)",
        "|adom|",
        &names,
        &adoms,
        &series,
    );

    println!("\nExpected shape (paper): time decreases as ε grows (more pruning) and grows");
    println!("with maxl, |A| and |adom|; BiMODis scales best, ApxMODis is the slowest.");
}
