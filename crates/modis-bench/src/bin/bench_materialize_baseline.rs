//! Save-baseline runner for the materialisation pipeline: times the seed's
//! clone-and-filter materialisation against the columnar mask-intersection
//! path on the default workload and writes the numbers to
//! `BENCH_materialize.json`, establishing the perf trajectory future PRs
//! compare against.
//!
//! Usage: `bench_materialize_baseline [--rows N] [--iters N] [--out PATH]
//! [--quick]` — `--quick` shrinks the workload to one short iteration for
//! the CI smoke step (compiles + runs, no timing assertions).

use std::time::Instant;

use modis_bench::{materialize_state, materialize_substrate};
use modis_core::prelude::*;

/// Median wall-clock microseconds of `iters` runs of `f`.
fn median_micros<O, F: FnMut() -> O>(iters: usize, mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..iters.max(1))
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let quick = args.iter().any(|a| a == "--quick");
    let rows: usize = flag_value("--rows")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 500 } else { 20_000 });
    let iters: usize = flag_value("--iters")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1 } else { 30 });
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_materialize.json".into());

    eprintln!("building synthetic substrate ({rows} rows)…");
    let substrate = materialize_substrate(rows, 7);
    let state = materialize_state(&substrate);
    let task = substrate.task().clone();
    let units = substrate.num_units();
    let cleared = state.count_zeros();

    // Sanity: the columnar path must reproduce the clone-and-filter output.
    let reference = substrate.materialize_baseline(&state);
    let columnar = substrate.materialize(&state);
    assert_eq!(
        reference.rows(),
        columnar.rows(),
        "columnar output diverged"
    );

    let baseline_us = median_micros(iters, || substrate.materialize_baseline(&state));
    let view_us = median_micros(iters.max(10), || substrate.materialize_view(&state));
    let to_dataset_us = median_micros(iters, || substrate.materialize(&state));
    let eval_iters = if quick { 1 } else { 5 };
    let eval_baseline_us = median_micros(eval_iters, || {
        evaluate_dataset(&task, &substrate.materialize_baseline(&state))
    });
    let eval_view_us = median_micros(eval_iters, || {
        evaluate_dataset_view(&task, &substrate.materialize_view(&state))
    });

    let speedup_view = baseline_us / view_us.max(1e-3);
    let speedup_owned = baseline_us / to_dataset_us.max(1e-3);
    let speedup_eval = eval_baseline_us / eval_view_us.max(1e-3);

    let json = format!(
        "{{\n  \"bench\": \"materialize\",\n  \"workload\": {{ \"rows\": {rows}, \"units\": {units}, \"cleared_units\": {cleared}, \"iters\": {iters} }},\n  \"materialize_only_us\": {{\n    \"clone_and_filter\": {baseline_us:.3},\n    \"columnar_view\": {view_us:.3},\n    \"columnar_to_dataset\": {to_dataset_us:.3}\n  }},\n  \"materialize_and_oracle_evaluate_us\": {{\n    \"clone_and_filter\": {eval_baseline_us:.3},\n    \"columnar_view\": {eval_view_us:.3}\n  }},\n  \"speedup\": {{\n    \"materialize_view_vs_clone\": {speedup_view:.2},\n    \"materialize_owned_vs_clone\": {speedup_owned:.2},\n    \"evaluate_view_vs_clone\": {speedup_eval:.2}\n  }}\n}}\n"
    );
    println!("{json}");
    if !quick {
        std::fs::write(&out, &json).expect("write baseline json");
        eprintln!("baseline written to {out}");
    }
    assert!(
        quick || speedup_view >= 5.0,
        "materialise-only speedup {speedup_view:.2}x is below the 5x acceptance bar"
    );
}
