//! Synthetic skyline frontiers for the dominance kernel benchmarks and the
//! differential test harness.
//!
//! The shapes follow the classic skyline benchmarking families
//! (Börzsönyi-style independent / correlated / anti-correlated) plus the
//! two adversarial families the MODis kernels must survive byte-identically:
//! duplicate-heavy pools and NaN/∞-laced vectors. All generators are
//! deterministic in `(n, dims, seed)` via a local xorshift so benches,
//! tests and CI agree on the exact inputs.

/// Frontier family to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontier {
    /// Independent uniform coordinates in `(0, 1)`.
    Uniform,
    /// Coordinates clustered around a shared base value — tiny skylines.
    Correlated,
    /// Points near the hyperplane `Σx = d/2` — wide skylines, the
    /// worst case for pairwise filtering.
    AntiCorrelated,
    /// Uniform points drawn from a small pool, so ~90% are exact
    /// duplicates exercising the first-occurrence tie-break.
    DuplicateHeavy,
    /// Uniform points with a sprinkling of NaN and ±∞ coordinates.
    NanLaced,
}

impl Frontier {
    /// Stable lowercase name used in benchmark JSON and labels.
    pub fn name(self) -> &'static str {
        match self {
            Frontier::Uniform => "uniform",
            Frontier::Correlated => "correlated",
            Frontier::AntiCorrelated => "anti_correlated",
            Frontier::DuplicateHeavy => "duplicate_heavy",
            Frontier::NanLaced => "nan_laced",
        }
    }

    /// All families, for exhaustive differential sweeps.
    pub fn all() -> [Frontier; 5] {
        [
            Frontier::Uniform,
            Frontier::Correlated,
            Frontier::AntiCorrelated,
            Frontier::DuplicateHeavy,
            Frontier::NanLaced,
        ]
    }
}

struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates `n` performance vectors of `dims` measures from the given
/// frontier family, deterministically in `seed`.
pub fn frontier_points(n: usize, dims: usize, frontier: Frontier, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = XorShift::new(seed ^ (n as u64) << 20 ^ (dims as u64) << 8);
    let uniform = |rng: &mut XorShift| (0..dims).map(|_| rng.next_f64()).collect::<Vec<f64>>();
    match frontier {
        Frontier::Uniform => (0..n).map(|_| uniform(&mut rng)).collect(),
        Frontier::Correlated => (0..n)
            .map(|_| {
                let base = rng.next_f64();
                (0..dims)
                    .map(|_| (base + 0.05 * (rng.next_f64() - 0.5)).clamp(0.0, 1.0))
                    .collect()
            })
            .collect(),
        Frontier::AntiCorrelated => (0..n)
            .map(|_| {
                // Project a uniform draw onto the Σx = d/2 hyperplane, then
                // jitter: trade-off-shaped points with very wide skylines.
                let raw: Vec<f64> = (0..dims).map(|_| rng.next_f64() + 1e-3).collect();
                let sum: f64 = raw.iter().sum();
                let scale = dims as f64 * 0.5 / sum;
                raw.iter()
                    .map(|v| (v * scale + 0.02 * (rng.next_f64() - 0.5)).clamp(0.0, 1.0))
                    .collect()
            })
            .collect(),
        Frontier::DuplicateHeavy => {
            let pool_size = (n / 10).max(1);
            let pool: Vec<Vec<f64>> = (0..pool_size).map(|_| uniform(&mut rng)).collect();
            (0..n)
                .map(|_| pool[(rng.next_u64() % pool_size as u64) as usize].clone())
                .collect()
        }
        Frontier::NanLaced => (0..n)
            .map(|_| {
                (0..dims)
                    .map(|_| match rng.next_u64() % 40 {
                        0 => f64::NAN,
                        1 => f64::INFINITY,
                        2 => f64::NEG_INFINITY,
                        _ => rng.next_f64(),
                    })
                    .collect()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic_and_shaped() {
        for f in Frontier::all() {
            let a = frontier_points(200, 4, f, 7);
            let b = frontier_points(200, 4, f, 7);
            assert_eq!(a.len(), 200);
            assert!(a.iter().all(|p| p.len() == 4));
            // Bit-identical across calls (NaN-laced included).
            let bits = |pts: &[Vec<f64>]| -> Vec<u64> {
                pts.iter().flatten().map(|v| v.to_bits()).collect()
            };
            assert_eq!(bits(&a), bits(&b));
        }
    }

    #[test]
    fn anti_correlated_is_wider_than_correlated() {
        use modis_core::dominance::skyline;
        let anti = skyline(&frontier_points(800, 4, Frontier::AntiCorrelated, 3)).len();
        let corr = skyline(&frontier_points(800, 4, Frontier::Correlated, 3)).len();
        assert!(
            anti > corr * 4,
            "anti-correlated skyline ({anti}) should dwarf correlated ({corr})"
        );
    }

    #[test]
    fn duplicate_heavy_actually_duplicates() {
        let pts = frontier_points(500, 3, Frontier::DuplicateHeavy, 5);
        let distinct: std::collections::HashSet<Vec<u64>> = pts
            .iter()
            .map(|p| p.iter().map(|v| v.to_bits()).collect())
            .collect();
        assert!(distinct.len() <= 50);
    }
}
