//! A standalone shard daemon process for cluster tests and demos.
//!
//! Registers the T3 cluster suite (`modis_bench::register_t3_cluster`) for
//! the given pool seeds, optionally warm-starts from a snapshot, binds a
//! reactor daemon on an ephemeral port, prints `ADDR <socketaddr>` on
//! stdout, and serves until its stdin reaches EOF (or the process is
//! killed — the fault the cluster integration tests inject).
//!
//! ```text
//! modis_shard --seeds 5,9 [--max-states 14] [--snapshot /path/to.snap]
//! ```
//!
//! Every shard registers the *full* scenario set: placement is the
//! router's job (rendezvous over namespaces), and registration is
//! idempotent warmth-wise — it costs a substrate build, not a search.
//!
//! Each shard serves its own `METRICS` / `TRACE DUMP` exposition (see
//! `docs/OBSERVABILITY.md`); a fronting router merges those into one
//! cluster-wide scrape with `shard="…"` labels.
//!
//! A shard needs no replication configuration of its own: the router's
//! K-way placement drives everything through the ordinary wire protocol.
//! `PING` answers the router's heartbeat probes, `EXPORT` serializes
//! namespaces into a wire shipment on a primary, and `SHIP` installs a
//! shipment pushed to a replica — so any shard can be promoted to serve a
//! dead primary's namespaces from its warm replica cache.

use std::io::Read;
use std::sync::Arc;

use modis_bench::register_t3_cluster;
use modis_service::{Daemon, Service, ServiceConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let seeds: Vec<u64> = flag_value("--seeds")
        .unwrap_or_else(|| "5,9".to_string())
        .split(',')
        .map(|s| s.trim().parse().expect("--seeds takes u64s"))
        .collect();
    let max_states: usize = flag_value("--max-states")
        .and_then(|v| v.parse().ok())
        .unwrap_or(14);

    let service = match flag_value("--snapshot") {
        Some(path) => Arc::new(
            Service::from_snapshot(ServiceConfig::default(), std::path::Path::new(&path))
                .expect("warm-start from --snapshot"),
        ),
        None => Arc::new(Service::new(ServiceConfig::default())),
    };
    register_t3_cluster(&service, &seeds, max_states);

    // Deliberately no `spawn_worker`: the daemon's executor thread is the
    // single drain path (`RUN`-driven). A second concurrent drain loop
    // could run two scenarios of one namespace at once and double-train a
    // shared state — harmless for correctness (last write wins), but the
    // wall-clock `p_Train` metric would then differ between the two
    // contexts, breaking the byte-identity the cluster tests assert.
    let daemon = Daemon::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind shard daemon");
    // The parent parses this line to learn the ephemeral port.
    println!("ADDR {}", daemon.addr());

    // Serve until the parent closes our stdin (or kills us outright).
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    daemon.stop();
}
