//! Umbrella crate for the MODis workspace: re-exports every subsystem crate
//! so the root `tests/` and `examples/` can exercise the full stack, and so
//! downstream users can depend on a single crate.
//!
//! See the individual crates for the real functionality:
//! [`modis_data`], [`modis_ml`], [`modis_core`], [`modis_datagen`],
//! [`modis_engine`], [`modis_service`], [`modis_bench`].

#![warn(missing_docs)]

pub use modis_bench;
pub use modis_core;
pub use modis_data;
pub use modis_datagen;
pub use modis_engine;
pub use modis_ml;
pub use modis_service;

/// One-stop re-exports across the whole stack: the core prelude (configs,
/// algorithms, substrates, measures) plus the engine's scenario/suite types
/// and the service layer's client API.
pub mod prelude {
    pub use modis_core::prelude::*;
    pub use modis_data::{Dataset, StateBitmap};
    pub use modis_engine::{
        Algorithm, BatchValuation, CacheStats, Engine, EngineConfig, Scenario, ScenarioOutcome,
        SharedEvalCache, SuiteResult,
    };
    pub use modis_service::{
        Daemon, JobState, Service, ServiceConfig, ServiceError, Ticket, ValuationRequest,
    };
}
