//! Umbrella crate for the MODis workspace: re-exports every subsystem crate
//! so the root `tests/` and `examples/` can exercise the full stack, and so
//! downstream users can depend on a single crate.
//!
//! See the individual crates for the real functionality:
//! [`modis_data`], [`modis_ml`], [`modis_core`], [`modis_datagen`],
//! [`modis_engine`], [`modis_bench`].

#![warn(missing_docs)]

pub use modis_bench;
pub use modis_core;
pub use modis_data;
pub use modis_datagen;
pub use modis_engine;
pub use modis_ml;
