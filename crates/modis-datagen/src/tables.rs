//! Synthetic joinable-table pools simulating the paper's Kaggle / OpenData /
//! HF workloads (tasks T1–T4).
//!
//! The real data pools are not redistributable, so each task is replaced by a
//! generator that preserves the structural properties MODis exploits:
//! a base table with the prediction target and a weak signal, several
//! joinable tables carrying *informative*, *redundant* and *noisy*
//! attributes, skewed active domains, and missing values. Augmenting the
//! informative attributes improves accuracy; dropping noisy rows/columns
//! lowers training cost — the same qualitative trade-off as in §6.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use modis_data::{Attribute, Dataset, Schema, Value};

/// Parameters of a synthetic table-pool workload.
#[derive(Debug, Clone)]
pub struct TablePoolConfig {
    /// Number of entities (rows of the base table).
    pub n_rows: usize,
    /// Number of informative numeric attributes spread across source tables.
    pub n_informative: usize,
    /// Number of redundant attributes (noisy copies of informative ones).
    pub n_redundant: usize,
    /// Number of pure-noise attributes.
    pub n_noise: usize,
    /// Number of source tables the attributes are spread over.
    pub n_tables: usize,
    /// Fraction of cells that are missing in non-base tables.
    pub missing_rate: f64,
    /// Noise standard deviation on the target signal.
    pub target_noise: f64,
    /// Number of classes (0 = regression target).
    pub n_classes: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TablePoolConfig {
    fn default() -> Self {
        TablePoolConfig {
            n_rows: 400,
            n_informative: 4,
            n_redundant: 2,
            n_noise: 4,
            n_tables: 4,
            missing_rate: 0.05,
            target_noise: 0.3,
            n_classes: 0,
            seed: 7,
        }
    }
}

/// A generated workload: the table pool, the base table and ground truth.
#[derive(Debug, Clone)]
pub struct TablePool {
    /// All source tables (the base table is `tables[0]`).
    pub tables: Vec<Dataset>,
    /// Names of the informative attributes.
    pub informative: Vec<String>,
    /// Names of the noise attributes.
    pub noise: Vec<String>,
    /// Name of the join key.
    pub join_key: String,
    /// Name of the target attribute.
    pub target: String,
}

impl TablePool {
    /// The base table (weak features + target).
    pub fn base(&self) -> &Dataset {
        &self.tables[0]
    }
}

/// Generates a joinable table pool.
pub fn generate_table_pool(config: &TablePoolConfig) -> TablePool {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n_rows;

    // Latent informative signals.
    let informative: Vec<Vec<f64>> = (0..config.n_informative)
        .map(|_| (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let weights: Vec<f64> = (0..config.n_informative)
        .map(|_| rng.gen_range(0.5..2.0))
        .collect();

    // Target = weighted sum of informative signals (+ noise), optionally
    // bucketed into classes.
    let raw_target: Vec<f64> = (0..n)
        .map(|i| {
            let s: f64 = informative
                .iter()
                .zip(weights.iter())
                .map(|(col, w)| w * col[i])
                .sum();
            s + rng.gen_range(-config.target_noise..config.target_noise)
        })
        .collect();
    let target_values: Vec<Value> = if config.n_classes >= 2 {
        // Quantile bucketing into classes.
        let mut sorted = raw_target.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let thresholds: Vec<f64> = (1..config.n_classes)
            .map(|c| sorted[(c * n / config.n_classes).min(n - 1)])
            .collect();
        raw_target
            .iter()
            .map(|&v| {
                let class = thresholds.iter().filter(|&&t| v > t).count();
                Value::Str(format!("class_{class}"))
            })
            .collect()
    } else {
        raw_target.iter().map(|&v| Value::Float(v)).collect()
    };

    // Attribute descriptions: (name, column values, informative?).
    let mut attributes: Vec<(String, Vec<f64>, bool)> = Vec::new();
    for (k, col) in informative.iter().enumerate() {
        attributes.push((format!("info_{k}"), col.clone(), true));
    }
    for k in 0..config.n_redundant {
        let src = &informative[k % config.n_informative.max(1)];
        let col: Vec<f64> = src.iter().map(|&v| v + rng.gen_range(-0.2..0.2)).collect();
        attributes.push((format!("redundant_{k}"), col, false));
    }
    for k in 0..config.n_noise {
        // Skewed noise: a few heavy-hitter values plus uniform noise, giving
        // skewed active domains as in real data lakes.
        let col: Vec<f64> = (0..n)
            .map(|_| {
                if rng.gen_bool(0.6) {
                    (rng.gen_range(0..3) * 10) as f64
                } else {
                    rng.gen_range(-5.0..5.0)
                }
            })
            .collect();
        attributes.push((format!("noise_{k}"), col, false));
    }

    // Base table: key, one weak feature (a noisy copy of info_0), target.
    let weak: Vec<f64> = informative
        .first()
        .map(|c| c.iter().map(|&v| v + rng.gen_range(-1.0..1.0)).collect())
        .unwrap_or_else(|| vec![0.0; n]);
    let base_schema = Schema::from_attributes(vec![
        Attribute::key("id"),
        Attribute::feature("weak_signal"),
        Attribute::target("target"),
    ]);
    let base_rows: Vec<Vec<Value>> = (0..n)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Float(weak[i]),
                target_values[i].clone(),
            ]
        })
        .collect();
    let base = Dataset::from_rows("base", base_schema, base_rows).expect("base rows");

    // Spread the remaining attributes over the other tables.
    let n_other = config.n_tables.saturating_sub(1).max(1);
    let mut tables = vec![base];
    for t in 0..n_other {
        let cols: Vec<&(String, Vec<f64>, bool)> =
            attributes.iter().skip(t).step_by(n_other).collect();
        if cols.is_empty() {
            continue;
        }
        let mut schema_attrs = vec![Attribute::key("id")];
        schema_attrs.extend(
            cols.iter()
                .map(|(name, _, _)| Attribute::feature(name.clone())),
        );
        let schema = Schema::from_attributes(schema_attrs);
        let rows: Vec<Vec<Value>> = (0..n)
            .map(|i| {
                let mut row = vec![Value::Int(i as i64)];
                for (_, col, _) in &cols {
                    if rng.gen_bool(config.missing_rate) {
                        row.push(Value::Null);
                    } else {
                        row.push(Value::Float(col[i]));
                    }
                }
                row
            })
            .collect();
        tables.push(Dataset::from_rows(format!("source_{t}"), schema, rows).expect("source rows"));
    }

    TablePool {
        tables,
        informative: attributes
            .iter()
            .filter(|(_, _, inf)| *inf)
            .map(|(n, _, _)| n.clone())
            .collect(),
        noise: attributes
            .iter()
            .filter(|(n, _, inf)| !inf && n.starts_with("noise"))
            .map(|(n, _, _)| n.clone())
            .collect(),
        join_key: "id".into(),
        target: "target".into(),
    }
}

/// T1 (GBmovie): movie-gross style regression pool.
pub fn t1_movie(seed: u64) -> TablePool {
    generate_table_pool(&TablePoolConfig {
        n_rows: 320,
        n_informative: 4,
        n_redundant: 2,
        n_noise: 4,
        n_tables: 4,
        n_classes: 0,
        seed,
        ..Default::default()
    })
}

/// T2 (RFhouse): house-price classification pool.
pub fn t2_house(seed: u64) -> TablePool {
    generate_table_pool(&TablePoolConfig {
        n_rows: 300,
        n_informative: 5,
        n_redundant: 3,
        n_noise: 5,
        n_tables: 5,
        n_classes: 3,
        seed,
        ..Default::default()
    })
}

/// T3 (LRavocado): avocado-price regression pool.
pub fn t3_avocado(seed: u64) -> TablePool {
    generate_table_pool(&TablePoolConfig {
        n_rows: 400,
        n_informative: 3,
        n_redundant: 2,
        n_noise: 5,
        n_tables: 4,
        n_classes: 0,
        target_noise: 0.2,
        seed,
        ..Default::default()
    })
}

/// T4 (LGCmental): mental-health status classification pool.
pub fn t4_mental(seed: u64) -> TablePool {
    generate_table_pool(&TablePoolConfig {
        n_rows: 350,
        n_informative: 4,
        n_redundant: 2,
        n_noise: 6,
        n_tables: 5,
        n_classes: 2,
        seed,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_data::universal_table;

    #[test]
    fn pool_structure_matches_config() {
        let cfg = TablePoolConfig {
            n_tables: 4,
            ..Default::default()
        };
        let pool = generate_table_pool(&cfg);
        assert_eq!(pool.tables.len(), 4);
        assert_eq!(pool.base().num_rows(), cfg.n_rows);
        assert_eq!(pool.join_key, "id");
        // Every non-base table is joinable on the key.
        for t in &pool.tables {
            assert!(t.schema().contains("id"));
        }
        // All informative/noise attributes appear somewhere in the pool.
        for name in pool.informative.iter().chain(pool.noise.iter()) {
            assert!(
                pool.tables.iter().any(|t| t.schema().contains(name)),
                "attribute {name} missing from pool"
            );
        }
    }

    #[test]
    fn universal_table_covers_all_attributes() {
        let pool = t1_movie(3);
        let u = universal_table(&pool.tables, &pool.join_key).unwrap();
        let expected = 3 + pool.informative.len() + pool.noise.len() + 2; // base cols + attrs + redundant
        assert!(u.num_columns() >= expected - 2);
        assert!(u.num_rows() >= pool.base().num_rows());
    }

    #[test]
    fn classification_pools_have_string_classes() {
        let pool = t2_house(5);
        let target_col = pool.base().schema().position("target").unwrap();
        let adom = pool.base().active_domain(target_col);
        assert_eq!(adom.len(), 3);
        let t4 = t4_mental(5);
        let adom4 = t4
            .base()
            .active_domain(t4.base().schema().position("target").unwrap());
        assert_eq!(adom4.len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = t3_avocado(9);
        let b = t3_avocado(9);
        assert_eq!(a.base().rows(), b.base().rows());
        let c = t3_avocado(10);
        assert_ne!(a.base().rows(), c.base().rows());
    }

    #[test]
    fn missing_rate_produces_nulls() {
        let cfg = TablePoolConfig {
            missing_rate: 0.3,
            ..Default::default()
        };
        let pool = generate_table_pool(&cfg);
        let with_nulls = pool.tables[1].missing_ratio();
        assert!(with_nulls > 0.1, "missing ratio {with_nulls}");
    }
}
