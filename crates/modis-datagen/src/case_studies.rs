//! Synthetic pools for the two real-world case studies of Exp-4 (Fig. 11).
//!
//! * Case 1 — "find data with models": a crowd-sourced X-ray diffraction
//!   platform hosts datasets of 2-D diffraction features; a random-forest
//!   peak classifier should be improved in accuracy, training cost and F1.
//! * Case 2 — "generating test data for model evaluation": a pool of image
//!   feature tables from which test datasets satisfying accuracy / training
//!   cost constraints must be generated.
//!
//! Both generators reuse the table-pool machinery with domain-flavoured
//! attribute names so the case-study binaries read like the paper's text.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use modis_data::{Attribute, Dataset, Schema, Value};

use crate::tables::{generate_table_pool, TablePool, TablePoolConfig};

/// Case 1: X-ray diffraction peak-classification pool.
///
/// The base table holds detector readouts with a weak intensity feature and a
/// binary `peak` label; source tables contribute 2θ-angle statistics,
/// crystallography descriptors and instrument noise columns.
pub fn xray_material_pool(seed: u64) -> TablePool {
    let mut pool = generate_table_pool(&TablePoolConfig {
        n_rows: 300,
        n_informative: 4,
        n_redundant: 2,
        n_noise: 4,
        n_tables: 4,
        n_classes: 2,
        target_noise: 0.25,
        seed,
        ..Default::default()
    });
    // Re-label attributes with domain names so reports are readable.
    let renames = [
        ("info_0", "two_theta_mean"),
        ("info_1", "intensity_ratio"),
        ("info_2", "lattice_spacing"),
        ("info_3", "fwhm"),
        ("redundant_0", "two_theta_median"),
        ("redundant_1", "intensity_ratio_raw"),
        ("noise_0", "detector_temp"),
        ("noise_1", "exposure_noise"),
        ("noise_2", "background_drift"),
        ("noise_3", "gantry_angle"),
    ];
    pool.tables = pool
        .tables
        .iter()
        .map(|t| rename_columns(t, &renames))
        .collect();
    pool.informative = pool
        .informative
        .iter()
        .map(|n| rename_of(n, &renames))
        .collect();
    pool.noise = pool.noise.iter().map(|n| rename_of(n, &renames)).collect();
    pool
}

/// Case 2: pool of image-feature tables for test-data generation.
///
/// Emulates "75 tables, 768 columns" at reduced scale: many small tables each
/// carrying a handful of embedding dimensions, only a few of which carry the
/// class signal.
pub fn image_feature_pool(seed: u64, n_tables: usize, dims_per_table: usize) -> TablePool {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_rows = 240;
    let n_classes = 3;

    // Latent class assignment drives a subset of "signal" dimensions.
    let classes: Vec<usize> = (0..n_rows).map(|_| rng.gen_range(0..n_classes)).collect();

    let base_schema = Schema::from_attributes(vec![
        Attribute::key("image_id"),
        Attribute::feature("brightness"),
        Attribute::target("label"),
    ]);
    let base_rows: Vec<Vec<Value>> = (0..n_rows)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Float(rng.gen_range(0.0..1.0)),
                Value::Str(format!("cat_{}", classes[i])),
            ]
        })
        .collect();
    let base = Dataset::from_rows("images", base_schema, base_rows).expect("base");

    let mut tables = vec![base];
    let mut informative = Vec::new();
    let mut noise = Vec::new();
    for t in 0..n_tables.max(1) {
        let mut attrs = vec![Attribute::key("image_id")];
        let signal_table = t % 3 == 0; // every third table carries signal
        let names: Vec<String> = (0..dims_per_table)
            .map(|d| format!("feat_{t}_{d}"))
            .collect();
        for n in &names {
            attrs.push(Attribute::feature(n.clone()));
            if signal_table {
                informative.push(n.clone());
            } else {
                noise.push(n.clone());
            }
        }
        let rows: Vec<Vec<Value>> = (0..n_rows)
            .map(|i| {
                let mut row = vec![Value::Int(i as i64)];
                for d in 0..dims_per_table {
                    let v = if signal_table {
                        classes[i] as f64 + 0.2 * rng.gen_range(-1.0..1.0) + d as f64 * 0.01
                    } else {
                        rng.gen_range(-1.0..1.0)
                    };
                    row.push(Value::Float(v));
                }
                row
            })
            .collect();
        tables.push(
            Dataset::from_rows(
                format!("feat_table_{t}"),
                Schema::from_attributes(attrs),
                rows,
            )
            .expect("feature table"),
        );
    }

    TablePool {
        tables,
        informative,
        noise,
        join_key: "image_id".into(),
        target: "label".into(),
    }
}

fn rename_of(name: &str, renames: &[(&str, &str)]) -> String {
    renames
        .iter()
        .find(|(from, _)| *from == name)
        .map(|(_, to)| to.to_string())
        .unwrap_or_else(|| name.to_string())
}

fn rename_columns(data: &Dataset, renames: &[(&str, &str)]) -> Dataset {
    let attrs: Vec<Attribute> = data
        .schema()
        .attributes()
        .iter()
        .map(|a| Attribute {
            name: rename_of(&a.name, renames),
            role: a.role,
        })
        .collect();
    Dataset::from_rows(
        data.name.clone(),
        Schema::from_attributes(attrs),
        data.rows().to_vec(),
    )
    .expect("renamed dataset")
}

#[cfg(test)]
mod tests {
    use super::*;
    use modis_data::universal_table;

    #[test]
    fn xray_pool_uses_domain_names() {
        let pool = xray_material_pool(3);
        let u = universal_table(&pool.tables, &pool.join_key).unwrap();
        assert!(u.schema().contains("two_theta_mean"));
        assert!(u.schema().contains("detector_temp"));
        assert!(!u.schema().names().iter().any(|n| n.starts_with("info_")));
        // Binary peak classification target.
        let adom = pool
            .base()
            .active_domain(pool.base().schema().position("target").unwrap());
        assert_eq!(adom.len(), 2);
    }

    #[test]
    fn image_pool_scales_with_parameters() {
        let pool = image_feature_pool(7, 9, 4);
        assert_eq!(pool.tables.len(), 10);
        assert_eq!(pool.join_key, "image_id");
        assert!(!pool.informative.is_empty());
        assert!(!pool.noise.is_empty());
        let u = universal_table(&pool.tables, &pool.join_key).unwrap();
        assert!(u.num_columns() >= 9 * 4);
    }

    #[test]
    fn image_pool_signal_tables_correlate_with_label() {
        let pool = image_feature_pool(11, 6, 3);
        // A signal feature should have at least 3 distinct rounded values
        // aligned with the 3 classes; a noise feature should not separate.
        let u = universal_table(&pool.tables, &pool.join_key).unwrap();
        let sig = &pool.informative[0];
        let col = u.column_by_name(sig).unwrap();
        let distinct_rounded: std::collections::BTreeSet<i64> = col
            .iter()
            .filter_map(|v| v.as_f64())
            .map(|v| v.round() as i64)
            .collect();
        assert!(distinct_rounded.len() >= 3);
    }
}
