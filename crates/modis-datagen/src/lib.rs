//! # modis-datagen
//!
//! Synthetic workload generators reproducing the structure of the MODis
//! evaluation datasets (§6, Table 2):
//!
//! * [`tables`] — joinable table pools standing in for the Kaggle / OpenData /
//!   HF collections (tasks T1–T4), with informative, redundant and noisy
//!   attributes, skewed active domains and missing values;
//! * [`graphs`] — block-structured bipartite user–item interaction graphs for
//!   the link-regression task T5;
//! * [`case_studies`] — the materials-science X-ray pool and the image-feature
//!   pool of the two case studies (Fig. 11).
//!
//! The substitution rationale is documented in `DESIGN.md`: the real data
//! pools are not redistributable, so each generator preserves the search-space
//! structure (universal schema size, literal lattice, quality/cost trade-off)
//! rather than the absolute metric values.

#![warn(missing_docs)]

pub mod case_studies;
pub mod graphs;
pub mod tables;

pub use case_studies::{image_feature_pool, xray_material_pool};
pub use graphs::{generate_bipartite_graph, t5_recommendation, GraphConfig};
pub use tables::{
    generate_table_pool, t1_movie, t2_house, t3_avocado, t4_mental, TablePool, TablePoolConfig,
};
