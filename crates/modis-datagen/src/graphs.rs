//! Synthetic bipartite interaction graphs for task T5 (link regression /
//! recommendation with a LightGCN-style model).
//!
//! The generator plants a block (community) structure: users and items are
//! split into groups, within-group interactions are frequent and informative,
//! cross-group interactions are rare noise. Reducing the noisy edge clusters
//! improves ranking quality — the behaviour the paper's Table 5 and Fig. 13/14
//! rely on.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use modis_ml::graph::BipartiteGraph;

/// Parameters of the synthetic interaction graph.
#[derive(Debug, Clone)]
pub struct GraphConfig {
    /// Number of user nodes.
    pub n_users: usize,
    /// Number of item nodes.
    pub n_items: usize,
    /// Number of user/item communities.
    pub n_groups: usize,
    /// Average in-group interactions per user.
    pub interactions_per_user: usize,
    /// Fraction of additional cross-group (noise) edges.
    pub noise_fraction: f64,
    /// Edge feature dimensionality.
    pub feature_dim: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GraphConfig {
    fn default() -> Self {
        GraphConfig {
            n_users: 60,
            n_items: 60,
            n_groups: 4,
            interactions_per_user: 8,
            noise_fraction: 0.3,
            feature_dim: 4,
            seed: 23,
        }
    }
}

/// Generates a block-structured bipartite interaction graph.
pub fn generate_bipartite_graph(config: &GraphConfig) -> BipartiteGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut g = BipartiteGraph::new(config.n_users, config.n_items);
    let groups = config.n_groups.max(1);
    let users_per_group = (config.n_users / groups).max(1);
    let items_per_group = (config.n_items / groups).max(1);

    let features = |rng: &mut StdRng, group: usize, noisy: bool, dim: usize| -> Vec<f64> {
        (0..dim)
            .map(|d| {
                let base = if noisy {
                    50.0
                } else {
                    group as f64 * 10.0 + d as f64
                };
                base + rng.gen_range(-1.0..1.0)
            })
            .collect()
    };

    // In-group edges.
    for u in 0..config.n_users {
        let group = (u / users_per_group).min(groups - 1);
        let item_lo = group * items_per_group;
        let item_hi = ((group + 1) * items_per_group).min(config.n_items);
        for _ in 0..config.interactions_per_user {
            let item = rng.gen_range(item_lo..item_hi.max(item_lo + 1));
            let f = features(&mut rng, group, false, config.feature_dim);
            g.add_edge(u, item.min(config.n_items - 1), f);
        }
    }

    // Cross-group noise edges.
    let n_noise = ((g.num_edges() as f64) * config.noise_fraction) as usize;
    for _ in 0..n_noise {
        let u = rng.gen_range(0..config.n_users);
        let group = (u / users_per_group).min(groups - 1);
        // Pick an item from a different group.
        let other = (group + 1 + rng.gen_range(0..groups.max(2) - 1)) % groups;
        let item_lo = other * items_per_group;
        let item_hi = ((other + 1) * items_per_group).min(config.n_items);
        let item = rng.gen_range(item_lo..item_hi.max(item_lo + 1));
        let f = features(&mut rng, other, true, config.feature_dim);
        g.add_edge(u, item.min(config.n_items - 1), f);
    }

    g
}

/// The T5 graph used in the effectiveness experiments (Table 5).
pub fn t5_recommendation(seed: u64) -> BipartiteGraph {
    generate_bipartite_graph(&GraphConfig {
        seed,
        ..Default::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_has_requested_shape() {
        let cfg = GraphConfig::default();
        let g = generate_bipartite_graph(&cfg);
        assert_eq!(g.n_users, cfg.n_users);
        assert_eq!(g.n_items, cfg.n_items);
        assert!(g.num_edges() > cfg.n_users * 2);
        assert_eq!(g.reported_size().1, cfg.feature_dim);
    }

    #[test]
    fn block_structure_dominates() {
        let cfg = GraphConfig {
            noise_fraction: 0.2,
            ..Default::default()
        };
        let g = generate_bipartite_graph(&cfg);
        let users_per_group = cfg.n_users / cfg.n_groups;
        let items_per_group = cfg.n_items / cfg.n_groups;
        let in_group = g
            .edges
            .iter()
            .filter(|&&(u, i)| u / users_per_group == i / items_per_group)
            .count();
        assert!(in_group as f64 > 0.6 * g.num_edges() as f64);
    }

    #[test]
    fn determinism_and_seed_sensitivity() {
        let a = t5_recommendation(1);
        let b = t5_recommendation(1);
        let c = t5_recommendation(2);
        assert_eq!(a.edges, b.edges);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn noise_edges_have_distinct_features() {
        let g = generate_bipartite_graph(&GraphConfig::default());
        let max_feature = g
            .edge_features
            .iter()
            .map(|f| f.iter().cloned().fold(f64::NEG_INFINITY, f64::max))
            .fold(f64::NEG_INFINITY, f64::max);
        // Noise edges carry the 50.0-centred feature signature.
        assert!(max_feature > 40.0);
    }
}
